"""GridExecutor behaviour: dedupe, cache, parallel == serial."""

import pytest

from repro.analysis import TableResult, TableView
from repro.experiments.executor import GridExecutor, run_cell
from repro.experiments.grid import (
    Cell,
    ExperimentSpec,
    SchemeSpec,
    WorkloadSpec,
    interval_times,
)

_TINY = WorkloadSpec.of(
    "sor-tiny", "sor", image_bytes=32 * 1024, n=32, iters=50,
    flops_per_cell=800.0,
)


def _tiny_spec(name="tiny", seed=0) -> ExperimentSpec:
    baseline = Cell(workload=_TINY, seed=seed)

    def plan(results):
        T = results[baseline].sim_time
        _interval, times = interval_times(T, rounds=2)
        return [
            Cell(workload=_TINY, scheme=SchemeSpec.of(s, times), seed=seed)
            for s in ("coord_nb", "coord_nbms")
        ]

    def reduce(results):
        T = results[baseline].sim_time
        rows = []
        for cell in plan(results):
            rep = results[cell]
            rows.append([cell.scheme.name, f"{rep.sim_time - T:.6f}"])
        return TableResult(
            name=name,
            views=[
                TableView(
                    name=name, title=name, headers=["scheme", "cost"],
                    rows=rows,
                )
            ],
            shapes={"all_slower": all(float(r[1]) >= 0 for r in rows)},
            data={"rows": rows},
        )

    return ExperimentSpec(
        name=name, title=name, baselines=(baseline,), plan=plan,
        reduce=reduce,
    )


def test_dedupe_within_and_across_specs():
    ex = GridExecutor(jobs=1, use_cache=False)
    # two specs sharing the same baseline and the same derived cells
    results = ex.run_specs([_tiny_spec("a"), _tiny_spec("b")])
    assert set(results) == {"a", "b"}
    assert results["a"].data["rows"] == results["b"].data["rows"]
    # 2 baselines requested, 4 planned cells requested; 3 unique executed
    assert ex.stats.requested == 6
    assert ex.stats.executed == 3
    assert ex.stats.deduped == 3
    assert ex.stats.cache_hits == 0


def test_repeated_cells_in_one_batch_run_once():
    ex = GridExecutor(jobs=1, use_cache=False)
    cell = Cell(workload=_TINY)
    ex.run_cells([cell, cell, cell])
    assert ex.stats.requested == 3
    assert ex.stats.executed == 1
    assert ex.stats.deduped == 2


def test_cache_warm_run_executes_nothing(tmp_path):
    cold = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    first = cold.run_specs([_tiny_spec()])["tiny"]
    assert cold.stats.executed == 3
    assert cold.stats.cache_hits == 0

    warm = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    second = warm.run_specs([_tiny_spec()])["tiny"]
    assert warm.stats.executed == 0, str(warm.stats)
    assert warm.stats.cache_hits == 3
    assert second.render() == first.render()
    assert second.shape_holds() == first.shape_holds()


def test_no_cache_flag_never_touches_disk(tmp_path):
    ex = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=False)
    ex.run_specs([_tiny_spec()])
    assert list(tmp_path.iterdir()) == []


def test_corrupt_cache_entry_falls_back_to_execution(tmp_path):
    cold = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    cold.run_specs([_tiny_spec()])
    for path in tmp_path.rglob("*.json"):
        path.write_text("{not json")
    warm = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    result = warm.run_specs([_tiny_spec()])["tiny"]
    assert warm.stats.executed == 3
    assert warm.stats.cache_hits == 0
    assert result.shape_holds()["all_slower"]


def test_parallel_matches_serial_byte_for_byte():
    serial = GridExecutor(jobs=1, use_cache=False)
    parallel = GridExecutor(jobs=4, use_cache=False)
    a = serial.run_specs([_tiny_spec()])["tiny"]
    b = parallel.run_specs([_tiny_spec()])["tiny"]
    assert a.render() == b.render()
    assert a.data == b.data
    assert serial.stats.executed == parallel.stats.executed == 3


def test_parallel_cache_interoperates_with_serial(tmp_path):
    GridExecutor(jobs=4, cache_dir=tmp_path, use_cache=True).run_specs(
        [_tiny_spec()]
    )
    warm = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    warm.run_specs([_tiny_spec()])
    assert warm.stats.executed == 0


def test_worker_failure_propagates():
    bad = Cell(workload=WorkloadSpec.of("bad", "not-an-app"))
    ex = GridExecutor(jobs=2, use_cache=False)
    with pytest.raises(ValueError, match="unknown application"):
        ex.run_cells([bad, Cell(workload=_TINY)])


def test_spec_seconds_counts_only_executed_cells(tmp_path):
    spec = _tiny_spec()
    cold = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    cold.run_specs([spec])
    assert cold.spec_seconds(spec) > 0.0
    warm = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    warm.run_specs([spec])
    assert warm.spec_seconds(spec) == 0.0


def test_run_cell_is_deterministic():
    a = run_cell(Cell(workload=_TINY, seed=3))
    b = run_cell(Cell(workload=_TINY, seed=3))
    assert a.to_dict() == b.to_dict()
