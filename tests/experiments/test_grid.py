"""Unit tests for the declarative grid: specs, cells, keys, lookup."""

import pickle

import pytest

from repro.experiments.grid import (
    SCHEME_ALIASES,
    Cell,
    GridResults,
    SchemeSpec,
    WorkloadSpec,
    cell_key,
    cell_to_jsonable,
    interval_times,
)
from repro.fault import FaultModel, StorageFaultSpec
from repro.machine import MachineParams


def _cell(**overrides) -> Cell:
    base = dict(
        workload=WorkloadSpec.of("sor-32", "sor", n=32, iters=50),
        scheme=SchemeSpec.of("coord_nbms", (10.0, 20.0)),
        seed=0,
    )
    base.update(overrides)
    return Cell(**base)


# -- WorkloadSpec -------------------------------------------------------------


def test_workload_spec_builds_registered_app():
    spec = WorkloadSpec.of("sor-32", "sor", n=32, iters=50)
    app = spec.build()
    assert type(app).__name__ == "SOR"
    assert spec.build() is not app, "build() must return a fresh instance"


def test_workload_spec_params_canonicalised():
    a = WorkloadSpec.of("w", "sor", n=32, iters=50)
    b = WorkloadSpec.of("w", "sor", iters=50, n=32)
    assert a == b
    assert hash(a) == hash(b)


def test_workload_spec_image_bytes_override():
    spec = WorkloadSpec.of("w", "sor", image_bytes=4096, n=32, iters=50)
    assert spec.build().image_bytes == 4096


def test_workload_spec_unknown_app_rejected():
    with pytest.raises(ValueError, match="unknown application"):
        WorkloadSpec.of("w", "not-an-app").build()


# -- SchemeSpec ---------------------------------------------------------------


def test_scheme_spec_alias_resolves_flags():
    spec = SchemeSpec.of("indep_m_log", (5.0,), skew=0.5)
    assert spec.name == "indep_m"
    assert spec.logging is True
    assert spec.skew == 0.5
    spec2 = SchemeSpec.of("coord_nbms_inc", (5.0,))
    assert spec2.name == "coord_nbms"
    assert spec2.incremental is True


def test_scheme_spec_every_alias_builds():
    for alias in SCHEME_ALIASES:
        scheme = SchemeSpec.of(alias, (5.0, 10.0)).build()
        assert scheme is not None, alias


def test_scheme_spec_unknown_alias_rejected():
    with pytest.raises(ValueError, match="unknown scheme"):
        SchemeSpec.of("coord_xyz", (5.0,))


def test_scheme_spec_times_normalised_to_float_tuple():
    spec = SchemeSpec.of("coord_nb", [1, 2])
    assert spec.times == (1.0, 2.0)
    assert isinstance(spec.times, tuple)


# -- Cell / cell_key ----------------------------------------------------------


def test_cell_key_stable_and_content_based():
    assert cell_key(_cell()) == cell_key(_cell())
    assert cell_key(_cell(seed=1)) != cell_key(_cell(seed=0))
    assert cell_key(_cell(scheme=None)) != cell_key(_cell())
    assert cell_key(
        _cell(machine=MachineParams(n_nodes=4))
    ) != cell_key(_cell())


def test_cell_key_sees_fault_model():
    faulted = _cell(
        fault=FaultModel(
            machine_crash_times=(8.0,),
            storage=StorageFaultSpec(write_fail_p=0.1),
        )
    )
    assert cell_key(faulted) != cell_key(_cell())
    assert cell_key(faulted) == cell_key(
        _cell(
            fault=FaultModel(
                machine_crash_times=(8.0,),
                storage=StorageFaultSpec(write_fail_p=0.1),
            )
        )
    )


def test_cell_jsonable_is_versioned_plain_data():
    import json

    payload = cell_to_jsonable(_cell())
    assert payload["v"] == 1
    json.dumps(payload)  # must be pure JSON types


def test_cell_is_picklable():
    cell = _cell(fault=FaultModel(machine_crash_times=(8.0,)))
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert cell_key(clone) == cell_key(cell)


# -- GridResults --------------------------------------------------------------


def test_grid_results_lookup_and_miss_message():
    results = GridResults()
    cell = _cell()
    assert cell not in results
    assert results.get(cell) is None
    with pytest.raises(KeyError, match="sor-32"):
        results[cell]
    sentinel = object()
    results.put(cell_key(cell), sentinel)
    assert cell in results
    assert results[cell] is sentinel
    assert len(results) == 1


# -- interval_times -----------------------------------------------------------


def test_interval_times_schedule_rule():
    interval, times = interval_times(100.0, rounds=3)
    assert interval == pytest.approx(100.0 / 4.5)
    assert times == tuple(interval * i for i in (1, 2, 3))
    assert times[-1] < 100.0, "last checkpoint leaves commit headroom"
