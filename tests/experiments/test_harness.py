"""Experiment-harness tests on miniature workloads (fast, full machinery)."""

import pytest

from repro.experiments import (
    SCHEMES_TABLE1,
    WorkloadSpec,
    make_scheme,
    run_workload,
    table1_workloads,
    table23_workloads,
)
from repro.experiments.table1 import run_table1
from repro.experiments.table23 import run_table23
from repro.machine import MachineParams

TINY = [
    WorkloadSpec.of(
        "sor-tiny", "sor", image_bytes=64 * 1024, n=40, iters=60,
        flops_per_cell=600.0,
    ),
    WorkloadSpec.of(
        "nq-tiny", "nqueens", image_bytes=64 * 1024, n=9,
        flops_per_node=40000.0,
    ),
]
MACHINE = MachineParams(n_nodes=4)


class TestSchemeFactory:
    @pytest.mark.parametrize(
        "name",
        [
            "coord_nb",
            "coord_nbm",
            "coord_nbms",
            "coord_nbs",
            "indep",
            "indep_m",
            "indep_log",
            "indep_m_log",
        ],
    )
    def test_known_schemes(self, name):
        scheme = make_scheme(name, [1.0, 2.0], 1.0)
        assert scheme.name

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("nope", [1.0], 1.0)

    def test_variant_flags(self):
        assert not make_scheme("coord_nb", [1.0], 1.0).memory_ckpt
        assert make_scheme("coord_nbm", [1.0], 1.0).memory_ckpt
        nbms = make_scheme("coord_nbms", [1.0], 1.0)
        assert nbms.memory_ckpt and nbms.staggered
        nbs = make_scheme("coord_nbs", [1.0], 1.0)
        assert nbs.staggered and not nbs.memory_ckpt


class TestRunWorkload:
    def test_overheads_positive_and_consistent(self):
        res = run_workload(
            TINY[0], ("coord_nb", "coord_nbms"), rounds=2, machine=MACHINE
        )
        assert res.normal_time > 0
        for scheme in ("coord_nb", "coord_nbms"):
            assert res.overhead_seconds(scheme) > 0
            assert res.overhead_percent(scheme) == pytest.approx(
                100 * res.overhead_seconds(scheme) / res.normal_time
            )
            assert res.per_checkpoint(scheme) == pytest.approx(
                res.overhead_seconds(scheme) / 2
            )

    def test_interval_spacing(self):
        res = run_workload(TINY[0], (), rounds=3, machine=MACHINE)
        assert res.interval == pytest.approx(res.normal_time / 4.5)


class TestWorkloadCatalogues:
    def test_table1_has_21_rows(self):
        ws = table1_workloads()
        assert len(ws) == 21
        labels = [w.label for w in ws]
        assert sum(1 for x in labels if x.startswith("ising")) == 8
        assert sum(1 for x in labels if x.startswith("sor")) == 6
        assert "tsp-12" in labels and "nqueens-12" in labels

    def test_table23_has_9_rows(self):
        assert len(table23_workloads()) == 9

    def test_scale_shrinks_iterations(self):
        full = table1_workloads(1.0)[0].make()
        quick = table1_workloads(0.2)[0].make()
        assert quick.iters < full.iters
        assert quick.n == full.n  # sizes (checkpoint volumes) unchanged

    def test_specs_build_fresh_instances(self):
        w = table1_workloads()[0]
        assert w.make() is not w.make()


class TestTableRunners:
    def test_table1_on_tiny_workloads(self):
        result = run_table1(workloads=TINY, machine=MACHINE, rounds=2)
        table = result.render()
        assert "sor-tiny" in table and "nq-tiny" in table
        assert "COORD_NBMS" in table
        rows = result.data["rows"]
        assert len(rows) == 2
        assert all(set(r) == set(SCHEMES_TABLE1) for r in rows)
        # summary lines render
        assert "better in" in result.summary()
        assert set(result.shape_holds()) == {
            "nb_beats_indep_majority",
            "indep_m_beats_nbm_majority",
            "nbms_beats_indep_m_majority",
        }

    def test_table23_on_tiny_workloads(self):
        result = run_table23(workloads=TINY, machine=MACHINE, rounds=2)
        t2 = result.render("table2")
        t3 = result.render("table3")
        assert "NORMAL" in t2
        assert "%" in t3
        red = result.data["reduction"]
        assert red["min"] > 0
        assert "reduction factor" in result.summary()
