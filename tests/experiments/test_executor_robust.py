"""Executor robustness: run journal, cell timeouts, crash survival.

The crash-survivable experiment plane (DESIGN.md §9): a sweep killed at
any instant resumes byte-identically from its :class:`RunJournal`; a cell
that hangs is cut off by the wall-clock budget, retried once, and then
recorded as failed; a worker crash (``BrokenProcessPool``) restarts the
pool without losing completed work; and the runner reports failures on
stderr and exits non-zero instead of pretending everything rendered.
"""

import json
import os
import time

import pytest

import repro.experiments.executor as executor_mod
import repro.experiments.runner as runner_mod
from repro.analysis import TableResult, TableView
from repro.experiments.executor import (
    CellTimeout,
    GridExecutor,
    RunJournal,
    code_fingerprint,
)
from repro.experiments.grid import (
    Cell,
    ExperimentSpec,
    SchemeSpec,
    WorkloadSpec,
    interval_times,
)

_TINY = WorkloadSpec.of(
    "sor-tiny", "sor", image_bytes=32 * 1024, n=32, iters=50,
    flops_per_cell=800.0,
)


def _tiny_spec(name="tiny", seed=0) -> ExperimentSpec:
    baseline = Cell(workload=_TINY, seed=seed)

    def plan(results):
        T = results[baseline].sim_time
        _interval, times = interval_times(T, rounds=2)
        return [
            Cell(workload=_TINY, scheme=SchemeSpec.of(s, times), seed=seed)
            for s in ("coord_nb", "coord_nbms")
        ]

    def reduce(results):
        T = results[baseline].sim_time
        rows = []
        for cell in plan(results):
            rep = results[cell]
            rows.append([cell.scheme.name, f"{rep.sim_time - T:.6f}"])
        return TableResult(
            name=name,
            views=[
                TableView(
                    name=name, title=name, headers=["scheme", "cost"],
                    rows=rows,
                )
            ],
            shapes={"all_slower": all(float(r[1]) >= 0 for r in rows)},
            data={"rows": rows},
        )

    return ExperimentSpec(
        name=name, title=name, baselines=(baseline,), plan=plan,
        reduce=reduce,
    )


# -- satellite: torn cache writes ---------------------------------------------


def test_cache_writes_leave_no_temp_files(tmp_path):
    ex = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    ex.run_specs([_tiny_spec()])
    # atomic write protocol: mkstemp + replace — nothing half-written stays
    assert list(tmp_path.rglob(".tmp-*")) == []
    assert len(list(tmp_path.rglob("*.json"))) == 3


def test_torn_cache_entry_is_a_miss_not_a_crash(tmp_path):
    cold = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    first = cold.run_specs([_tiny_spec()])["tiny"]
    for path in tmp_path.rglob("*.json"):
        raw = path.read_text()
        path.write_text(raw[: len(raw) // 2])  # torn mid-write
    warm = GridExecutor(jobs=1, cache_dir=tmp_path, use_cache=True)
    second = warm.run_specs([_tiny_spec()])["tiny"]
    assert warm.stats.cache_hits == 0
    assert warm.stats.executed == 3
    assert second.render() == first.render()


# -- the run journal ----------------------------------------------------------


def test_journal_resume_executes_nothing_and_matches(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        ex1 = GridExecutor(jobs=1, use_cache=False, journal=journal)
        first = ex1.run_specs([_tiny_spec()])["tiny"]
        assert ex1.stats.executed == 3
        assert len(journal) == 3

    with RunJournal(path) as journal2:
        ex2 = GridExecutor(jobs=1, use_cache=False, journal=journal2)
        second = ex2.run_specs([_tiny_spec()])["tiny"]
        assert ex2.stats.executed == 0, str(ex2.stats)
        assert ex2.stats.journal_hits == 3
        assert second.render() == first.render()
        assert second.data == first.data


def test_journal_partial_resume_runs_only_the_missing_cells(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        ex1 = GridExecutor(jobs=1, use_cache=False, journal=journal)
        ex1.run_specs([_tiny_spec()])

    # keep only the first journalled cell: an interrupt after one cell
    lines = path.read_text().splitlines(keepends=True)
    path.write_text(lines[0])
    with RunJournal(path) as journal2:
        assert len(journal2) == 1
        ex2 = GridExecutor(jobs=1, use_cache=False, journal=journal2)
        ex2.run_specs([_tiny_spec()])
        assert ex2.stats.journal_hits == 1
        assert ex2.stats.executed == 2
        assert len(journal2) == 3  # the re-run cells were re-journalled


def test_journal_tolerates_torn_tail(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        ex1 = GridExecutor(jobs=1, use_cache=False, journal=journal)
        first = ex1.run_specs([_tiny_spec()])["tiny"]

    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "fingerprint": "abc", "key": "tr')  # kill -9 here

    with RunJournal(path) as journal2:
        assert journal2.skipped_lines == 1
        assert len(journal2) == 3
        ex2 = GridExecutor(jobs=1, use_cache=False, journal=journal2)
        second = ex2.run_specs([_tiny_spec()])["tiny"]
        assert ex2.stats.executed == 0
        assert second.render() == first.render()


def test_journal_ignores_other_code_fingerprints(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        GridExecutor(jobs=1, use_cache=False, journal=journal).run_specs(
            [_tiny_spec()]
        )

    stale = [
        json.dumps({**json.loads(line), "fingerprint": "0" * 24})
        for line in path.read_text().splitlines()
    ]
    path.write_text("\n".join(stale) + "\n")
    journal2 = RunJournal(path)
    assert len(journal2) == 0
    assert journal2.skipped_lines == 3


def test_journal_entries_carry_the_cell_for_tooling(tmp_path):
    path = tmp_path / "run.jsonl"
    with RunJournal(path) as journal:
        GridExecutor(jobs=1, use_cache=False, journal=journal).run_cells(
            [Cell(workload=_TINY, seed=5)]
        )
    entry = json.loads(path.read_text().splitlines()[0])
    assert entry["v"] == 1
    assert entry["fingerprint"] == code_fingerprint()
    assert entry["cell"]["workload"]["label"] == "sor-tiny"
    assert entry["cell"]["seed"] == 5


# -- per-cell wall-clock timeout ----------------------------------------------


def _sleepy_task(cell):
    time.sleep(30.0)  # interrupted by SIGALRM long before it finishes
    raise AssertionError("unreachable: the timeout must fire")


@pytest.fixture
def sleepy_cells(monkeypatch):
    """Make every cell execution hang (fork workers inherit the patch)."""
    monkeypatch.setattr(executor_mod, "_run_cell_task", _sleepy_task)
    return [Cell(workload=_TINY)]


def test_serial_timeout_retries_once_then_records_failure(sleepy_cells):
    ex = GridExecutor(
        jobs=1, use_cache=False, cell_timeout=0.2, raise_on_failure=False
    )
    ex.run_cells(sleepy_cells)
    assert ex.stats.timeouts == 2  # initial attempt + its one retry
    assert ex.stats.retries == 1
    assert ex.stats.failed == 1
    (record,) = ex.failures.values()
    assert record["kind"] == "timeout"
    assert record["attempts"] == 2
    assert ex.stats.executed == 0


def test_serial_timeout_raises_after_retry_when_asked(sleepy_cells):
    ex = GridExecutor(jobs=1, use_cache=False, cell_timeout=0.2)
    with pytest.raises(CellTimeout, match="wall-clock budget"):
        ex.run_cells(sleepy_cells)
    assert ex.stats.timeouts == 2  # still never hangs, still retried once


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork workers to inherit the patch"
)
def test_parallel_timeout_is_survivable(sleepy_cells):
    ex = GridExecutor(
        jobs=2, use_cache=False, cell_timeout=0.2, raise_on_failure=False
    )
    ex.run_cells(sleepy_cells)
    assert ex.stats.timeouts == 2
    assert ex.stats.failed == 1
    (record,) = ex.failures.values()
    assert record["kind"] == "timeout"


# -- worker-crash survival -----------------------------------------------------


def _crashy_task(cell):
    if cell.seed == 99:
        # let the innocent cell on the other worker finish first, then die
        time.sleep(1.0)
        os._exit(3)  # hard worker death, not an exception
    return executor_mod.__dict__["_original_run_cell_task"](cell)


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="needs fork workers to inherit the patch"
)
def test_broken_pool_restarts_and_records_the_culprit(monkeypatch):
    monkeypatch.setitem(
        executor_mod.__dict__,
        "_original_run_cell_task",
        executor_mod._run_cell_task,
    )
    monkeypatch.setattr(executor_mod, "_run_cell_task", _crashy_task)
    crash = Cell(workload=_TINY, seed=99)
    ok = Cell(workload=_TINY, seed=1)
    ex = GridExecutor(jobs=2, use_cache=False, raise_on_failure=False)
    ex.run_cells([crash, ok])
    assert ex.stats.pool_restarts >= 1
    assert ex.stats.failed == 1
    (record,) = ex.failures.values()
    assert record["kind"] == "crash"
    assert record["cell"]["seed"] == 99
    # the innocent cell still completed
    assert ex.results.get(ok) is not None


# -- runner: failure summary + exit status ------------------------------------


def _broken_spec(name="tiny"):
    """A spec whose baseline cell cannot even build its application."""
    baseline = Cell(workload=WorkloadSpec.of("bad", "not-an-app"))
    return ExperimentSpec(
        name=name,
        title=name,
        baselines=(baseline,),
        # results[baseline] raises: the failed baseline never produced one
        plan=lambda results: [results[baseline]] and [],
        reduce=lambda results: results[baseline],
    )


def test_runner_exits_nonzero_and_summarises_failures(monkeypatch, capsys):
    monkeypatch.setattr(
        runner_mod, "_build_spec", lambda spec_name, seed, scale, **kw: _broken_spec("table1")
    )
    rc = runner_mod.main(["table1", "--no-cache", "--jobs", "1"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "cell(s) FAILED" in captured.err
    assert "bad/baseline" in captured.err
    assert "[runner] table1: no result" in captured.err


def test_runner_reports_spec_level_errors(monkeypatch, capsys):
    spec = _tiny_spec("table1")

    def bad_reduce(results):
        raise RuntimeError("reduce exploded")

    monkeypatch.setattr(spec, "reduce", bad_reduce)
    monkeypatch.setattr(
        runner_mod, "_build_spec", lambda spec_name, seed, scale, **kw: spec
    )
    rc = runner_mod.main(["table1", "--no-cache", "--jobs", "1"])
    captured = capsys.readouterr()
    assert rc == 1
    assert "spec table1" in captured.err
    assert "reduce exploded" in captured.err
