"""CLI runner smoke tests (tiny workloads via monkeypatching)."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import WorkloadSpec

_FAST = ["--jobs", "1", "--no-cache"]


def tiny_workloads(scale=1.0):
    return [
        WorkloadSpec.of(
            "sor-tiny", "sor", image_bytes=32 * 1024, n=32, iters=50,
            flops_per_cell=800.0,
        ),
        WorkloadSpec.of(
            "nq-tiny", "nqueens", image_bytes=32 * 1024, n=8,
            flops_per_node=60000.0,
        ),
    ]


@pytest.fixture(autouse=True)
def patch_workloads(monkeypatch):
    monkeypatch.setattr(runner_mod, "table1_workloads", tiny_workloads)
    monkeypatch.setattr(runner_mod, "table23_workloads", tiny_workloads)


def test_runner_table1(capsys):
    assert runner_mod.main(["table1"] + _FAST) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "shape checks" in out
    assert "sor-tiny" in out


def test_runner_table2_and_3_share_runs(capsys):
    assert runner_mod.main(["table2"] + _FAST) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert runner_mod.main(["table3"] + _FAST) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "reduction factor" in out


def test_runner_quick_flag(capsys):
    assert runner_mod.main(["table1", "--quick", "--seed", "3"] + _FAST) == 0
    assert "Table 1" in capsys.readouterr().out


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        runner_mod.main(["not-an-experiment"])


def test_runner_requires_experiment_or_list_schemes():
    with pytest.raises(SystemExit):
        runner_mod.main([])


def test_runner_list_schemes(capsys):
    from repro.chklib.schemes.registry import REGISTRY

    assert runner_mod.main(["--list-schemes"]) == 0
    captured = capsys.readouterr()
    assert captured.err == ""  # rows go to stdout only
    lines = captured.out.strip().splitlines()
    assert len(lines) == len(REGISTRY.aliases())
    rows = {ln.split()[0]: ln.split()[1:] for ln in lines}
    # every alias appears with its family ...
    assert rows["coord_nbms"][0] == "coordinated"
    assert rows["indep_m"][0] == "independent"
    assert rows["cic"][0] == "cic"
    assert rows["indep_m_mlog"][0] == "msglog"
    # ... and the fixed overrides (or a dash when there are none)
    assert rows["indep_m_log"][1:] == ["logging=True"]
    assert rows["cic_fdas"][1:] == ["cic_rule=fdas"]
    assert rows["coord_nb"][1:] == ["-"]


def test_runner_ablation_staggering(capsys):
    assert runner_mod.main(["ablation-staggering"] + _FAST) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "COORD_NBS" in out


def test_runner_diagnostics_on_stderr_only(capsys):
    assert runner_mod.main(["table1"] + _FAST) == 0
    captured = capsys.readouterr()
    assert "[runner]" not in captured.out
    assert "[runner] grid:" in captured.err
