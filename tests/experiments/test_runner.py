"""CLI runner smoke tests (tiny workloads via monkeypatching)."""

import pytest

import repro.experiments.runner as runner_mod
from repro.apps import SOR, NQueens
from repro.experiments import Workload


def tiny_workloads(scale=1.0):
    def sor():
        app = SOR(n=32, iters=50, flops_per_cell=800.0)
        app.image_bytes = 32 * 1024
        return app

    def nq():
        app = NQueens(n=8, flops_per_node=60000.0)
        app.image_bytes = 32 * 1024
        return app

    return [Workload("sor-tiny", sor), Workload("nq-tiny", nq)]


@pytest.fixture(autouse=True)
def patch_workloads(monkeypatch):
    monkeypatch.setattr(runner_mod, "table1_workloads", tiny_workloads)
    monkeypatch.setattr(runner_mod, "table23_workloads", tiny_workloads)


def test_runner_table1(capsys):
    assert runner_mod.main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "shape checks" in out
    assert "sor-tiny" in out


def test_runner_table2_and_3_share_runs(capsys):
    assert runner_mod.main(["table2"]) == 0
    out = capsys.readouterr().out
    assert "Table 2" in out
    assert runner_mod.main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "reduction factor" in out


def test_runner_quick_flag(capsys):
    assert runner_mod.main(["table1", "--quick", "--seed", "3"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_runner_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        runner_mod.main(["not-an-experiment"])


def test_runner_ablation_staggering(capsys):
    assert runner_mod.main(["ablation-staggering"]) == 0
    out = capsys.readouterr().out
    assert "A1" in out and "COORD_NBS" in out
