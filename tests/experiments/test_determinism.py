"""End-to-end determinism: parallel == serial, warm cache runs nothing.

These drive the real CLI (``repro.experiments.runner``) with tiny
monkeypatched workloads and assert the two acceptance properties of the
grid core:

* stdout is byte-identical whatever ``--jobs`` says and whatever the
  cache holds;
* a second invocation against a warm cache executes **zero**
  simulations (checked via the ``--timings`` stats JSON).
"""

import json

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import WorkloadSpec


def tiny_workloads(scale=1.0):
    return [
        WorkloadSpec.of(
            "sor-tiny", "sor", image_bytes=32 * 1024, n=32, iters=50,
            flops_per_cell=800.0,
        ),
        WorkloadSpec.of(
            "nq-tiny", "nqueens", image_bytes=32 * 1024, n=8,
            flops_per_node=60000.0,
        ),
    ]


@pytest.fixture(autouse=True)
def patch_workloads(monkeypatch):
    monkeypatch.setattr(runner_mod, "table1_workloads", tiny_workloads)
    monkeypatch.setattr(runner_mod, "table23_workloads", tiny_workloads)


def _run(args, capsys) -> str:
    assert runner_mod.main(args) == 0
    return capsys.readouterr().out


def test_table1_quick_byte_identical_across_job_counts(capsys):
    base = ["table1", "--quick", "--no-cache"]
    serial = _run(base + ["--jobs", "1"], capsys)
    parallel = _run(base + ["--jobs", "4"], capsys)
    assert serial == parallel
    assert "Table 1" in serial


def test_cached_rerun_is_byte_identical_and_runs_nothing(
    tmp_path, capsys
):
    cache = str(tmp_path / "cache")
    t_cold = str(tmp_path / "cold.json")
    t_warm = str(tmp_path / "warm.json")
    base = ["table1", "--quick", "--jobs", "1", "--cache-dir", cache]

    cold_out = _run(base + ["--timings", t_cold], capsys)
    warm_out = _run(base + ["--timings", t_warm], capsys)
    assert warm_out == cold_out

    with open(t_cold) as fh:
        cold = json.load(fh)
    with open(t_warm) as fh:
        warm = json.load(fh)
    assert cold["stats"]["executed"] > 0
    assert cold["stats"]["cache_hits"] == 0
    assert warm["stats"]["executed"] == 0, warm["stats"]
    assert warm["stats"]["cache_hits"] == cold["stats"]["executed"]
    # cache hits cost no attributed execution time
    assert all(v == 0.0 for v in warm["experiments"].values())


def test_parallel_run_against_serial_cache_is_identical(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    quick = ["table3", "--quick", "--cache-dir", cache]
    serial = _run(quick + ["--jobs", "1"], capsys)
    parallel = _run(quick + ["--jobs", "4"], capsys)
    assert serial == parallel


def test_two_tier_queue_output_matches_heap_only(monkeypatch, capsys):
    """The kernel's fast lane must not change a single output byte:
    the same grid run under ``REPRO_KERNEL_HEAP_ONLY=1`` (legacy
    heap-only scheduling) renders byte-identical tables."""
    base = ["table1", "--quick", "--no-cache", "--jobs", "1"]
    fast = _run(base, capsys)
    monkeypatch.setenv("REPRO_KERNEL_HEAP_ONLY", "1")
    heap_only = _run(base, capsys)
    assert fast == heap_only


def test_profile_writes_hotspot_tables_without_touching_stdout(
    tmp_path, capsys
):
    t_path = str(tmp_path / "timings.json")
    base = ["table1", "--quick", "--no-cache", "--jobs", "1"]
    profiled = _run(base + ["--profile", "--timings", t_path], capsys)
    plain = _run(base, capsys)
    assert profiled == plain
    with open(t_path) as fh:
        timings = json.load(fh)
    assert timings["profiles"] and timings["profile_summary"]
    entry = next(iter(timings["profiles"].values()))
    assert entry["hotspots"], entry
    row = entry["hotspots"][0]
    assert {"function", "ncalls", "tottime_s", "cumtime_s"} <= set(row)
    assert timings["stats"]["cache_hits"] == 0  # --profile bypasses cache
