"""The scale sweep spec and the runner's --ranks/--topology plumbing."""

import pytest

import repro.experiments.runner as runner_mod
from repro.experiments import (
    SCALE_NS,
    run_scale,
    scale_machine,
    scale_spec,
    scale_workload,
)
from repro.machine import MachineParams

_FAST = ["--jobs", "1", "--no-cache"]


def test_scale_workload_is_weak_scaled():
    for n_ranks in (8, 64, 1024):
        w = scale_workload(n_ranks)
        params = dict(w.params)
        # exactly 4 interior rows per rank
        assert params["n"] == 4 * n_ranks + 2
        # constant simulated work per rank per iteration
        total = params["flops_per_cell"] * 4 * params["n"]
        assert total == pytest.approx(600_000.0)
        assert w.image_bytes == 32 * 1024


def test_scale_machine_defaults():
    assert scale_machine(8).topology.kind == "flat"
    m = scale_machine(256)
    assert m.topology.kind == "racks"
    assert m.plane.servers == 4
    # an explicit preset wins
    assert scale_machine(8, "racks").topology.kind == "racks"
    assert scale_machine(64, "torus").topology.link_model == "torus"


def test_scale_spec_grid_shape():
    spec = scale_spec(ns=(4, 8), scale=0.2)
    assert spec.name == "scale"
    assert len(spec.baselines) == 2
    assert {c.machine.n_nodes for c in spec.baselines} == {4, 8}


def test_scale_spec_rejects_empty():
    with pytest.raises(ValueError):
        scale_spec(ns=())


def test_run_scale_small_end_to_end():
    result = run_scale(ns=(4, 8), scale=0.2, rounds=2)
    assert result.name == "scale"
    rows = result.data["rows"]
    assert len(rows) == 2
    assert all(v > 0 for row in rows for v in row.values())
    assert "nbms_win_grows_with_scale" in result.shapes
    # coordinated cells measured with peers-scoped markers
    text = result.render()
    assert "N=4" in text and "N=8" in text


def test_scale_single_point_has_no_growth_shape():
    result = run_scale(ns=(6,), scale=0.2)
    assert "nbms_win_grows_with_scale" not in result.shapes
    assert "nbms_beats_nb_everywhere" in result.shapes


def test_default_ns():
    assert SCALE_NS == (8, 64, 256, 1024, 4096)
    spec = scale_spec()
    assert [c.machine.n_nodes for c in spec.baselines] == list(SCALE_NS)


def test_runner_scale_with_ranks(capsys):
    assert runner_mod.main(["scale", "--quick", "--ranks", "6"] + _FAST) == 0
    out = capsys.readouterr().out
    assert "Scale" in out
    assert "N=6" in out
    assert "shape checks" in out


def test_runner_ranks_resizes_other_experiments(capsys):
    assert (
        runner_mod.main(["table1", "--quick", "--ranks", "6"] + _FAST) == 0
    )
    out = capsys.readouterr().out
    assert "sor-weak-6" in out


def test_runner_topology_flag(capsys):
    assert (
        runner_mod.main(
            ["table1", "--quick", "--ranks", "6", "--topology", "racks"]
            + _FAST
        )
        == 0
    )
    assert "sor-weak-6" in capsys.readouterr().out


def test_runner_rejects_unknown_topology():
    with pytest.raises(SystemExit):
        runner_mod.main(["table1", "--topology", "mesh"])


def test_scale_excluded_from_all():
    assert "scale" in runner_mod._EXPERIMENTS
    assert "scale" not in runner_mod._ALL_ORDER
    # every other experiment still runs under ``all``
    assert len(runner_mod._ALL_ORDER) == len(runner_mod._EXPERIMENTS) - 1
