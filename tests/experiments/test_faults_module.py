"""Unit tests for the failure-frequency experiment helpers."""

import pytest

from repro.experiments.faults import _crash_times, young_interval


class TestYoungInterval:
    def test_formula(self):
        assert young_interval(2.0, 100.0) == pytest.approx(20.0)

    def test_scaling(self):
        # 4x the MTBF -> 2x the interval
        assert young_interval(1.0, 400.0) == 2 * young_interval(1.0, 100.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            young_interval(0.0, 10.0)
        with pytest.raises(ValueError):
            young_interval(1.0, -1.0)


class TestCrashTimes:
    def test_deterministic(self):
        a = _crash_times(10.0, 100.0, seed=1, stream="s")
        b = _crash_times(10.0, 100.0, seed=1, stream="s")
        assert a == b

    def test_different_streams_differ(self):
        a = _crash_times(10.0, 100.0, seed=1, stream="s1")
        b = _crash_times(10.0, 100.0, seed=1, stream="s2")
        assert a != b

    def test_covers_horizon(self):
        times = _crash_times(5.0, 200.0, seed=0, stream="s")
        assert times[-1] >= 200.0
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_roughly_mtbf(self):
        times = _crash_times(10.0, 10_000.0, seed=0, stream="s")
        gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
        mean = sum(gaps) / len(gaps)
        assert 8.0 < mean < 12.0
