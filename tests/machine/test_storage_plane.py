"""StoragePlane: routing, aggregation, burst-buffer drains, capture."""

import pytest

from repro.core import Engine
from repro.machine import Cluster, MachineParams


def build(machine):
    eng = Engine()
    cluster = Cluster(eng, machine)
    return eng, cluster, cluster.storage


def hierarchical16(**kw):
    return MachineParams.hierarchical(16, nodes_per_rack=4, servers=2, **kw)


def test_flat_plane_is_the_legacy_single_server():
    eng, cluster, plane = build(MachineParams.xplorer8())
    assert plane.n_servers == 1
    assert not plane.has_burst_buffers
    # legacy surfaces still answer
    assert plane.params.bandwidth == MachineParams.xplorer8().storage.bandwidth
    assert plane.server is plane.servers[0].server
    assert all(plane.server_index(r) == 0 for r in range(8))


def test_multi_server_plane_refuses_the_single_server_surface():
    eng, cluster, plane = build(hierarchical16())
    assert plane.n_servers == 2
    with pytest.raises(ValueError):
        plane.server


def test_write_routes_to_the_ranks_shard():
    eng, cluster, plane = build(hierarchical16())

    def writer(rank, nbytes):
        yield from plane.write(cluster.node(rank), nbytes, tag=f"w{rank}")

    eng.process(writer(0, 1000.0))
    eng.process(writer(15, 3000.0))
    eng.run()
    assert plane.servers[0].bytes_written == 1000.0
    assert plane.servers[1].bytes_written == 3000.0
    # the aggregate surface sums the tiers
    assert plane.bytes_written == 4000.0
    assert plane.write_ops == 2


def test_burst_buffer_write_lands_on_the_rack_buffer():
    eng, cluster, plane = build(hierarchical16(burst_buffers=True))
    assert plane.has_burst_buffers
    assert len(plane.burst_buffers) == 4  # one per rack

    def writer(rank, nbytes):
        yield from plane.write(cluster.node(rank), nbytes)

    eng.process(writer(5, 2000.0))  # rack 1
    eng.run()
    assert plane.burst_buffers[1].bytes_written == 2000.0
    assert all(s.bytes_written == 0.0 for s in plane.servers)
    assert plane.bytes_written == 2000.0


def test_drain_moves_bytes_without_double_counting():
    eng, cluster, plane = build(hierarchical16(burst_buffers=True))

    def writer_then_drain(rank, nbytes):
        yield from plane.write(cluster.node(rank), nbytes)
        yield from plane.drain(cluster.node(rank), nbytes)

    eng.process(writer_then_drain(10, 4096.0))  # rack 2, shard 1
    eng.run()
    # counted once at the buffer; the drain keeps its own counters
    assert plane.bytes_written == 4096.0
    assert plane.drained_bytes == 4096.0
    assert plane.drain_ops == 1
    assert plane.servers[1].bytes_written == 0.0


def test_read_comes_back_from_the_write_target():
    eng, cluster, plane = build(hierarchical16(burst_buffers=True))

    def roundtrip(rank, nbytes):
        yield from plane.write(cluster.node(rank), nbytes)
        yield from plane.read(cluster.node(rank), nbytes)

    eng.process(roundtrip(3, 512.0))
    eng.run()
    assert plane.burst_buffers[0].bytes_read == 512.0
    assert plane.bytes_read == 512.0


def test_rate_factor_and_pressure_skip_burst_buffers():
    eng, cluster, plane = build(hierarchical16(burst_buffers=True))
    plane.apply_rate_factor(0.5)
    for srv in plane.servers:
        assert srv.server._rate_factor == 0.5
    for bb in plane.burst_buffers:
        assert bb.server._rate_factor == 1.0
    assert plane.active_streams == 0


def test_export_restore_roundtrip():
    eng, cluster, plane = build(hierarchical16(burst_buffers=True))

    def writer(rank, nbytes):
        yield from plane.write(cluster.node(rank), nbytes)
        yield from plane.drain(cluster.node(rank), nbytes)

    eng.process(writer(0, 100.0))
    eng.run()
    state = plane.export_state()

    eng2, cluster2, plane2 = build(hierarchical16(burst_buffers=True))
    plane2.restore_state(state)
    assert plane2.drained_bytes == plane.drained_bytes
    assert plane2.bytes_written == plane.bytes_written
    assert plane2.burst_buffers[0].bytes_written == 100.0


def test_restore_rejects_shape_change():
    eng, cluster, plane = build(hierarchical16())
    state = plane.export_state()
    eng2, cluster2, plane2 = build(
        MachineParams.hierarchical(16, nodes_per_rack=4, servers=4)
    )
    with pytest.raises(ValueError):
        plane2.restore_state(state)
