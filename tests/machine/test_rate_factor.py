"""Unit tests for the storage rate factor (app-traffic contention)."""

import pytest

from repro.core import Engine
from repro.machine import (
    Cluster,
    MachineParams,
    SharedServer,
    StorageParams,
)


def test_rate_factor_slows_transfer_exactly():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    srv.set_rate_factor(0.5)
    job = srv.transfer(100.0)
    eng.run(until=job.done)
    assert eng.now == pytest.approx(2.0)


def test_rate_factor_change_mid_transfer_repaces():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    done_at = []

    def writer():
        job = srv.transfer(100.0)
        yield job.done
        done_at.append(eng.now)

    def toggler():
        yield eng.timeout(0.5)  # 50 B done at full rate
        srv.set_rate_factor(0.25)  # remaining 50 B at 25 B/s -> 2 s

    eng.process(writer())
    eng.process(toggler())
    eng.run()
    assert done_at == [pytest.approx(2.5)]


def test_rate_factor_validation():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    with pytest.raises(ValueError):
        srv.set_rate_factor(0.0)


def test_cluster_blocked_ranks_drive_rate():
    eng = Engine()
    params = MachineParams(n_nodes=4).with_storage(
        app_traffic_penalty=1.0, thrash=0.0
    )
    cluster = Cluster(eng, params)
    srv = cluster.storage.server
    # everyone computing: factor 1/(1+1.0) = 0.5
    assert srv.per_job_rate(1) == pytest.approx(params.storage.bandwidth / 2)
    cluster.set_rank_blocked(0, True)
    cluster.set_rank_blocked(1, True)
    # half blocked: 1/(1+0.5)
    assert srv.per_job_rate(1) == pytest.approx(params.storage.bandwidth / 1.5)
    cluster.set_all_blocked(True)
    assert srv.per_job_rate(1) == pytest.approx(params.storage.bandwidth)
    cluster.set_all_blocked(False)
    assert srv.per_job_rate(1) == pytest.approx(params.storage.bandwidth / 2)


def test_blocked_flag_idempotent():
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=2))
    cluster.set_rank_blocked(0, True)
    cluster.set_rank_blocked(0, True)  # no change, no error
    cluster.set_rank_blocked(0, False)
    cluster.set_rank_blocked(0, False)
    assert cluster.storage.server.per_job_rate(1) == pytest.approx(
        cluster.params.storage.bandwidth
        / (1 + cluster.params.storage.app_traffic_penalty)
    )


def test_quiescent_write_beats_contended_write():
    """The NB-vs-Indep mechanism in isolation: the same write is faster
    when the application is quiescent."""

    def run_one(blocked_all):
        eng = Engine()
        cluster = Cluster(eng, MachineParams(n_nodes=8))
        if blocked_all:
            cluster.set_all_blocked(True)
        node = cluster.node(0)

        def writer():
            yield from cluster.storage.write(node, 500_000.0)

        p = eng.process(writer())
        eng.run(until=p)
        return eng.now

    assert run_one(True) < run_one(False)
