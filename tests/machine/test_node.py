"""Unit tests for the node compute/interference model."""

import pytest

from repro.core import Engine
from repro.machine import Node, NodeParams


def make_node(**kw):
    eng = Engine()
    return eng, Node(eng, 0, NodeParams(**kw))


def test_compute_duration_uncontended():
    eng, node = make_node(cpu_flops=1000.0)

    def proc():
        yield from node.compute(5000.0)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(5.0)
    assert node.flops_done == pytest.approx(5000.0)


def test_compute_zero_work_is_instant():
    eng, node = make_node()

    def proc():
        yield from node.compute(0.0)

    eng.process(proc())
    eng.run()
    assert eng.now == 0.0


def test_compute_negative_work_rejected():
    eng, node = make_node()
    gen = node.compute(-1.0)
    with pytest.raises(ValueError):
        next(gen)


def test_interference_slows_compute():
    eng, node = make_node(cpu_flops=1000.0, bg_write_interference=0.5)

    def app():
        yield from node.compute(3000.0)

    def ckpt_thread():
        node.bg_stream_started()
        yield eng.timeout(100.0)  # stream for the whole run
        node.bg_stream_stopped()

    eng.process(app())
    eng.process(ckpt_thread())
    eng.run(until=10.0)
    # effective rate 1000/1.5 = 666.67 -> 3000 flops in 4.5 s
    assert node.flops_done == pytest.approx(3000.0)
    assert node.busy_time == pytest.approx(4.5)


def test_interference_mid_compute_exact_integration():
    eng, node = make_node(cpu_flops=1000.0, bg_write_interference=1.0)
    finished = []

    def app():
        yield from node.compute(4000.0)
        finished.append(eng.now)

    def ckpt_thread():
        yield eng.timeout(2.0)  # app does 2000 flops at full rate
        node.bg_stream_started()
        yield eng.timeout(2.0)  # app does 1000 flops at half rate
        node.bg_stream_stopped()

    eng.process(app())
    eng.process(ckpt_thread())
    eng.run()
    # remaining 1000 flops at full rate -> finish at t = 2 + 2 + 1 = 5
    assert finished == [pytest.approx(5.0)]


def test_slowdown_property():
    eng, node = make_node(bg_write_interference=0.3)
    assert node.slowdown == 1.0
    node.bg_stream_started()
    assert node.slowdown == pytest.approx(1.3)
    node.bg_stream_stopped()
    assert node.slowdown == 1.0


def test_bg_stream_underflow_raises():
    eng, node = make_node()
    with pytest.raises(RuntimeError):
        node.bg_stream_stopped()


def test_mem_copy_duration():
    eng, node = make_node(mem_copy_bw=1e6)

    def proc():
        yield from node.mem_copy(2e6)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(2.0)


def test_compute_time_helper():
    eng, node = make_node(cpu_flops=2000.0)
    assert node.compute_time(1000.0) == pytest.approx(0.5)


def test_parallel_computes_on_one_node_both_slow_during_stream():
    """Two app processes on a node both integrate the interference."""
    eng, node = make_node(cpu_flops=1000.0, bg_write_interference=1.0)
    done = {}

    def app(tag, work):
        yield from node.compute(work)
        done[tag] = eng.now

    def ckpt():
        node.bg_stream_started()
        yield eng.timeout(1000.0)
        node.bg_stream_stopped()

    eng.process(app("a", 1000.0))
    eng.process(app("b", 2000.0))
    eng.process(ckpt())
    eng.run(until=100.0)
    assert done["a"] == pytest.approx(2.0)
    assert done["b"] == pytest.approx(4.0)
