"""Unit tests for the processor-sharing transfer server."""

import pytest

from repro.core import Engine
from repro.machine import SharedServer


def finish_times(engine, server, sizes, starts=None):
    """Run transfers and return each job's completion time."""
    starts = starts or [0.0] * len(sizes)
    times = {}

    def submit(idx, size, start):
        if start:
            yield engine.timeout(start)
        job = server.transfer(size, tag=str(idx))
        yield job.done
        times[idx] = engine.now

    for i, (size, start) in enumerate(zip(sizes, starts)):
        engine.process(submit(i, size, start))
    engine.run()
    return times


def test_single_transfer_full_bandwidth():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    t = finish_times(eng, srv, [500.0])
    assert t[0] == pytest.approx(5.0)


def test_two_equal_transfers_share_fairly():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    t = finish_times(eng, srv, [500.0, 500.0])
    # each gets 50 B/s -> both finish at 10 s
    assert t[0] == pytest.approx(10.0)
    assert t[1] == pytest.approx(10.0)


def test_short_job_leaves_long_job_speeds_up():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    t = finish_times(eng, srv, [100.0, 500.0])
    # both at 50 B/s until t=2 (job0 done, 100 B drained each);
    # job1 has 400 B left at full 100 B/s -> done at 6 s.
    assert t[0] == pytest.approx(2.0)
    assert t[1] == pytest.approx(6.0)


def test_staggered_arrival():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    t = finish_times(eng, srv, [500.0, 300.0], starts=[0.0, 3.0])
    # job0 alone until t=3 (300 B done, 200 left); then shared at 50 B/s:
    # job0 finishes at 3 + 200/50 = 7; job1 then has 300-200=100 left at
    # full rate -> 8 s.
    assert t[0] == pytest.approx(7.0)
    assert t[1] == pytest.approx(8.0)


def test_thrash_penalty_slows_concurrency():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0, thrash=0.5)
    t = finish_times(eng, srv, [500.0, 500.0])
    # per-job rate = 100 / (2 * 1.5) = 33.33 -> 15 s
    assert t[0] == pytest.approx(15.0)
    assert t[1] == pytest.approx(15.0)


def test_serial_vs_concurrent_total_time_with_thrash():
    """With thrash > 0, staggering the same byte volume is strictly faster —
    the mechanism that makes Coord_NBMS win."""
    eng1 = Engine()
    srv1 = SharedServer(eng1, bandwidth=100.0, thrash=0.3)
    concurrent = finish_times(eng1, srv1, [400.0] * 4)

    eng2 = Engine()
    srv2 = SharedServer(eng2, bandwidth=100.0, thrash=0.3)
    serial = finish_times(eng2, srv2, [400.0] * 4, starts=[0.0, 4.0, 8.0, 12.0])

    assert max(serial.values()) == pytest.approx(16.0)
    assert max(concurrent.values()) > max(serial.values())


def test_zero_byte_transfer_completes_immediately():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    job = srv.transfer(0.0)
    assert job.done.triggered
    eng.run()


def test_cancel_removes_job_and_speeds_rest():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    cancelled = srv.transfer(1000.0)
    t = {}

    def other():
        yield eng.timeout(0.0)
        job = srv.transfer(100.0)
        yield job.done
        t["other"] = eng.now

    def canceller():
        yield eng.timeout(1.0)
        srv.cancel(cancelled)

    eng.process(other())
    eng.process(canceller())
    eng.run()
    # shared (50 B/s) for 1 s -> 50 B done; then alone -> 50/100 = 0.5 s more
    assert t["other"] == pytest.approx(1.5)
    assert not cancelled.done.triggered


def test_metrics_accumulate():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    finish_times(eng, srv, [100.0, 200.0])
    assert srv.bytes_completed == pytest.approx(300.0)
    assert srv.jobs_completed == 2
    assert srv.peak_concurrency == 2


def test_per_job_rate_formula():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=120.0, thrash=0.25)
    assert srv.per_job_rate(1) == pytest.approx(120.0)
    assert srv.per_job_rate(2) == pytest.approx(120.0 / (2 * 1.25))
    assert srv.per_job_rate(4) == pytest.approx(120.0 / (4 * 1.75))


def test_invalid_parameters():
    eng = Engine()
    with pytest.raises(ValueError):
        SharedServer(eng, bandwidth=0.0)
    with pytest.raises(ValueError):
        SharedServer(eng, bandwidth=10.0, thrash=-0.1)
    srv = SharedServer(eng, bandwidth=10.0)
    with pytest.raises(ValueError):
        srv.transfer(-1.0)


def test_on_change_observer_sees_job_count():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0)
    counts = []
    srv.on_change.append(counts.append)
    finish_times(eng, srv, [100.0, 100.0])
    assert 2 in counts and 0 in counts


def test_many_jobs_mass_conservation():
    eng = Engine()
    srv = SharedServer(eng, bandwidth=50.0, thrash=0.1)
    sizes = [10.0 * (i + 1) for i in range(10)]
    starts = [0.5 * i for i in range(10)]
    t = finish_times(eng, srv, sizes, starts)
    assert srv.bytes_completed == pytest.approx(sum(sizes))
    assert len(t) == 10
    # completion order respects size/start structure: job 0 is smallest and
    # earliest, so it must finish first.
    assert t[0] == min(t.values())
