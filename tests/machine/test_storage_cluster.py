"""Unit tests for StableStorage, Cluster and MachineParams."""

import pytest

from repro.core import Engine, Tracer
from repro.machine import Cluster, MachineParams, StableStorage, StorageParams


def test_xplorer_preset_has_eight_nodes():
    eng = Engine()
    cluster = Cluster(eng)
    assert cluster.n_nodes == 8
    assert len(cluster.nodes) == 8
    assert len(cluster.tx_links) == 8


def test_params_validation():
    with pytest.raises(ValueError):
        MachineParams(n_nodes=0)


def test_with_storage_override():
    p = MachineParams.xplorer8().with_storage(bandwidth=1e6)
    assert p.storage.bandwidth == 1e6
    assert p.n_nodes == 8
    # original untouched (frozen dataclasses)
    assert MachineParams.xplorer8().storage.bandwidth != 1e6


def test_with_node_and_link_override():
    p = MachineParams.xplorer8().with_node(cpu_flops=1.0).with_link(latency=0.5)
    assert p.node.cpu_flops == 1.0
    assert p.link.latency == 0.5


def test_single_write_time():
    eng = Engine()
    params = StorageParams(op_latency=0.1, bandwidth=1000.0, thrash=0.0)
    storage = StableStorage(eng, params)
    cluster_node = Cluster(eng).node(0)

    def proc():
        yield from storage.write(cluster_node, 500.0)

    eng.process(proc())
    eng.run()
    assert eng.now == pytest.approx(0.1 + 0.5)
    assert storage.bytes_written == 500.0
    assert storage.write_ops == 1


def test_concurrent_writes_contend():
    eng = Engine()
    params = StorageParams(
        op_latency=0.0, bandwidth=1000.0, thrash=0.0, app_traffic_penalty=0.0
    )
    storage = StableStorage(eng, params)
    cluster = Cluster(eng, MachineParams(n_nodes=4, storage=params))
    finish = []

    def writer(node):
        yield from cluster.storage.write(node, 1000.0)
        finish.append(eng.now)

    for node in cluster.nodes:
        eng.process(writer(node))
    eng.run()
    # 4 concurrent equal writes, fair share, no thrash -> all done at 4 s
    assert finish == [pytest.approx(4.0)] * 4


def test_background_write_marks_node_streaming():
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=2))
    node = cluster.node(0)
    seen = []

    def writer():
        yield from cluster.storage.write(node, 70000.0, background=True)

    def probe():
        yield eng.timeout(cluster.storage.params.op_latency + 0.01)
        seen.append(node.bg_streams)

    eng.process(writer())
    eng.process(probe())
    eng.run()
    assert seen == [1]
    assert node.bg_streams == 0  # cleared after completion


def test_foreground_write_does_not_mark_streaming():
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=1))
    node = cluster.node(0)
    seen = []

    def writer():
        yield from cluster.storage.write(node, 70000.0, background=False)

    def probe():
        yield eng.timeout(0.05)
        seen.append(node.bg_streams)

    eng.process(writer())
    eng.process(probe())
    eng.run()
    assert seen == [0]


def test_read_accounting():
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=1))

    def reader():
        yield from cluster.storage.read(cluster.node(0), 1234.0)

    eng.process(reader())
    eng.run()
    assert cluster.storage.bytes_read == 1234.0
    assert cluster.storage.read_ops == 1


def test_network_pressure_scales_with_streams():
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=4))
    base = cluster.network_pressure()
    assert base == 1.0
    pressures = []

    def writer(node):
        yield from cluster.storage.write(node, 1e6, background=True)

    def probe():
        yield eng.timeout(cluster.storage.params.op_latency + 0.01)
        pressures.append(cluster.network_pressure())

    for node in cluster.nodes:
        eng.process(writer(node))
    eng.process(probe())
    eng.run()
    expected = 1.0 + cluster.params.link.storage_pressure * 4
    assert pressures == [pytest.approx(expected)]


def test_message_time_helper():
    eng = Engine()
    cluster = Cluster(eng)
    link = cluster.params.link
    assert cluster.message_time(0.0) == pytest.approx(link.latency)
    assert cluster.message_time(link.bandwidth) == pytest.approx(link.latency + 1.0)


def test_single_stream_time_helper():
    eng = Engine()
    storage = StableStorage(eng, StorageParams(op_latency=0.5, bandwidth=100.0))
    assert storage.single_stream_time(50.0) == pytest.approx(1.0)


def test_tracer_records_storage_spans():
    eng = Engine()
    tracer = Tracer(eng)
    params = StorageParams(op_latency=0.0, bandwidth=1000.0, thrash=0.0)
    storage = StableStorage(eng, params, tracer=tracer)
    cluster = Cluster(eng, MachineParams(n_nodes=1))

    def writer():
        yield from storage.write(cluster.node(0), 500.0)

    eng.process(writer())
    eng.run()
    spans = tracer.spans_named("storage.write")
    assert len(spans) == 1
    assert spans[0].duration == pytest.approx(0.5)
    assert tracer.get("storage.bytes_written") == 500.0
