"""Topology: rack membership, hop counts, link costs, storage sharding."""

import pytest

from repro.machine import MachineParams, Topology, TopologyParams


def racks(n, per_rack, **kw):
    return Topology(n, TopologyParams(kind="racks", nodes_per_rack=per_rack, **kw))


def test_flat_is_the_default_and_degenerate():
    topo = Topology(8, TopologyParams())
    assert topo.is_flat
    assert topo.n_racks == 1
    assert all(topo.rack_of(r) == 0 for r in range(8))
    # one rack: every pair is local, zero uplink hops
    assert all(topo.hops(a, b) == 0 for a in range(8) for b in range(8))


def test_rack_membership():
    topo = racks(16, 4)
    assert topo.n_racks == 4
    assert topo.rack_of(0) == 0
    assert topo.rack_of(3) == 0
    assert topo.rack_of(4) == 1
    assert topo.rack_of(15) == 3
    assert list(topo.rack_members(2)) == [8, 9, 10, 11]
    # ragged last rack
    ragged = racks(10, 4)
    assert ragged.n_racks == 3
    assert list(ragged.rack_members(2)) == [8, 9]


def test_hops_uniform_fat_tree_torus():
    uniform = racks(16, 4, link_model="uniform")
    assert uniform.hops(0, 1) == 0  # same rack
    assert uniform.hops(0, 5) == 1  # different rack: one uplink
    assert uniform.hops(0, 15) == 1

    fat = racks(16, 4, link_model="fat-tree")
    assert fat.hops(0, 1) == 0
    assert fat.hops(0, 5) == 2  # up to the spine and back down

    torus = racks(32, 4, link_model="torus")  # 8 racks on a ring
    assert torus.hops(0, 4) == 1  # rack 0 -> rack 1
    assert torus.hops(0, 17) == 4  # rack 0 -> rack 4: halfway round
    assert torus.hops(0, 29) == 1  # rack 0 -> rack 7: wraps the other way


def test_link_cost_latency_and_taper():
    params = TopologyParams(
        kind="racks",
        nodes_per_rack=4,
        link_model="torus",
        uplink_latency=1e-3,
        uplink_taper=0.5,
    )
    topo = Topology(32, params)
    machine = MachineParams.xplorer(32)
    link = machine.link

    # intra-rack: the base link, untouched
    assert topo.link_cost(link, 0, 1) == (link.latency, link.bandwidth)
    # one hop: latency adder, full bandwidth (taper kicks in beyond 1 hop)
    lat, bw = topo.link_cost(link, 0, 4)
    assert lat == pytest.approx(link.latency + 1e-3)
    assert bw == pytest.approx(link.bandwidth)
    # four hops round the torus: 4 latency adders, tapered bandwidth
    lat4, bw4 = topo.link_cost(link, 0, 17)
    assert lat4 == pytest.approx(link.latency + 4e-3)
    assert bw4 == pytest.approx(link.bandwidth / (1 + 0.5 * 3))


def test_server_sharding_is_a_partition():
    """server_of and server_group are exact inverses: contiguous blocks
    covering every rank exactly once, for awkward N/S combinations too."""
    for n, s in [(8, 1), (8, 3), (16, 4), (10, 3), (1024, 8), (7, 7)]:
        topo = Topology(n, TopologyParams())
        seen = []
        for server in range(s):
            group = list(topo.server_group(server, s))
            for r in group:
                assert topo.server_of(r, s) == server
            seen.extend(group)
        assert seen == list(range(n))


def test_server_sharding_balance():
    topo = Topology(1024, TopologyParams())
    sizes = [len(list(topo.server_group(s, 8))) for s in range(8)]
    assert sum(sizes) == 1024
    assert max(sizes) - min(sizes) <= 1


def test_topology_params_validation():
    with pytest.raises(ValueError):
        TopologyParams(kind="mesh")
    with pytest.raises(ValueError):
        TopologyParams(kind="racks", nodes_per_rack=0)
    with pytest.raises(ValueError):
        TopologyParams(link_model="hypercube")
    with pytest.raises(ValueError):
        MachineParams(n_nodes=4).with_plane(servers=5)  # more servers than nodes
    with pytest.raises(ValueError):
        MachineParams(n_nodes=8).with_plane(burst_buffers=True)  # needs racks


def test_hierarchical_preset_shape():
    m = MachineParams.hierarchical(1024)
    assert m.n_nodes == 1024
    assert m.topology.kind == "racks"
    assert m.plane.servers == 8  # isqrt(1024) // 4
    small = MachineParams.hierarchical(8)
    assert small.plane.servers == 1

    for name in MachineParams.TOPOLOGY_PRESETS:
        built = MachineParams.preset(name, 64)
        assert built.n_nodes == 64
    with pytest.raises(ValueError):
        MachineParams.preset("nope", 64)
