"""Backend-parity certification suite (DESIGN.md §12).

Every kernel backend must fire events in exactly the same
``(time, priority, seq)`` order as the reference heap, with ``seq``
ticking once per scheduled event — so tables, traces, recovery lines
and RNG draws are byte-identical whichever backend runs them. This
suite is the oracle a new backend (Cython/mypyc/Rust) must pass:

* selector semantics (arg > env > deprecated shims > default);
* property tests replaying random mixed workloads — timestamp
  collisions (cohorts), priorities (dirty cohorts), delay-0 lane
  traffic, batched inserts — under every backend;
* all nine checkpointing schemes (including the CIC and message-logging
  family), crash/recovery, halt/resume via a
  durable line crossing *backends* as well as process boundaries
  (including a genuine SIGKILL), and ``--verify``-audited traced runs;
* the experiment CLI: ``runner table1|table2|table3 --quick`` stdout.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.experiments.runner as runner_mod
from repro.apps import SOR
from repro.chklib import (
    CheckpointRuntime,
    CICScheme,
    CoordinatedScheme,
    DurableLine,
    FaultModel,
    IndependentScheme,
)
from repro.chklib.schemes.msglog import MessageLoggingScheme
from repro.core import Engine, Event, NegativeDelay, available_backends, backend_class
from repro.core.engine import LOW, URGENT
from repro.core.kernel import resolve_backend
from repro.experiments import WorkloadSpec
from repro.machine import MachineParams
from repro.verify.trace_check import verified

BACKENDS = ("reference", "twotier", "batched")


@pytest.fixture(autouse=True)
def _isolate_backend_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_KERNEL_HEAP_ONLY", raising=False)


# -- selector semantics -------------------------------------------------------


def test_available_backends_lists_all_three():
    assert available_backends() == BACKENDS


@pytest.mark.parametrize("name", BACKENDS)
def test_backend_arg_selects_class(name):
    eng = Engine(backend=name)
    assert type(eng) is backend_class(name)
    assert eng.backend == name


@pytest.mark.parametrize("name", BACKENDS)
def test_env_var_selects_backend(name, monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", name)
    assert Engine().backend == name


def test_explicit_arg_beats_env(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    assert Engine(backend="reference").backend == "reference"


def test_env_beats_deprecated_heap_only_shim(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    monkeypatch.setenv("REPRO_KERNEL_HEAP_ONLY", "1")
    assert Engine().backend == "batched"


def test_deprecated_fast_lane_arg_maps_to_backends():
    assert Engine(fast_lane=True).backend == "twotier"
    assert Engine(fast_lane=False).backend == "reference"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        Engine(backend="rust")
    with pytest.raises(ValueError, match="names no kernel backend"):
        os.environ["REPRO_KERNEL_BACKEND"] = "nope"
        try:
            resolve_backend()
        finally:
            del os.environ["REPRO_KERNEL_BACKEND"]


def test_backend_and_fast_lane_conflict():
    with pytest.raises(ValueError, match="not both"):
        Engine(backend="twotier", fast_lane=True)


def test_direct_subclass_construction_validates_selector():
    from repro.core.batched import BatchedEngine
    from repro.core.engine import TwoTierEngine

    assert BatchedEngine().backend == "batched"
    with pytest.raises(ValueError):
        TwoTierEngine(backend="batched")


def test_default_is_twotier():
    assert Engine().backend == "twotier"


# -- random-workload firing-order parity --------------------------------------

# small discrete delay pool => heavy timestamp collisions, the batched
# calendar's cohort paths get exercised rather than dodged.
_DELAYS = (0.0, 0.25, 0.25, 0.5, 0.5, 0.5, 1.0, 2.0)

_op = st.one_of(
    st.tuples(st.just("t"), st.sampled_from(_DELAYS)),
    st.tuples(st.just("d"), st.sampled_from(_DELAYS)),
    st.tuples(st.just("imm"), st.just(None)),
    st.tuples(st.just("pri"), st.sampled_from([URGENT, LOW])),
    st.tuples(
        st.just("batch"),
        st.lists(st.sampled_from(_DELAYS), min_size=1, max_size=5),
    ),
)
_workload = st.lists(
    st.lists(_op, min_size=1, max_size=8), min_size=1, max_size=6
)


def _replay(backend, workers, hook):
    eng = Engine(backend=backend)
    log = []
    fired = []
    if hook:
        eng.step_hook = lambda t, ev: fired.append((t, type(ev).__name__))

    def worker(tag, ops):
        for i, (kind, arg) in enumerate(ops):
            if kind == "t":
                yield eng.timeout(arg, value=(tag, i))
            elif kind == "d":
                yield eng.delay(arg, value=(tag, i))
            elif kind == "imm":
                ev = Event(eng)
                ev.succeed((tag, i))
                yield ev
            elif kind == "pri":
                ev = Event(eng)
                ev.succeed((tag, i), priority=arg)
                yield ev
            elif kind == "batch":
                evs = eng.timeout_batch(arg, value=(tag, i))
                # wait on the slowest; the rest fire unobserved (but the
                # step hook still sees them, in certified order)
                yield evs[arg.index(max(arg))]
            log.append((tag, i, eng.now))

    for tag, ops in enumerate(workers):
        eng.process(worker(tag, ops))
    eng.run()
    return log, fired, eng.now, eng._seq


@given(_workload)
@settings(max_examples=60, deadline=None)
def test_random_workloads_fire_identically_across_backends(workers):
    ref = _replay("reference", workers, hook=True)
    for backend in ("twotier", "batched"):
        assert _replay(backend, workers, hook=True) == ref


@given(_workload)
@settings(max_examples=40, deadline=None)
def test_random_workloads_identical_without_step_hook(workers):
    # no hook => the _Delay pool recycles; resumption order must not move
    ref = _replay("reference", workers, hook=False)
    for backend in ("twotier", "batched"):
        assert _replay(backend, workers, hook=False) == ref


@pytest.mark.parametrize("backend", BACKENDS)
def test_timeout_batch_equals_timeout_loop(backend):
    delays = [0.5, 0.25, 0.5, 0.0, 1.0, 0.25]

    def run(batch):
        eng = Engine(backend=backend)
        fired = []
        eng.step_hook = lambda t, ev: fired.append((t, ev._value))
        if batch:
            eng.timeout_batch(delays, value="x")
        else:
            for d in delays:
                eng.timeout(d, value="x")
        eng.run()
        return fired, eng.now, eng._seq

    assert run(batch=True) == run(batch=False)


@pytest.mark.parametrize("backend", BACKENDS)
def test_timeout_batch_negative_delay_schedules_nothing(backend):
    eng = Engine(backend=backend)
    with pytest.raises(NegativeDelay):
        eng.timeout_batch([0.5, -1.0, 0.25])
    # all-or-nothing on every backend: no events, no burned seq numbers
    assert eng.queued == 0
    assert eng._seq == 0


# -- scheme-level parity (the seven schemes of the paper grid) ----------------

_MACHINE = MachineParams(n_nodes=4)
_SEED = 7


def _make_app():
    app = SOR(n=24, iters=8, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    return app


@pytest.fixture(scope="module")
def _T():
    return (
        CheckpointRuntime(_make_app(), machine=_MACHINE, seed=_SEED)
        .run()
        .sim_time
    )


def _schemes(T):
    times = (T / 4, T / 2, 3 * T / 4)
    return {
        "none": lambda: None,
        "coord_nb": lambda: CoordinatedScheme.NB(times),
        "coord_nbm": lambda: CoordinatedScheme.NBM(times),
        "coord_nbms": lambda: CoordinatedScheme.NBMS(times),
        "coord_nbs": lambda: CoordinatedScheme.NBS(times),
        "indep_log": lambda: IndependentScheme.Indep(
            times, skew=0.05, logging=True
        ),
        "indep_nolog": lambda: IndependentScheme.Indep(
            times, skew=0.05, logging=False
        ),
        "cic": lambda: CICScheme.BCS(times, skew=T / 10),
        "indep_m_mlog": lambda: MessageLoggingScheme.Mlog(
            times, skew=T / 10
        ),
    }


def _run_scheme(backend, make_scheme, monkeypatch, fault=None):
    monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
    rt = CheckpointRuntime(
        _make_app(),
        scheme=make_scheme(),
        machine=_MACHINE,
        seed=_SEED,
        fault_model=fault,
    )
    report = rt.run()
    assert rt.engine.backend == backend
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.mark.parametrize(
    "name",
    [
        "none",
        "coord_nb",
        "coord_nbm",
        "coord_nbms",
        "coord_nbs",
        "indep_log",
        "indep_nolog",
        "cic",
        "indep_m_mlog",
    ],
)
def test_scheme_reports_identical_across_backends(name, _T, monkeypatch):
    make_scheme = _schemes(_T)[name]
    ref = _run_scheme("reference", make_scheme, monkeypatch)
    assert _run_scheme("twotier", make_scheme, monkeypatch) == ref
    assert _run_scheme("batched", make_scheme, monkeypatch) == ref


def test_crash_recovery_identical_across_backends(_T, monkeypatch):
    make_scheme = _schemes(_T)["coord_nbm"]
    fault = lambda: FaultModel.machine_crash(0.55 * _T)  # noqa: E731
    ref = _run_scheme("reference", make_scheme, monkeypatch, fault())
    assert _run_scheme("twotier", make_scheme, monkeypatch, fault()) == ref
    assert _run_scheme("batched", make_scheme, monkeypatch, fault()) == ref


def test_traced_verified_runs_identical_across_backends(_T, monkeypatch):
    """--verify parity: the post-hoc trace audit passes under every
    backend and the audited trace state is byte-identical."""
    make_scheme = _schemes(_T)["indep_log"]
    states = {}
    with verified():
        for backend in BACKENDS:
            monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
            rt = CheckpointRuntime(
                _make_app(), scheme=make_scheme(), machine=_MACHINE, seed=_SEED
            )
            rt.run()  # raises if the trace audit fails
            states[backend] = json.dumps(
                rt.tracer.export_state(), sort_keys=True, default=str
            )
    assert states["twotier"] == states["reference"]
    assert states["batched"] == states["reference"]


@pytest.mark.parametrize("name", ["coord_nb", "cic", "indep_m_mlog"])
def test_durable_line_resumes_across_backends(name, _T, tmp_path, monkeypatch):
    """Halt under batched, restart the on-disk line under reference —
    bitwise the same as an in-process crash recovery under twotier."""
    make_scheme = _schemes(_T)[name]
    halt = 0.55 * _T

    crashed = _run_scheme(
        "twotier", make_scheme, monkeypatch, FaultModel.machine_crash(halt)
    )

    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "batched")
    halted = CheckpointRuntime(
        _make_app(), scheme=make_scheme(), machine=_MACHINE, seed=_SEED
    )
    halted.run(halt_at=halt)
    path = tmp_path / "run.line"
    halted.durable_line.save(path)

    monkeypatch.setenv("REPRO_KERNEL_BACKEND", "reference")
    resumed = CheckpointRuntime.restart_from(DurableLine.load(path)).run()
    assert json.dumps(resumed.to_dict(), sort_keys=True) == crashed


_SIGKILL_CHILD = textwrap.dedent(
    """
    import os, signal, sys
    from repro.chklib import CheckpointRuntime, CoordinatedScheme
    from repro.apps import SOR
    from repro.machine import MachineParams

    T, halt_frac, path = float(sys.argv[1]), float(sys.argv[2]), sys.argv[3]
    app = SOR(n=24, iters=8, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    times = (T / 4, T / 2, 3 * T / 4)
    rt = CheckpointRuntime(
        app,
        scheme=CoordinatedScheme.NB(times),
        machine=MachineParams(n_nodes=4),
        seed=7,
    )
    rt.run(halt_at=halt_frac * T)
    rt.durable_line.save(path)
    os.kill(os.getpid(), signal.SIGKILL)  # die without any cleanup
    """
)


@pytest.mark.skipif(sys.platform == "win32", reason="needs SIGKILL")
def test_sigkill_resume_under_every_backend(_T, tmp_path, monkeypatch):
    """A run SIGKILLed right after persisting its recovery line resumes
    bit-for-bit under each backend from the frame it left behind."""
    line = tmp_path / "killed.line"
    env = dict(os.environ, REPRO_KERNEL_BACKEND="batched")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), *sys.path) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", _SIGKILL_CHILD, str(_T), "0.55", str(line)],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == -signal.SIGKILL, proc.stderr
    assert line.exists()

    crashed = _run_scheme(
        "twotier",
        _schemes(_T)["coord_nb"],
        monkeypatch,
        FaultModel.machine_crash(0.55 * _T),
    )
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
        resumed = CheckpointRuntime.restart_from(DurableLine.load(line)).run()
        assert json.dumps(resumed.to_dict(), sort_keys=True) == crashed


# -- the experiment CLI -------------------------------------------------------


def _tiny_workloads(scale=1.0):
    return [
        WorkloadSpec.of(
            "sor-tiny",
            "sor",
            image_bytes=32 * 1024,
            n=32,
            iters=50,
            flops_per_cell=800.0,
        ),
    ]


@pytest.mark.parametrize("table", ["table1", "table2", "table3"])
def test_runner_tables_byte_identical_across_backends(
    table, capsys, monkeypatch
):
    monkeypatch.setattr(runner_mod, "table1_workloads", _tiny_workloads)
    monkeypatch.setattr(runner_mod, "table23_workloads", _tiny_workloads)
    outs = {}
    for backend in BACKENDS:
        monkeypatch.setenv("REPRO_KERNEL_BACKEND", backend)
        assert (
            runner_mod.main([table, "--quick", "--no-cache", "--jobs", "1"])
            == 0
        )
        outs[backend] = capsys.readouterr().out
    assert outs["twotier"] == outs["reference"]
    assert outs["batched"] == outs["reference"]
