"""Tracer behaviour: per-kind indexes, span accounting, the NullTracer."""

from repro.core import Engine, NullTracer, Tracer, make_tracer


def test_make_tracer_selects_implementation():
    eng = Engine()
    assert type(make_tracer(eng, enabled=True)) is Tracer
    assert type(make_tracer(eng, enabled=False)) is NullTracer


def test_events_named_uses_per_kind_index():
    eng = Engine()
    tr = Tracer(eng)
    tr.event("msg.send", src=0)
    tr.event("msg.deliver", dst=1)
    tr.event("msg.send", src=2)
    sends = tr.events_named("msg.send")
    assert [e["src"] for e in sends] == [0, 2]
    assert tr.events_named("msg.deliver")[0]["dst"] == 1
    assert tr.events_named("nothing") == []
    # the returned list is a fresh copy: mutating it must not corrupt
    # the index
    sends.clear()
    assert len(tr.events_named("msg.send")) == 2


def test_spans_named_and_total_span_time_skip_open_spans():
    eng = Engine()
    tr = Tracer(eng)
    s1 = tr.open_span("ckpt", node=0)
    eng._now = 2.0
    tr.close_span(s1, bytes=10)
    tr.open_span("ckpt", node=1)  # stays open
    s3 = tr.open_span("other")
    eng._now = 5.0
    tr.close_span(s3)
    assert len(tr.spans_named("ckpt")) == 2
    # only the *closed* ckpt span counts; the open one and the
    # differently-named one do not
    assert tr.total_span_time("ckpt") == 2.0
    assert tr.total_span_time("other") == 3.0
    assert tr.total_span_time("absent") == 0.0
    assert s1.attrs == {"node": 0, "bytes": 10}


def test_disabled_tracer_records_nothing():
    eng = Engine()
    tr = Tracer(eng, enabled=False)
    tr.add("counter")
    tr.event("kind", x=1)
    tr.sample("line", 3.0)
    span = tr.open_span("s")
    tr.close_span(span)
    assert tr.counters == {}
    assert tr.events == []
    assert tr.timelines == {}
    assert tr.spans == []
    assert tr.get("counter") == 0.0


def test_null_tracer_is_inert_but_readable():
    eng = Engine()
    tr = NullTracer(eng)
    assert not tr.enabled
    tr.add("bytes", 100.0)
    tr.event("proto.commit", round=1)
    tr.sample("load", 1.0)
    span = tr.open_span("ckpt", node=3)
    assert tr.close_span(span, ok=True) is span
    # nothing was recorded, all read accessors answer with empties
    assert tr.counters == {} and tr.events == [] and tr.spans == []
    assert tr.events_named("proto.commit") == []
    assert tr.spans_named("ckpt") == []
    assert tr.total_span_time("ckpt") == 0.0
    # the shared null span is closed at birth: duration is well-defined
    assert span.duration == 0.0


def test_null_tracer_span_is_shared_singleton():
    eng = Engine()
    tr = NullTracer(eng)
    assert tr.open_span("a") is tr.open_span("b")
