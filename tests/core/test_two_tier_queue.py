"""The two-tier event queue: ordering, fallback flag, the delay pool.

The fast lane must be invisible: everything here asserts that firing
order under the deque+heap queue is exactly the ``(time, priority, seq)``
order of the heap-only kernel, and that the pooled ``engine.delay()``
events recycle without changing behaviour.
"""

import pytest

from repro.core import Engine, Event, NegativeDelay, SimulationError
from repro.core.engine import LOW, URGENT


def _scenario(eng: Engine):
    """A mixed workload touching every scheduling path; returns its log."""
    log = []

    def worker(tag, naps):
        for nap in naps:
            if nap:
                yield eng.timeout(nap)
            else:
                ev = Event(eng)
                ev.succeed(None)
                yield ev
            log.append((tag, eng.now))

    def urgent_poker():
        yield eng.timeout(0.5)
        ev = Event(eng)
        ev.succeed(None, priority=URGENT)
        yield ev
        log.append(("urgent", eng.now))
        low = Event(eng)
        low.succeed(None, priority=LOW)
        yield low
        log.append(("low", eng.now))

    eng.process(worker("a", [0, 0, 1.0, 0, 0.5]))
    eng.process(worker("b", [0.5, 0, 0, 1.0]))
    eng.process(worker("c", [0, 1.5, 0]))
    eng.process(urgent_poker())
    eng.run()
    return log


def test_firing_order_identical_to_heap_only_kernel():
    assert _scenario(Engine(fast_lane=True)) == _scenario(
        Engine(fast_lane=False)
    )


def test_urgent_trigger_fires_before_earlier_normal_trigger():
    eng = Engine()
    order = []
    normal = Event(eng)
    normal.callbacks.append(lambda _ev: order.append("normal"))
    urgent = Event(eng)
    urgent.callbacks.append(lambda _ev: order.append("urgent"))
    normal.succeed(None)  # scheduled first (lane)
    urgent.succeed(None, priority=URGENT)  # scheduled second (heap)
    eng.run()
    assert order == ["urgent", "normal"]


def test_heap_normal_event_with_lower_seq_beats_lane_entry():
    # Two timeouts land at t=1; the first one's callback triggers a
    # delay-0 event.  The second timeout has the lower sequence number,
    # so it must fire before the freshly-appended lane entry.
    eng = Engine()
    order = []
    t1 = eng.timeout(1.0)
    t2 = eng.timeout(1.0)
    c = Event(eng)

    def fire_c(_ev):
        order.append("t1")
        c.succeed(None)

    t1.callbacks.append(fire_c)
    t2.callbacks.append(lambda _ev: order.append("t2"))
    c.callbacks.append(lambda _ev: order.append("c"))
    eng.run()
    assert order == ["t1", "t2", "c"]


def test_peek_and_queued_consider_both_tiers():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(5.0)
    assert eng.peek() == 5.0
    Event(eng).succeed(None)  # lane entry at t=0
    assert eng.peek() == 0.0
    assert eng.queued == 2
    eng.step()
    assert eng.queued == 1
    assert eng.peek() == 5.0


def test_heap_only_env_var_disables_fast_lane(monkeypatch):
    # the legacy env var is a deprecation shim for the backend selector,
    # which REPRO_KERNEL_BACKEND would outrank — isolate from it here
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_KERNEL_HEAP_ONLY", "1")
    eng = Engine()
    assert not eng._fast_lane
    assert eng.backend == "reference"
    Event(eng).succeed(None)
    assert not eng._lane and len(eng._heap) == 1
    monkeypatch.delenv("REPRO_KERNEL_HEAP_ONLY")
    assert Engine()._fast_lane


def test_explicit_fast_lane_flag_beats_env(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL_BACKEND", raising=False)
    monkeypatch.setenv("REPRO_KERNEL_HEAP_ONLY", "1")
    assert Engine(fast_lane=True)._fast_lane
    assert Engine(fast_lane=True).backend == "twotier"


def test_delay_pool_recycles_objects():
    eng = Engine()
    ids = []

    def proc():
        for _ in range(3):
            d = eng.delay(0.1)
            ids.append(id(d))
            yield d

    eng.process(proc())
    eng.run()
    assert eng._delay_pool  # something was recycled
    # the first delay is back in the pool by the time the third is made
    assert ids[2] == ids[0]


def test_delay_pool_disabled_under_step_hook():
    # A step hook may retain event references, so recycling must stop.
    eng = Engine()
    eng.step_hook = lambda _t, _ev: None

    def proc():
        yield eng.delay(0.1)
        yield eng.delay(0.1)

    eng.process(proc())
    eng.run()
    assert not eng._delay_pool


def test_delay_event_carries_value():
    eng = Engine()
    got = []

    def proc():
        got.append((yield eng.delay(0.25, value="tick")))

    eng.process(proc())
    eng.run()
    assert got == ["tick"]
    assert eng.now == 0.25


@pytest.mark.parametrize(
    "schedule",
    [
        lambda eng: eng.schedule(Event(eng), delay=-0.1),
        lambda eng: eng.timeout(-1.0),
        lambda eng: eng.delay(-1e-9),
    ],
)
def test_negative_delays_raise_shared_error(schedule):
    eng = Engine()
    with pytest.raises(NegativeDelay, match="cannot schedule into the past"):
        schedule(eng)
    # back-compat: NegativeDelay is both a ValueError and a kernel error
    with pytest.raises(ValueError):
        schedule(eng)
    with pytest.raises(SimulationError):
        schedule(eng)
