"""Unit tests for events: lifecycle, composition, failure semantics."""

import pytest

from repro.core import AllOf, AnyOf, Engine, Event, EventAlreadyTriggered


def test_event_lifecycle_flags():
    eng = Engine()
    ev = Event(eng)
    assert not ev.triggered and not ev.processed
    ev.succeed(7)
    assert ev.triggered and not ev.processed
    eng.run()
    assert ev.processed
    assert ev.value == 7


def test_value_before_trigger_raises():
    eng = Engine()
    ev = Event(eng)
    with pytest.raises(AttributeError):
        _ = ev.value


def test_double_succeed_rejected():
    eng = Engine()
    ev = Event(eng)
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_then_succeed_rejected():
    eng = Engine()
    ev = Event(eng)
    ev.fail(RuntimeError())
    ev.defused = True
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_requires_exception():
    eng = Engine()
    ev = Event(eng)
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_trigger_mirrors_success():
    eng = Engine()
    src, dst = Event(eng), Event(eng)
    src.succeed("payload")
    dst.trigger(src)
    assert dst.triggered and dst.ok and dst._value == "payload"
    eng.run()


def test_anyof_fires_on_first():
    eng = Engine()
    t1 = eng.timeout(1.0, value="one")
    t2 = eng.timeout(2.0, value="two")
    results = {}

    def proc():
        got = yield (t1 | t2)
        results.update(got)

    eng.process(proc())
    eng.run(until=1.5)
    assert list(results.values()) == ["one"]


def test_allof_waits_for_all():
    eng = Engine()
    t1 = eng.timeout(1.0, value="one")
    t2 = eng.timeout(2.0, value="two")
    done_at = []

    def proc():
        got = yield (t1 & t2)
        done_at.append(eng.now)
        assert set(got.values()) == {"one", "two"}

    eng.process(proc())
    eng.run()
    assert done_at == [2.0]


def test_empty_allof_is_immediate():
    eng = Engine()
    cond = AllOf(eng, [])
    assert cond.triggered
    eng.run()


def test_condition_with_already_processed_member():
    eng = Engine()
    t1 = eng.timeout(0.0, value="early")
    eng.run()  # t1 fully processed
    cond = AnyOf(eng, [t1])
    assert cond.triggered
    eng.run()


def test_condition_fails_if_member_fails():
    eng = Engine()
    good = eng.timeout(5.0)
    bad = Event(eng)

    def proc():
        with pytest.raises(RuntimeError, match="member"):
            yield (good & bad)

    eng.process(proc())
    bad.fail(RuntimeError("member failed"))
    eng.run(until=1.0)


def test_condition_rejects_foreign_events():
    eng1, eng2 = Engine(), Engine()
    with pytest.raises(ValueError):
        AllOf(eng1, [Event(eng1), Event(eng2)])


def test_timeout_carries_value():
    eng = Engine()
    got = []

    def proc():
        v = yield eng.timeout(1.0, value="hello")
        got.append(v)

    eng.process(proc())
    eng.run()
    assert got == ["hello"]
