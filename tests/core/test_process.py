"""Unit tests for simulation processes: composition, interrupts, errors."""

import pytest

from repro.core import Engine, Event, Interrupt, SimulationError, StopProcess


def test_process_return_value():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        return "done"

    p = eng.process(proc())
    eng.run()
    assert p.value == "done"
    assert not p.is_alive


def test_process_waits_on_process():
    eng = Engine()
    log = []

    def child():
        yield eng.timeout(2.0)
        return "child-result"

    def parent():
        result = yield eng.process(child())
        log.append((eng.now, result))

    eng.process(parent())
    eng.run()
    assert log == [(2.0, "child-result")]


def test_yield_from_subgenerator():
    eng = Engine()

    def helper():
        yield eng.timeout(1.0)
        return 10

    def proc():
        a = yield from helper()
        b = yield from helper()
        return a + b

    p = eng.process(proc())
    eng.run()
    assert p.value == 20
    assert eng.now == 2.0


def test_stopprocess_terminates_with_value():
    eng = Engine()

    def helper():
        yield eng.timeout(1.0)
        raise StopProcess("early")

    def proc():
        yield from helper()
        return "never reached"

    p = eng.process(proc())
    eng.run()
    assert p.value == "early"


def test_process_exception_fails_process_event():
    eng = Engine()

    def bad():
        yield eng.timeout(1.0)
        raise ValueError("inner")

    def watcher():
        with pytest.raises(ValueError, match="inner"):
            yield eng.process(bad())

    eng.process(watcher())
    eng.run()


def test_yielding_non_event_raises_inside_process():
    eng = Engine()

    def bad():
        yield 42  # type: ignore[misc]

    def watcher():
        with pytest.raises(SimulationError, match="must yield Event"):
            yield eng.process(bad())

    eng.process(watcher())
    eng.run()


def test_interrupt_delivers_cause():
    eng = Engine()
    caught = []

    def victim():
        try:
            yield eng.timeout(10.0)
        except Interrupt as exc:
            caught.append((eng.now, exc.cause))

    def attacker(v):
        yield eng.timeout(3.0)
        v.interrupt(cause="failure")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert caught == [(3.0, "failure")]


def test_interrupt_finished_process_is_noop():
    eng = Engine()

    def quick():
        yield eng.timeout(1.0)

    p = eng.process(quick())
    eng.run()
    p.interrupt()  # silent no-op


def test_interrupted_process_can_continue():
    eng = Engine()
    log = []

    def victim():
        try:
            yield eng.timeout(10.0)
        except Interrupt:
            pass
        yield eng.timeout(1.0)
        log.append(eng.now)

    def attacker(v):
        yield eng.timeout(2.0)
        v.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert log == [3.0]


def test_old_target_firing_after_interrupt_does_not_double_resume():
    eng = Engine()
    resumed = []

    def victim():
        try:
            yield eng.timeout(5.0)
            resumed.append("timeout")
        except Interrupt:
            resumed.append("interrupt")
        # wait past the original timeout to prove it does not resume us
        yield eng.timeout(10.0)

    def attacker(v):
        yield eng.timeout(1.0)
        v.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert resumed == ["interrupt"]


def test_yield_already_processed_event_resumes_immediately():
    eng = Engine()
    done = []

    def proc():
        t = eng.timeout(0.0, value="v")
        yield eng.timeout(1.0)  # t is long processed by now
        got = yield t
        done.append(got)

    eng.process(proc())
    eng.run()
    assert done == ["v"]


def test_process_requires_generator():
    eng = Engine()
    with pytest.raises(TypeError):
        eng.process(lambda: None)  # type: ignore[arg-type]


def test_process_name_defaults():
    eng = Engine()

    def worker():
        yield eng.timeout(0.1)

    p = eng.process(worker(), name="io-thread")
    assert p.name == "io-thread"
    eng.run()


def test_active_process_accounting():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)

    eng.process(proc())
    eng.process(proc())
    assert eng._active_processes == 2
    eng.run()
    assert eng._active_processes == 0
