"""Interrupt edge cases under the fused resume loop.

These pin the corner semantics that the kernel optimisation must not
disturb: interrupting a process in the same timestep it finishes, the
deferred-interrupt path (``target is None``), and the ordering of an
interrupt racing the interrupted process's own target event.
"""

import pytest

from repro.core import Engine, Interrupt


def test_interrupt_same_timestep_as_finish_is_noop():
    eng = Engine()

    def victim():
        yield eng.timeout(1.0)
        return "finished"

    def attacker(v):
        yield eng.timeout(1.0)
        # victim's timeout has the lower seq, so it has already finished
        # within this same timestep; interrupting is a silent no-op.
        v.interrupt(cause="too late")

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert v.value == "finished"


def test_interrupt_before_bootstrap_fails_process_with_interrupt():
    # Interrupting a process created this very timestep (its bootstrap
    # resume has not run) defers the interrupt; it is delivered at the
    # bootstrap, before the generator reaches its first yield.
    eng = Engine()

    def victim():
        yield eng.timeout(10.0)  # pragma: no cover - never reached

    def watcher(p):
        with pytest.raises(Interrupt):
            yield p

    p = eng.process(victim())
    p.interrupt(cause="early")
    assert p._pending_interrupt is not None
    eng.process(watcher(p))
    eng.run()
    assert not p.is_alive
    assert eng.now == 0.0


def test_self_interrupt_mid_resume_is_deferred_to_next_resume():
    # While a process is being resumed its target is None; an interrupt
    # arriving then (here: from its own generator code) is delivered at
    # the next resume, not immediately.
    eng = Engine()
    log = []

    def victim(ref):
        ref[0].interrupt(cause="self")
        try:
            yield eng.timeout(5.0)
            log.append("timeout")
        except Interrupt as exc:
            log.append(("interrupt", eng.now, exc.cause))

    ref = []
    p = eng.process(victim(ref))
    ref.append(p)
    eng.run()
    assert log == [("interrupt", 5.0, "self")]


def test_interrupt_racing_target_in_same_timestep():
    # At t=5 the victim's first timeout fires (lower seq) and then the
    # attacker interrupts; the interrupt lands — same timestep, URGENT
    # priority — at the victim's *second* yield, beating its t=10 target.
    eng = Engine()
    log = []

    def victim():
        try:
            yield eng.timeout(5.0)
            log.append("first")
        except Interrupt:  # pragma: no cover - must not happen
            log.append("interrupted-early")
        try:
            yield eng.timeout(5.0)
            log.append("second")  # pragma: no cover - must not happen
        except Interrupt:
            log.append(("interrupted", eng.now))

    def attacker(v):
        yield eng.timeout(5.0)
        v.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert log == ["first", ("interrupted", 5.0)]


def test_detached_target_does_not_double_resume_after_interrupt():
    eng = Engine()
    resumes = []

    def victim():
        try:
            yield eng.timeout(2.0)
            resumes.append("target")
        except Interrupt:
            resumes.append("interrupt")
        # park well past the original target to catch a stray resume
        yield eng.timeout(10.0)
        resumes.append("end")

    def attacker(v):
        yield eng.timeout(1.0)
        v.interrupt()

    v = eng.process(victim())
    eng.process(attacker(v))
    eng.run()
    assert resumes == ["interrupt", "end"]


def test_interrupt_cause_is_carried_through_deferred_delivery():
    eng = Engine()
    seen = []

    def victim(ref):
        ref[0].interrupt(cause={"code": 7})
        try:
            yield eng.timeout(1.0)
        except Interrupt as exc:
            seen.append(exc.cause)

    ref = []
    ref.append(eng.process(victim(ref)))
    eng.run()
    assert seen == [{"code": 7}]
