"""Unit tests for the DES engine: clock, ordering, run modes."""

import pytest

from repro.core import Deadlock, Engine, Event, SimulationError


def test_clock_starts_at_zero():
    eng = Engine()
    assert eng.now == 0.0


def test_clock_custom_start():
    eng = Engine(start_time=5.0)
    assert eng.now == 5.0


def test_timeout_advances_clock():
    eng = Engine()
    eng.timeout(3.5)
    eng.run()
    assert eng.now == 3.5


def test_events_fire_in_time_order():
    eng = Engine()
    order = []

    def proc(delay, tag):
        yield eng.timeout(delay)
        order.append(tag)

    eng.process(proc(2.0, "b"))
    eng.process(proc(1.0, "a"))
    eng.process(proc(3.0, "c"))
    eng.run()
    assert order == ["a", "b", "c"]


def test_same_time_events_fire_in_schedule_order():
    eng = Engine()
    order = []

    def proc(tag):
        yield eng.timeout(1.0)
        order.append(tag)

    for tag in ("x", "y", "z"):
        eng.process(proc(tag))
    eng.run()
    assert order == ["x", "y", "z"]


def test_priority_beats_sequence():
    eng = Engine()
    order = []
    ev_low = Event(eng)
    ev_hi = Event(eng)
    ev_low.callbacks.append(lambda e: order.append("low"))
    ev_hi.callbacks.append(lambda e: order.append("hi"))
    ev_low.succeed(priority=2)
    ev_hi.succeed(priority=0)
    eng.run()
    assert order == ["hi", "low"]


def test_run_until_time_stops_clock_exactly():
    eng = Engine()

    def ticker():
        while True:
            yield eng.timeout(1.0)

    eng.process(ticker())
    eng.run(until=4.5)
    assert eng.now == 4.5


def test_run_until_past_time_raises():
    eng = Engine()
    eng.run(until=2.0)
    with pytest.raises(ValueError):
        eng.run(until=1.0)


def test_run_until_event_returns_value():
    eng = Engine()

    def proc():
        yield eng.timeout(2.0)
        return 42

    p = eng.process(proc())
    assert eng.run(until=p) == 42
    assert eng.now == 2.0


def test_run_until_event_propagates_failure():
    eng = Engine()

    def proc():
        yield eng.timeout(1.0)
        raise RuntimeError("boom")

    p = eng.process(proc())
    with pytest.raises(RuntimeError, match="boom"):
        eng.run(until=p)


def test_deadlock_detected():
    eng = Engine()

    def waiter():
        yield Event(eng)  # never triggered

    eng.process(waiter())
    with pytest.raises(Deadlock):
        eng.run()


def test_run_until_event_deadlock():
    eng = Engine()

    def waiter():
        yield Event(eng)

    p = eng.process(waiter())
    with pytest.raises(Deadlock):
        eng.run(until=p)


def test_negative_timeout_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.timeout(-1.0)


def test_negative_schedule_delay_rejected():
    eng = Engine()
    with pytest.raises(ValueError):
        eng.schedule(Event(eng), delay=-0.1)


def test_unawaited_failed_event_raises_at_step():
    eng = Engine()
    ev = Event(eng)
    ev.fail(RuntimeError("lost failure"))
    with pytest.raises(RuntimeError, match="lost failure"):
        eng.run()


def test_defused_failed_event_is_silent():
    eng = Engine()
    ev = Event(eng)
    ev.fail(RuntimeError("ignored"))
    ev.defused = True
    eng.run()  # no raise


def test_peek_reports_next_event_time():
    eng = Engine()
    assert eng.peek() == float("inf")
    eng.timeout(7.0)
    assert eng.peek() == 7.0


def test_step_hook_sees_every_event():
    eng = Engine()
    seen = []
    eng.step_hook = lambda t, ev: seen.append(t)
    eng.timeout(1.0)
    eng.timeout(2.0)
    eng.run()
    assert seen == [1.0, 2.0]
