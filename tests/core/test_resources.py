"""Unit tests for Resource and Store."""

import pytest

from repro.core import Engine, Resource, SimulationError, Store


def test_resource_grants_up_to_capacity_immediately():
    eng = Engine()
    res = Resource(eng, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered and not r3.triggered
    assert res.count == 2 and res.queued == 1
    eng.run(until=0.0)


def test_resource_fifo_order():
    eng = Engine()
    res = Resource(eng, capacity=1)
    order = []

    def user(tag, hold):
        with res.request() as req:
            yield req
            order.append((tag, eng.now))
            yield eng.timeout(hold)

    eng.process(user("a", 1.0))
    eng.process(user("b", 1.0))
    eng.process(user("c", 1.0))
    eng.run()
    assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]


def test_release_wakes_next_waiter():
    eng = Engine()
    res = Resource(eng, capacity=1)
    r1 = res.request()
    r2 = res.request()
    assert not r2.triggered
    res.release(r1)
    assert r2.triggered


def test_release_unheld_request_raises():
    eng = Engine()
    res = Resource(eng, capacity=1, name="disk")
    res.request()
    stranger = res.request()  # queued, not granted
    with pytest.raises(SimulationError):
        res.release(stranger)


def test_cancel_queued_request():
    eng = Engine()
    res = Resource(eng, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r2.cancel()
    res.release(r1)
    assert res.count == 0 and res.queued == 0


def test_cancel_granted_request_releases():
    eng = Engine()
    res = Resource(eng, capacity=1)
    r1 = res.request()
    r2 = res.request()
    r1.cancel()
    assert r2.triggered


def test_context_manager_always_releases():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield eng.timeout(1.0)

    eng.process(user())
    eng.run()
    assert res.count == 0


def test_capacity_validation():
    eng = Engine()
    with pytest.raises(ValueError):
        Resource(eng, capacity=0)


def test_utilisation_tracks_busy_time():
    eng = Engine()
    res = Resource(eng, capacity=1)

    def user():
        with res.request() as req:
            yield req
            yield eng.timeout(4.0)

    eng.process(user())
    eng.run()
    eng.timeout(4.0)
    eng.run()  # idle 4s
    assert res.utilisation() == pytest.approx(0.5)


def test_n_writers_single_server_total_time():
    """The contention mechanism behind Coord_NB: N simultaneous writers to
    one server take N service times end to end."""
    eng = Engine()
    disk = Resource(eng, capacity=1)
    finish = []

    def writer():
        with disk.request() as req:
            yield req
            yield eng.timeout(2.0)
        finish.append(eng.now)

    for _ in range(8):
        eng.process(writer())
    eng.run()
    assert finish == [2.0 * (i + 1) for i in range(8)]


def test_store_put_then_get():
    eng = Engine()
    st = Store(eng)
    st.put("m1")
    got = st.get()
    assert got.triggered and got._value == "m1"
    eng.run(until=0.0)


def test_store_get_blocks_until_put():
    eng = Engine()
    st = Store(eng)
    received = []

    def consumer():
        item = yield st.get()
        received.append((eng.now, item))

    def producer():
        yield eng.timeout(3.0)
        st.put("late")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert received == [(3.0, "late")]


def test_store_fifo_items_and_getters():
    eng = Engine()
    st = Store(eng)
    got = []

    def consumer(tag):
        item = yield st.get()
        got.append((tag, item))

    eng.process(consumer("c1"))
    eng.process(consumer("c2"))
    st.put("first")
    st.put("second")
    eng.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_store_capacity_overflow_raises():
    eng = Engine()
    st = Store(eng, capacity=1)
    st.put("x")
    with pytest.raises(SimulationError):
        st.put("y")


def test_store_peek():
    eng = Engine()
    st = Store(eng)
    with pytest.raises(SimulationError):
        st.peek()
    st.put("a")
    st.put("b")
    assert st.peek() == "a"
    assert len(st) == 2


def test_store_get_cancel():
    eng = Engine()
    st = Store(eng)
    g1 = st.get()
    g2 = st.get()
    g1.cancel()
    st.put("only")
    assert not g1.triggered
    assert g2.triggered and g2._value == "only"
    eng.run(until=0.0)
