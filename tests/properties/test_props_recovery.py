"""Property-based tests for recovery-line computation.

Random executions are generated as message histories; cut counts are
derived from them, and the invariants checked:

* the fixpoint line is consistent;
* it is maximal (componentwise >= every consistent line found by brute
  force over all lines);
* it matches the rollback-dependency-graph BFS on the same input;
* the transitless line is componentwise <= the plain line and transitless.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chklib.dependency import line_via_graph
from repro.chklib.recovery import CutPoint, consistent_line, is_consistent


@st.composite
def executions(draw):
    """A random message history with interleaved checkpoints.

    Returns (cuts, final_sent, final_consumed).
    """
    n_ranks = draw(st.integers(2, 4))
    n_events = draw(st.integers(0, 40))
    sent = {p: {q: 0 for q in range(n_ranks)} for p in range(n_ranks)}
    consumed = {q: {p: 0 for p in range(n_ranks)} for q in range(n_ranks)}
    #: per-channel backlog of sent-but-not-consumed counts
    cuts = {p: [CutPoint(rank=p, index=0, sent=(), consumed=())] for p in range(n_ranks)}

    def snapshot(p):
        idx = len(cuts[p])
        cuts[p].append(
            CutPoint(
                rank=p,
                index=idx,
                sent=tuple(sorted((q, c) for q, c in sent[p].items() if c)),
                consumed=tuple(
                    sorted((q, c) for q, c in consumed[p].items() if c)
                ),
            )
        )

    for _ in range(n_events):
        kind = draw(st.sampled_from(["send", "recv", "ckpt"]))
        if kind == "send":
            p = draw(st.integers(0, n_ranks - 1))
            q = draw(st.integers(0, n_ranks - 1))
            if p != q:
                sent[p][q] += 1
        elif kind == "recv":
            # consume from a channel with a backlog, FIFO
            candidates = [
                (p, q)
                for p in range(n_ranks)
                for q in range(n_ranks)
                if p != q and consumed[q][p] < sent[p][q]
            ]
            if candidates:
                p, q = draw(st.sampled_from(candidates))
                consumed[q][p] += 1
        else:
            p = draw(st.integers(0, n_ranks - 1))
            snapshot(p)

    return cuts, sent, consumed


@given(executions())
@settings(max_examples=150, deadline=None)
def test_fixpoint_line_is_consistent(execution):
    cuts, _, _ = execution
    line = consistent_line(cuts)
    assert is_consistent(line)


@given(executions())
@settings(max_examples=150, deadline=None)
def test_transitless_line_is_transitless_and_older(execution):
    cuts, _, _ = execution
    loose = consistent_line(cuts)
    strict = consistent_line(cuts, transitless=True)
    assert is_consistent(strict, transitless=True)
    for r in cuts:
        assert strict[r].index <= loose[r].index


@given(executions())
@settings(max_examples=60, deadline=None)
def test_fixpoint_line_is_the_maximum(execution):
    cuts, _, _ = execution
    line = consistent_line(cuts)
    ranks = sorted(cuts)
    # brute force over every line (sizes are small by construction)
    for combo in itertools.product(*[range(len(cuts[r])) for r in ranks]):
        candidate = {r: cuts[r][i] for r, i in zip(ranks, combo)}
        if is_consistent(candidate):
            for r in ranks:
                assert candidate[r].index <= line[r].index


@given(executions())
@settings(max_examples=80, deadline=None)
def test_graph_bfs_agrees_with_fixpoint(execution):
    cuts, sent, consumed = execution
    via_fix = consistent_line(cuts)
    via_graph = line_via_graph(cuts, final_sent=sent, final_consumed=consumed)
    assert {r: c.index for r, c in via_graph.items()} == {
        r: c.index for r, c in via_fix.items()
    }


@given(executions())
@settings(max_examples=60, deadline=None)
def test_line_monotone_under_more_checkpoints(execution):
    """Adding a checkpoint never moves the line backwards (the GC-safety
    property: discarding strictly-older checkpoints is sound)."""
    cuts, sent, consumed = execution
    before = consistent_line(cuts)
    # append a fresh checkpoint of the final counters to one rank
    import copy

    cuts2 = copy.deepcopy(cuts)
    p = sorted(cuts2)[0]
    cuts2[p].append(
        CutPoint(
            rank=p,
            index=len(cuts2[p]),
            sent=tuple(sorted((q, c) for q, c in sent[p].items() if c)),
            consumed=tuple(sorted((q, c) for q, c in consumed[p].items() if c)),
        )
    )
    after = consistent_line(cuts2)
    for r in cuts:
        assert after[r].index >= before[r].index
