"""End-to-end property tests for the fault-injection subsystem.

Random fault models — probabilistic storage faults, scheduled corruption,
machine or per-node crashes — are thrown at full simulated runs, and the
resilience invariants checked:

* the run always completes with the **exact** fault-free result
  (retries, aborts, quarantine and line fallback never corrupt state);
* every recovery restores a line satisfying the scheme's recoverability
  requirement (``RecoveryEvent.line_consistent``);
* no rank ever resumes from an uncommitted or quarantined checkpoint
  (audited at the moment each candidate line is selected).
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, IndependentScheme
from repro.fault import FaultModel, RetryPolicy, StorageFaultSpec
from repro.machine import MachineParams

N_RANKS = 4
MACHINE = MachineParams(n_nodes=N_RANKS)
SCHEME_NAMES = ("coord_nb", "coord_nbm", "coord_nbms", "indep_m_log", "indep_m_nolog")


def _app():
    app = SOR(n=20, iters=8, flops_per_cell=3000.0)
    app.image_bytes = 16 * 1024
    return app


@functools.lru_cache(maxsize=None)
def _baseline(seed):
    """(undisturbed sim time, exact application result) for *seed*."""
    report = CheckpointRuntime(_app(), machine=MACHINE, seed=seed).run()
    return report.sim_time, report.result["sum"]


def _make_scheme(name, T):
    times = [T / 4, T / 2]
    skew = T / 50
    if name == "coord_nb":
        return CoordinatedScheme.NB(times)
    if name == "coord_nbm":
        return CoordinatedScheme.NBM(times)
    if name == "coord_nbms":
        return CoordinatedScheme.NBMS(times)
    if name == "indep_m_log":
        return IndependentScheme.IndepM(times, skew=skew, logging=True)
    return IndependentScheme.IndepM(times, skew=skew)


class AuditingRuntime(CheckpointRuntime):
    """Snapshots the state of every candidate recovery line the runtime
    accepts, at the moment of acceptance (records newer than the line are
    discarded afterwards, so post-run inspection would be too late)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.audited_lines = []

    def _check_line(self, line):
        super()._check_line(line)
        self.audited_lines.append(
            {
                rank: None
                if rec is None
                else (rec.committed, rec.quarantined, rec.written_at is not None)
                for rank, rec in line.items()
            }
        )


@st.composite
def fault_scenarios(draw):
    seed = draw(st.integers(0, 3))
    scheme = draw(st.sampled_from(SCHEME_NAMES))
    p_write = draw(st.sampled_from([0.0, 0.02, 0.05, 0.15]))
    p_read = draw(st.sampled_from([0.0, 0.02, 0.05, 0.15]))
    p_corrupt = draw(st.sampled_from([0.0, 0.05, 0.25]))
    # scheduled corruption of an early checkpoint of a random rank — the
    # quarantine/fallback path, forced deterministically
    corrupt_ckpts = ()
    if draw(st.booleans()):
        corrupt_ckpts = ((draw(st.integers(0, N_RANKS - 1)), draw(st.integers(1, 2))),)
    crash_frac = draw(st.floats(0.3, 0.95))
    node_crash = draw(st.booleans())  # partial failure vs whole machine
    max_retries = draw(st.integers(0, 4))
    return dict(
        seed=seed,
        scheme=scheme,
        spec=StorageFaultSpec(
            write_fail_p=p_write,
            read_fail_p=p_read,
            corrupt_p=p_corrupt,
            corrupt_ckpts=corrupt_ckpts,
        ),
        crash_frac=crash_frac,
        node_crash=node_crash,
        retry=RetryPolicy(max_retries=max_retries, backoff_base=0.01),
    )


def _run(sc):
    T, expected = _baseline(sc["seed"])
    at = sc["crash_frac"] * T
    if sc["node_crash"]:
        model = FaultModel.node_crash(
            1, at, storage=sc["spec"], retry=sc["retry"]
        )
    else:
        model = FaultModel.machine_crash(at, storage=sc["spec"], retry=sc["retry"])
    rt = AuditingRuntime(
        _app(),
        scheme=_make_scheme(sc["scheme"], T),
        machine=MACHINE,
        seed=sc["seed"],
        fault_model=model,
    )
    return rt, rt.run(), expected


@given(fault_scenarios())
@settings(max_examples=30, deadline=None)
def test_result_exact_and_recovery_sound_under_storage_faults(sc):
    rt, report, expected = _run(sc)
    assert report.result["sum"] == expected
    assert report.recoveries, "the scheduled crash must actually fire"
    for ev in report.recoveries:
        assert ev.line_consistent, f"unsound line restored: {ev}"


@given(fault_scenarios())
@settings(max_examples=30, deadline=None)
def test_no_rank_resumes_from_uncommitted_or_quarantined(sc):
    rt, report, _ = _run(sc)
    assert rt.audited_lines, "recovery never selected a line"
    for line in rt.audited_lines:
        for rank, flags in line.items():
            if flags is None:  # initial state — always safe
                continue
            committed, quarantined, written = flags
            assert committed, f"rank {rank} resumed from uncommitted checkpoint"
            assert not quarantined, f"rank {rank} resumed from quarantined checkpoint"
            assert written, f"rank {rank} resumed from unwritten checkpoint"


@given(fault_scenarios())
@settings(max_examples=20, deadline=None)
def test_retry_accounting_is_bounded(sc):
    """Retries never exceed the per-operation budget times the number of
    faults, and a zero-fault spec injects nothing."""
    rt, report, _ = _run(sc)
    budget = sc["retry"].max_retries
    assert report.storage_write_retries <= report.storage_write_faults * max(budget, 1)
    assert report.storage_read_retries <= report.storage_read_faults * max(budget, 1)
    if not sc["spec"].any_faults:
        assert report.storage_write_faults == 0
        assert report.storage_read_faults == 0
        assert report.checkpoints_quarantined == 0
