"""Property-based tests for the simulation kernel and machine primitives."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Engine, Resource, Store
from repro.machine import SharedServer


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_timeouts_fire_in_sorted_order(delays):
    eng = Engine()
    fired = []

    def proc(d):
        yield eng.timeout(d)
        fired.append(d)

    for d in delays:
        eng.process(proc(d))
    eng.run()
    assert fired == sorted(delays, key=lambda d: d)
    assert eng.now == max(delays)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),  # arrival
            st.floats(min_value=0.01, max_value=10.0),  # hold time
        ),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_resource_conservation_and_capacity(jobs, capacity):
    """At no instant do more than `capacity` holders exist, every job
    eventually runs, and FIFO order holds among queued jobs."""
    eng = Engine()
    res = Resource(eng, capacity=capacity)
    granted = []

    def user(idx, arrival, hold):
        yield eng.timeout(arrival)
        with res.request() as req:
            yield req
            assert res.count <= capacity
            granted.append(idx)
            yield eng.timeout(hold)

    for i, (arrival, hold) in enumerate(jobs):
        eng.process(user(i, arrival, hold))
    eng.run()
    assert sorted(granted) == list(range(len(jobs)))
    assert res.count == 0 and res.queued == 0


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),  # start
            st.floats(min_value=1.0, max_value=10_000.0),  # bytes
        ),
        min_size=1,
        max_size=15,
    ),
    st.floats(min_value=10.0, max_value=1000.0),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=80, deadline=None)
def test_shared_server_conserves_bytes_and_bounds_time(jobs, bandwidth, thrash):
    eng = Engine()
    srv = SharedServer(eng, bandwidth=bandwidth, thrash=thrash)
    finish = {}

    def writer(idx, start, nbytes):
        yield eng.timeout(start)
        job = srv.transfer(nbytes)
        yield job.done
        finish[idx] = eng.now

    for i, (start, nbytes) in enumerate(jobs):
        eng.process(writer(i, start, nbytes))
    eng.run()
    assert len(finish) == len(jobs)
    total_bytes = sum(b for _, b in jobs)
    assert abs(srv.bytes_completed - total_bytes) < 1e-6 * max(1.0, total_bytes)
    last_start = max(s for s, _ in jobs)
    # lower bound: even at full bandwidth with no sharing, the last byte
    # cannot land before total_bytes/bandwidth after time zero.
    assert max(finish.values()) >= total_bytes / bandwidth - 1e-6
    # upper bound: worst-case thrash with all jobs concurrent
    k = len(jobs)
    worst_rate = bandwidth / (k * (1 + thrash * (k - 1)))
    assert max(finish.values()) <= last_start + total_bytes / worst_rate + 1e-6


@given(
    st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=50)
)
@settings(max_examples=100, deadline=None)
def test_store_is_fifo(items):
    eng = Engine()
    store = Store(eng)
    out = []

    def consumer():
        for _ in items:
            item = yield store.get()
            out.append(item)

    eng.process(consumer())
    for item in items:
        store.put(item)
    eng.run()
    assert out == items


@given(
    st.integers(min_value=1, max_value=6),
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_single_stream_time_additivity(n_chunks, sizes):
    """Serial transfers on an idle server take exactly the sum of their
    individual times (no hidden state between jobs)."""
    eng = Engine()
    srv = SharedServer(eng, bandwidth=100.0, thrash=0.7)

    def serial():
        for s in sizes:
            job = srv.transfer(float(s))
            yield job.done

    p = eng.process(serial())
    eng.run(until=p)
    assert eng.now == sum(sizes) / 100.0 or abs(eng.now - sum(sizes) / 100.0) < 1e-9
