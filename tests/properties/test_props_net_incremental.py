"""Property-based tests: network FIFO/delivery invariants and page tracking."""

import pickle

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chklib.incremental import PAGE_SIZE, IncrementalState, dirty_pages, page_hashes
from repro.chklib.state import Snapshot
from repro.core import Engine
from repro.machine import Cluster, MachineParams
from repro.net import Comm, Transport


@st.composite
def traffic(draw):
    """A random SPMD-ish traffic schedule: (sender, receiver, delay)."""
    n = draw(st.integers(2, 4))
    events = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.floats(min_value=0.0, max_value=0.5),
            ),
            min_size=1,
            max_size=30,
        )
    )
    events = [(s, r, d) for s, r, d in events if s != r]
    return n, events


@given(traffic())
@settings(max_examples=60, deadline=None)
def test_per_channel_fifo_under_random_traffic(case):
    """Whatever the interleaving, payload sequence numbers arrive in order
    per channel and nothing is lost or duplicated."""
    n, events = case
    eng = Engine()
    cluster = Cluster(eng, MachineParams(n_nodes=n))
    transport = Transport(cluster)
    comms = [Comm(transport, r, n) for r in range(n)]
    sent_per_channel = {}
    for s, r, _ in events:
        sent_per_channel[(s, r)] = sent_per_channel.get((s, r), 0) + 1
    received = {key: [] for key in sent_per_channel}

    def sender(rank):
        mine = [(r, d) for s, r, d in events if s == rank]
        for dst, delay in mine:
            if delay:
                yield eng.timeout(delay)
            yield from comms[rank].send(dst, None)

    def receiver(rank):
        expect = sum(1 for s, r, _ in events if r == rank)
        for _ in range(expect):
            msg = yield from comms[rank].recv()
            received[(msg.src, rank)].append(msg.seq)

    for rank in range(n):
        eng.process(sender(rank))
        eng.process(receiver(rank))
    eng.run()
    for channel, count in sent_per_channel.items():
        assert received[channel] == list(range(1, count + 1))


@given(
    st.lists(st.binary(min_size=0, max_size=3 * PAGE_SIZE), min_size=1, max_size=6)
)
@settings(max_examples=60, deadline=None)
def test_page_hash_dirty_count_bounds(blobs):
    """Dirty pages between consecutive blobs never exceed the page count of
    the larger blob, and identical consecutive blobs are zero-dirty."""
    prev = None
    for blob in blobs:
        hashes = page_hashes(blob)
        if prev is not None:
            d = dirty_pages(prev, hashes)
            assert 0 <= d <= max(len(prev), len(hashes))
        assert dirty_pages(hashes, hashes) == 0
        prev = hashes


@given(
    st.integers(min_value=2, max_value=5),
    st.lists(st.integers(min_value=0, max_value=40), min_size=1, max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_incremental_state_full_cadence(full_every, dirt):
    """A full checkpoint appears at least every `full_every` plans, and
    increments never report more bytes than the blob."""
    inc = IncrementalState(full_every=full_every)
    buf = bytearray(PAGE_SIZE * 8)
    since_full = 0
    for offset in dirt:
        buf[offset * 97 % len(buf)] ^= 0xFF
        blob = bytes(buf)
        is_full, nbytes, hashes = inc.plan(blob)
        inc.advance(is_full, hashes)
        if is_full:
            assert nbytes == len(blob)
            since_full = 0
        else:
            since_full += 1
            assert nbytes <= len(blob)
        assert since_full < full_every


@given(
    st.dictionaries(
        st.sampled_from(["iter", "grid", "vec", "flag", "label"]),
        st.one_of(
            st.integers(-10**9, 10**9),
            st.floats(allow_nan=False, allow_infinity=False),
            st.booleans(),
            st.text(max_size=20),
        ),
        min_size=1,
        max_size=5,
    )
)
@settings(max_examples=100, deadline=None)
def test_snapshot_roundtrip_arbitrary_states(state):
    snap = Snapshot.capture(state)
    restored = snap.restore()
    assert restored == state
    assert restored is not state
    assert snap.nbytes == len(pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL))


@given(st.integers(min_value=1, max_value=200), st.integers(0, 2**31 - 1))
@settings(max_examples=50, deadline=None)
def test_snapshot_numpy_roundtrip(n, seed):
    rng = np.random.default_rng(seed)
    state = {"a": rng.random(n), "b": rng.integers(0, 10, size=n)}
    restored = Snapshot.capture(state).restore()
    np.testing.assert_array_equal(restored["a"], state["a"])
    np.testing.assert_array_equal(restored["b"], state["b"])
