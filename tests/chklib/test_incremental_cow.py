"""Extension features: incremental checkpointing and copy-on-write capture."""

import numpy as np
import pytest

from repro.apps import SOR, Ising, TSP
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from repro.chklib.incremental import (
    PAGE_SIZE,
    IncrementalState,
    dirty_pages,
    page_hashes,
)
from repro.machine import MachineParams

MACHINE = MachineParams(n_nodes=4)


class TestPageTracking:
    def test_page_hashes_count(self):
        blob = b"x" * (PAGE_SIZE * 3 + 100)
        assert len(page_hashes(blob)) == 4

    def test_identical_blobs_zero_dirty(self):
        blob = bytes(range(256)) * 64
        h = page_hashes(blob)
        assert dirty_pages(h, h) == 0

    def test_single_byte_change_dirties_one_page(self):
        blob = bytearray(PAGE_SIZE * 8)
        h1 = page_hashes(bytes(blob))
        blob[PAGE_SIZE * 3 + 17] = 0xFF
        h2 = page_hashes(bytes(blob))
        assert dirty_pages(h1, h2) == 1

    def test_growth_counts_as_dirty(self):
        h1 = page_hashes(b"a" * PAGE_SIZE)
        h2 = page_hashes(b"a" * (PAGE_SIZE * 3))
        assert dirty_pages(h1, h2) == 2

    def test_invalid_page_size(self):
        with pytest.raises(ValueError):
            page_hashes(b"abc", page_size=0)

    def test_incremental_state_plan_cycle(self):
        inc = IncrementalState(full_every=3)
        blob1 = bytes(PAGE_SIZE * 4)
        is_full, nbytes, h = inc.plan(blob1)
        assert is_full and nbytes == len(blob1)
        inc.advance(is_full, h)
        # one dirty page
        blob2 = bytearray(blob1)
        blob2[0] = 1
        is_full, nbytes, h = inc.plan(bytes(blob2))
        assert not is_full and nbytes == PAGE_SIZE
        inc.advance(is_full, h)
        # second increment
        is_full, nbytes, h = inc.plan(bytes(blob2))
        assert not is_full and nbytes == 0
        inc.advance(is_full, h)
        # full_every=3 -> the next one is full again
        is_full, nbytes, h = inc.plan(bytes(blob2))
        assert is_full

    def test_reset_forces_full(self):
        inc = IncrementalState()
        _, _, h = inc.plan(bytes(PAGE_SIZE))
        inc.advance(False, h)
        inc.reset()
        is_full, _, _ = inc.plan(bytes(PAGE_SIZE))
        assert is_full


def baseline(app_factory, seed=3):
    return CheckpointRuntime(app_factory(), machine=MACHINE, seed=seed).run()


class TestIncrementalScheme:
    def make_app(self):
        # ISING: the bond couplings (the bulk of the state) never change,
        # so increments are small — the showcase workload.
        app = Ising(n=48, iters=16, flops_per_cell=2000.0)
        app.image_bytes = 64 * 1024
        return app

    def test_incremental_writes_fewer_bytes(self):
        base = baseline(self.make_app)
        times = [base.sim_time / 4, base.sim_time / 2]
        full = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBMS(times),
            machine=MACHINE,
            seed=3,
        ).run()
        inc = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBMS(times, incremental=True),
            machine=MACHINE,
            seed=3,
        ).run()
        assert inc.result == full.result == base.result
        assert inc.storage_bytes_written < 0.7 * full.storage_bytes_written
        assert inc.counters["chk.full_ckpts"] == 4  # round 1 on 4 ranks
        assert inc.counters["chk.incremental_ckpts"] == 4  # round 2

    def test_incremental_crash_recovery_reads_chain(self):
        base = baseline(self.make_app)
        times = [base.sim_time * f for f in (0.2, 0.4, 0.6)]
        report = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBM(times, incremental=True, full_every=8),
            machine=MACHINE,
            seed=3,
            fault_plan=FaultPlan.single(0.85 * base.sim_time),
        ).run()
        assert len(report.recoveries) == 1
        assert report.result == base.result  # exact replay through the chain

    def test_commit_keeps_incremental_chain(self):
        base = baseline(self.make_app)
        times = [base.sim_time * f for f in (0.2, 0.4, 0.6)]
        rt = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBM(times, incremental=True, full_every=8),
            machine=MACHINE,
            seed=3,
        )
        rt.run()
        for rank in range(4):
            chain = rt.store.chain(rank)
            # commit of 3 may not discard 1 and 2: they are 3's bases
            assert [r.index for r in chain] == [1, 2, 3]
            assert chain[0].base_index is None
            assert chain[1].base_index == 1
            assert chain[2].base_index == 2
            assert rt.store.chain_base(rank, 3) == 1
            assert rt.store.restore_read_bytes(rank, 3) == sum(
                r.write_bytes for r in chain
            )

    def test_independent_incremental(self):
        base = baseline(self.make_app)
        times = [base.sim_time / 4, base.sim_time / 2]
        report = CheckpointRuntime(
            self.make_app(),
            scheme=IndependentScheme.IndepM(times, incremental=True),
            machine=MACHINE,
            seed=3,
        ).run()
        assert report.result == base.result
        assert report.counters.get("chk.incremental_ckpts", 0) > 0

    def test_read_only_state_increments_are_tiny(self):
        """TSP's search state barely changes between checkpoints."""
        app = TSP(n_cities=8, flops_per_node=100000.0)
        app.image_bytes = 256 * 1024
        base = CheckpointRuntime(app, machine=MACHINE, seed=3).run()
        times = [base.sim_time / 4, base.sim_time / 2]

        def fresh():
            a = TSP(n_cities=8, flops_per_node=100000.0)
            a.image_bytes = 256 * 1024
            return a

        rt = CheckpointRuntime(
            fresh(),
            scheme=CoordinatedScheme.NBMS(times, incremental=True),
            machine=MACHINE,
            seed=3,
        )
        rt.run()
        for rank in range(4):
            rec = rt.store.get(rank, 2)
            assert rec.incremental
            # a handful of dirty pages vs a ~260 KiB full image
            assert rec.write_bytes < 0.05 * rec.state_bytes


class TestCowCapture:
    def make_app(self):
        app = SOR(n=34, iters=12, flops_per_cell=2400.0)
        app.image_bytes = 64 * 1024
        return app

    def test_cow_result_unchanged(self):
        base = baseline(self.make_app)
        times = [base.sim_time / 4, base.sim_time / 2]
        report = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBC(times),
            machine=MACHINE,
            seed=3,
        ).run()
        assert report.result == base.result
        assert report.checkpoints_taken == 8

    def test_cow_blocks_less_than_memcopy(self):
        base = baseline(self.make_app)
        times = [base.sim_time / 4, base.sim_time / 2]
        memcopy = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBM(times),
            machine=MACHINE,
            seed=3,
        ).run()
        cow = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBC(times),
            machine=MACHINE,
            seed=3,
        ).run()
        assert cow.blocked_time < memcopy.blocked_time

    def test_cow_crash_recovery_exact(self):
        base = baseline(self.make_app)
        times = [base.sim_time / 4, base.sim_time / 2]
        report = CheckpointRuntime(
            self.make_app(),
            scheme=CoordinatedScheme.NBCS(times, incremental=True),
            machine=MACHINE,
            seed=3,
            fault_plan=FaultPlan.single(0.8 * base.sim_time),
        ).run()
        assert report.result == base.result

    def test_cow_window_interference_accounted(self):
        from repro.core import Engine
        from repro.machine import Node, NodeParams

        eng = Engine()
        node = Node(eng, 0, NodeParams(cpu_flops=1000.0, cow_fault_interference=0.5))
        node.cow_window_opened()
        assert node.slowdown == pytest.approx(1.5)
        node.bg_stream_started()
        assert node.slowdown == pytest.approx(1.8)  # 1 + 0.3 + 0.5
        node.cow_window_closed()
        node.bg_stream_stopped()
        assert node.slowdown == 1.0
        with pytest.raises(RuntimeError):
            node.cow_window_closed()

    def test_invalid_capture_mode_rejected(self):
        with pytest.raises(ValueError):
            CoordinatedScheme([1.0], memory_ckpt=True, staggered=False,
                              name="x", capture="magic")
        with pytest.raises(ValueError):
            IndependentScheme([1.0], memory_ckpt=True, name="x", capture="magic")
