"""Behavioural tests for the third protocol family: CIC and msglog.

Communication-induced checkpointing: the piggybacked index forces (or,
under FDAS, promotes) checkpoints at receivers, recovery restores the
newest fully-covered index, and the domino effect is gone. Sender-based
message logging: sends are synchronously logged, the durable watermark
only advances when writes land, a failed log write degrades to
optimistic, and recovery never rolls a rank past its newest checkpoint.
Every traced run is also audited by the protocol's own trace checkers
(``cic_index_rule`` / ``msglog_replay_bounds``).
"""

import operator

import pytest

from repro.apps.base import Application
from repro.chklib import CheckpointRuntime, CICScheme, FaultModel
from repro.chklib.schemes.msglog import MessageLoggingScheme
from repro.fault import RetryPolicy, StorageFaultSpec
from repro.machine import MachineParams
from repro.net.collectives import reduce
from repro.verify import check_runtime


class Ring(Application):
    """N-rank ring exchanger with per-iteration checkpoint points."""

    name = "ring"
    image_bytes = 8 * 1024

    def __init__(self, iters=40, flops=50_000.0):
        self.iters = iters
        self.flops = flops

    def make_state(self, rank, size, seed):
        return {"iter": 0, "acc": 0}

    def run(self, ctx, state):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while state["iter"] < self.iters:
            yield from ctx.comm.send(right, state["iter"], tag=1)
            msg = yield from ctx.comm.recv(source=left, tag=1)
            state["acc"] += msg.payload
            yield from ctx.compute(self.flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()
        total = yield from reduce(ctx.comm, state["acc"], operator.add, root=0)
        return total if ctx.rank == 0 else None


class OneWay(Application):
    """Rank 0 streams to rank 1, which only receives — so rank 1 never
    sends between its cuts and FDAS promotion is sound throughout."""

    name = "oneway"
    image_bytes = 8 * 1024

    def __init__(self, iters=40, flops=50_000.0):
        self.iters = iters
        self.flops = flops

    def make_state(self, rank, size, seed):
        return {"iter": 0, "acc": 0}

    def run(self, ctx, state):
        while state["iter"] < self.iters:
            if ctx.rank == 0:
                yield from ctx.comm.send(1, state["iter"], tag=1)
            else:
                msg = yield from ctx.comm.recv(source=0, tag=1)
                state["acc"] += msg.payload
            yield from ctx.compute(self.flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()
        total = yield from reduce(ctx.comm, state["acc"], operator.add, root=0)
        return total if ctx.rank == 0 else None


MACHINE3 = MachineParams(n_nodes=3)
MACHINE2 = MachineParams(n_nodes=2)


def _run(app, scheme=None, machine=MACHINE3, seed=1, fault=None):
    rt = CheckpointRuntime(
        app, scheme=scheme, machine=machine, seed=seed, fault_model=fault
    )
    report = rt.run()
    return rt, report


@pytest.fixture(scope="module")
def ring_T():
    return _run(Ring())[1].sim_time


@pytest.fixture(scope="module")
def oneway_T():
    return _run(OneWay(), machine=MACHINE2)[1].sim_time


# -- CIC: forced checkpoints (BCS) ---------------------------------------------


def test_bcs_forces_checkpoints_and_discharges_them(ring_T):
    base = _run(Ring())[1]
    times = [ring_T / 3, 2 * ring_T / 3]
    rt, report = _run(
        Ring(), scheme=CICScheme.BCS(times, skew=ring_T / 10)
    )
    assert report.counters.get("chk.forced_ckpts", 0) >= 1
    forced = rt.tracer.events_named("proto.cic.forced")
    assert forced
    for ev in forced:
        assert ev.fields["index"] > ev.fields["had"]
        assert ev.fields["rule"] == "bcs"
    # every obligation was discharged by a cut that jumped to the index —
    # the cic_index_rule checker audits exactly that
    audit = check_runtime(rt)
    assert audit.ok, audit.violations
    # the protocol is transparent to the application
    assert report.result == base.result


def test_bcs_indices_converge_to_common_line(ring_T):
    times = [ring_T / 3, 2 * ring_T / 3]
    rt, report = _run(Ring(), scheme=CICScheme.BCS(times, skew=ring_T / 10))
    # the index rule drags every rank up: at the end all ranks share the
    # same checkpoint index (each index has a checkpoint on each rank)
    assert len({agent.epoch for agent in rt.agents}) == 1


def test_cic_crash_recovery_is_exact_and_bounded(ring_T):
    base = _run(Ring())[1]
    times = [ring_T / 3, 2 * ring_T / 3]
    rt, report = _run(
        Ring(),
        scheme=CICScheme.BCS(times, skew=ring_T / 10),
        fault=FaultModel.machine_crash(0.8 * ring_T),
    )
    assert len(report.recoveries) == 1
    rec = report.recoveries[0]
    assert rec.line_consistent
    # the line sits at one common index: no cascade below it
    assert len(set(rec.line_indices.values())) == 1
    assert report.result == base.result
    audit = check_runtime(rt)
    assert audit.ok, audit.violations


# -- CIC: FDAS promotion -------------------------------------------------------


def test_fdas_promotes_instead_of_cutting(oneway_T):
    base = _run(OneWay(), machine=MACHINE2)[1]
    times = [oneway_T / 3, 2 * oneway_T / 3]
    rt, report = _run(
        OneWay(),
        scheme=CICScheme.FDAS(times, skew=oneway_T / 10),
        machine=MACHINE2,
    )
    assert report.counters.get("chk.promotions", 0) >= 1
    promoted = rt.tracer.events_named("proto.cic.promote")
    assert promoted
    for ev in promoted:
        # the promoted base is an older (or initial) checkpoint standing
        # in for the higher index
        assert ev.fields["base"] < ev.fields["index"]
    assert report.result == base.result
    audit = check_runtime(rt)
    assert audit.ok, audit.violations


def test_fdas_crash_recovery_uses_promoted_line(oneway_T):
    base = _run(OneWay(), machine=MACHINE2)[1]
    times = [oneway_T / 3, 2 * oneway_T / 3]
    rt, report = _run(
        OneWay(),
        scheme=CICScheme.FDAS(times, skew=oneway_T / 10),
        machine=MACHINE2,
        fault=FaultModel.machine_crash(0.8 * oneway_T),
    )
    assert len(report.recoveries) == 1
    assert report.recoveries[0].line_consistent
    assert report.result == base.result
    audit = check_runtime(rt)
    assert audit.ok, audit.violations


def test_unknown_cic_rule_rejected():
    with pytest.raises(ValueError, match="unknown CIC rule"):
        CICScheme([1.0], cic_rule="zigzag")


# -- msglog: the durable watermark ---------------------------------------------


def test_msglog_logs_sends_synchronously(ring_T):
    base = _run(Ring())[1]
    times = [ring_T / 3, 2 * ring_T / 3]
    scheme = MessageLoggingScheme.Mlog(times, skew=ring_T / 10)
    rt, report = _run(Ring(), scheme=scheme)
    assert report.counters.get("chk.messages_logged_sync", 0) >= 1
    logged = rt.tracer.events_named("proto.mlog.logged")
    assert logged
    # the watermark is per-channel monotone and matches the last event
    seen = {}
    for ev in logged:
        chan = (ev.fields["src"], ev.fields["dst"])
        assert ev.fields["seq"] > seen.get(chan, 0)
        seen[chan] = ev.fields["seq"]
    assert seen == scheme._logged
    assert report.result == base.result
    audit = check_runtime(rt)
    assert audit.ok, audit.violations


def test_msglog_crash_never_rolls_past_newest_checkpoint(ring_T):
    base = _run(Ring())[1]
    times = [ring_T / 3, 2 * ring_T / 3]
    scheme = MessageLoggingScheme.Mlog(times, skew=ring_T / 10)
    rt, report = _run(
        Ring(), scheme=scheme, fault=FaultModel.machine_crash(0.8 * ring_T)
    )
    assert len(report.recoveries) == 1
    rec = report.recoveries[0]
    assert rec.line_consistent
    assert report.result == base.result
    # the msglog_replay_bounds checker proves the line never dipped below
    # a committed checkpoint and replay stayed inside the logs
    audit = check_runtime(rt)
    assert audit.ok, audit.violations


def test_msglog_failed_log_write_degrades_to_optimistic(ring_T):
    """An unretryable failure of the first sync log write must not lose
    the message or the run: it stays in the volatile log and flushes as
    the next checkpoint's annex."""
    base = _run(Ring())[1]
    times = [ring_T / 3, 2 * ring_T / 3]
    scheme = MessageLoggingScheme.Mlog(times, skew=ring_T / 10)
    fault = FaultModel(
        storage=StorageFaultSpec(fail_writes_at=(1,)),
        retry=RetryPolicy(max_retries=0),
    )
    rt, report = _run(Ring(), scheme=scheme, fault=fault)
    assert report.counters.get("chk.msglog_failed", 0) >= 1
    assert report.result == base.result
    audit = check_runtime(rt)
    assert audit.ok, audit.violations
