"""Unit tests for checkpoint garbage collection."""

import numpy as np

from repro.chklib import CheckpointRecord, CheckpointStore, Snapshot, collect_garbage


def rec(rank, index, sent=None, consumed=None, nbytes=100):
    record = CheckpointRecord(
        rank=rank,
        index=index,
        snapshot=Snapshot.capture({"x": np.zeros(nbytes // 8)}),
        comm_meta={
            "sent": dict(sent or {}),
            "consumed": dict(consumed or {}),
            "coll_counter": 0,
        },
        taken_at=float(index),
    )
    record.written_at = float(index)
    record.committed = True
    return record


def test_gc_discards_strictly_older_than_line():
    store = CheckpointStore(2)
    # both ranks: 3 aligned, mutually consistent checkpoints
    for idx in (1, 2, 3):
        store.add(rec(0, idx, sent={1: idx}, consumed={1: idx}))
        store.add(rec(1, idx, sent={0: idx}, consumed={0: idx}))
    stats = collect_garbage(store)
    assert stats.line_indices == {0: 3, 1: 3}
    assert stats.freed_checkpoints == 4
    assert store.count() == 2
    assert stats.freed_bytes > 0


def test_gc_keeps_checkpoints_needed_by_the_line():
    store = CheckpointStore(2)
    store.add(rec(0, 1, sent={1: 1}))
    store.add(rec(0, 2, sent={1: 1}))
    # rank 1's newest checkpoint orphans rank 0's messages -> line rolls it
    store.add(rec(1, 1, consumed={0: 1}))
    store.add(rec(1, 2, consumed={0: 5}))
    stats = collect_garbage(store)
    assert stats.line_indices == {0: 2, 1: 1}
    # rank 1's checkpoint 1 must survive (it IS the line)
    assert [r.index for r in store.chain(1)] == [1, 2]
    assert [r.index for r in store.chain(0)] == [2]


def test_gc_transitless_is_more_conservative():
    store_loose = CheckpointStore(2)
    store_strict = CheckpointStore(2)
    for store in (store_loose, store_strict):
        store.add(rec(0, 1, sent={1: 0}))
        store.add(rec(0, 2, sent={1: 5}))
        store.add(rec(1, 1, consumed={0: 0}))
        store.add(rec(1, 2, consumed={0: 3}))
    loose = collect_garbage(store_loose, transitless=False)
    strict = collect_garbage(store_strict, transitless=True)
    assert loose.line_indices == {0: 2, 1: 2}
    # with messages in flight, the transitless line is older
    assert strict.line_indices[0] < 2 or strict.line_indices[1] < 2
    assert strict.freed_checkpoints <= loose.freed_checkpoints


def test_gc_unwritten_checkpoints_ignored():
    store = CheckpointStore(1)
    r1 = rec(0, 1)
    store.add(r1)
    r2 = rec(0, 2)
    r2.written_at = None  # write still in flight
    store.add(r2)
    stats = collect_garbage(store)
    # the line sits at checkpoint 1; the tentative 2 is not collectable
    assert stats.line_indices == {0: 1}
    assert store.count() == 2


def test_gc_idempotent():
    store = CheckpointStore(2)
    for idx in (1, 2):
        store.add(rec(0, idx))
        store.add(rec(1, idx))
    first = collect_garbage(store)
    second = collect_garbage(store)
    assert second.freed_checkpoints == 0
    assert second.line_indices == first.line_indices


def test_gc_stats_remaining_accounting():
    store = CheckpointStore(1)
    store.add(rec(0, 1))
    store.add(rec(0, 2))
    stats = collect_garbage(store)
    assert stats.remaining_checkpoints == store.count() == 1
    assert stats.remaining_bytes == store.total_bytes()
