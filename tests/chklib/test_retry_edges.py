"""Edge cases of the stable-storage retry loop (:mod:`repro.chklib.retry`).

Drives :func:`stable_write` / :func:`stable_read` against a deterministic
flaky-storage stub inside a real :class:`~repro.core.Engine`, pinning down
the contract the schemes rely on: a zero-retry budget fails after exactly
one attempt, backoff delays are the exact ``base * factor**n`` geometric
series, and an exhausted budget re-raises the *typed* terminal
:class:`~repro.core.errors.StorageFault` with the retry counters showing
every retry that was granted.
"""

import pytest

from repro.chklib.retry import stable_read, stable_write
from repro.core import Engine
from repro.core.errors import StorageFault
from repro.fault.model import RetryPolicy

SERVICE = 0.25  # simulated seconds per storage attempt


class FlakyStorage:
    """Stable-storage stand-in: each op costs SERVICE sim-seconds and the
    first *fail_times* ops raise a StorageFault after paying for it."""

    def __init__(self, engine, fail_times=0):
        self.engine = engine
        self.fail_times = fail_times
        self.attempts = 0

    def _op(self, kind, tag):
        self.attempts += 1
        yield self.engine.timeout(SERVICE)
        if self.attempts <= self.fail_times:
            raise StorageFault(kind, tag=tag, partial_bytes=0.0)

    def write(self, node, nbytes, tag="", background=False):
        yield from self._op("write", tag)

    def read(self, node, nbytes, tag=""):
        yield from self._op("read", tag)


class CountingTracer:
    def __init__(self):
        self.counters = {}

    def add(self, name, value=1.0):
        self.counters[name] = self.counters.get(name, 0.0) + value


def drive(engine, gen):
    """Run the retry generator inside an engine process; returns the
    terminal StorageFault, or None on success."""
    outcome = []

    def proc():
        try:
            yield from gen
        except StorageFault as exc:
            outcome.append(exc)

    engine.process(proc(), name="retry-test")
    engine.run()
    return outcome[0] if outcome else None


def test_zero_retry_budget_fails_after_one_attempt():
    engine = Engine()
    storage = FlakyStorage(engine, fail_times=99)
    tracer = CountingTracer()
    exc = drive(
        engine,
        stable_write(
            storage,
            None,
            1024.0,
            tag="ckpt",
            retry=RetryPolicy(max_retries=0),
            tracer=tracer,
        )
    )
    assert isinstance(exc, StorageFault)
    assert storage.attempts == 1  # no retry was granted
    assert tracer.counters == {}  # and none was counted
    assert engine.now == pytest.approx(SERVICE)  # just the one attempt


def test_backoff_delays_are_deterministic():
    retry = RetryPolicy(max_retries=3, backoff_base=0.05, backoff_factor=2.0)
    engine = Engine()
    storage = FlakyStorage(engine, fail_times=3)  # succeeds on attempt 4
    tracer = CountingTracer()
    exc = drive(
        engine, stable_write(storage, None, 1024.0, retry=retry, tracer=tracer)
    )
    assert exc is None
    assert storage.attempts == 4
    assert tracer.counters == {"storage.write_retries": 3.0}
    # 4 service intervals + the geometric backoff series 0.05, 0.1, 0.2
    expected = 4 * SERVICE + sum(
        retry.backoff_base * retry.backoff_factor**n for n in range(3)
    )
    assert engine.now == pytest.approx(expected)


def test_exhausted_budget_raises_typed_fault_with_counters():
    retry = RetryPolicy(max_retries=2, backoff_base=0.05, backoff_factor=2.0)
    engine = Engine()
    storage = FlakyStorage(engine, fail_times=99)  # never recovers
    tracer = CountingTracer()
    exc = drive(
        engine,
        stable_read(storage, None, 2048.0, tag="restore", retry=retry, tracer=tracer),
    )
    assert isinstance(exc, StorageFault)
    assert exc.op == "read"
    assert exc.tag == "restore"
    assert storage.attempts == retry.max_retries + 1
    assert tracer.counters == {"storage.read_retries": float(retry.max_retries)}
    expected = 3 * SERVICE + sum(
        retry.backoff_base * retry.backoff_factor**n for n in range(2)
    )
    assert engine.now == pytest.approx(expected)


def test_zero_backoff_base_retries_without_delay():
    retry = RetryPolicy(max_retries=2, backoff_base=0.0)
    engine = Engine()
    storage = FlakyStorage(engine, fail_times=2)
    exc = drive(engine, stable_write(storage, None, 64.0, retry=retry))
    assert exc is None
    assert storage.attempts == 3
    assert engine.now == pytest.approx(3 * SERVICE)  # no backoff time at all


def test_retry_without_tracer_counts_nothing_but_still_retries():
    engine = Engine()
    storage = FlakyStorage(engine, fail_times=1)
    exc = drive(engine, stable_write(storage, None, 64.0, retry=RetryPolicy(max_retries=1)))
    assert exc is None
    assert storage.attempts == 2
