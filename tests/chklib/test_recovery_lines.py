"""Unit tests for recovery-line computation and dependency graphs."""

import pytest

from repro.chklib.dependency import (
    interval_send_ranges,
    line_via_graph,
    rollback_dependency_graph,
)
from repro.chklib.recovery import (
    CutPoint,
    consistent_line,
    domino_extent,
    in_transit_ranges,
    is_consistent,
    rollback_distances,
)


def cut(rank, index, sent=None, consumed=None):
    return CutPoint(
        rank=rank,
        index=index,
        sent=tuple(sorted((sent or {}).items())),
        consumed=tuple(sorted((consumed or {}).items())),
    )


def chain(rank, *points):
    """Build a cut list [initial, ...points] for `rank`."""
    return [cut(rank, 0)] + list(points)


class TestConsistency:
    def test_empty_line_is_consistent(self):
        line = {0: cut(0, 0), 1: cut(1, 0)}
        assert is_consistent(line)
        assert is_consistent(line, transitless=True)

    def test_orphan_detected(self):
        # rank 1 consumed 3 messages from rank 0 which only sent 2
        line = {0: cut(0, 1, sent={1: 2}), 1: cut(1, 1, consumed={0: 3})}
        assert not is_consistent(line)

    def test_in_transit_ok_unless_transitless(self):
        line = {0: cut(0, 1, sent={1: 5}), 1: cut(1, 1, consumed={0: 3})}
        assert is_consistent(line)
        assert not is_consistent(line, transitless=True)


class TestConsistentLine:
    def test_latest_kept_when_consistent(self):
        cuts = {
            0: chain(0, cut(0, 1, sent={1: 2})),
            1: chain(1, cut(1, 1, consumed={0: 2})),
        }
        line = consistent_line(cuts)
        assert line[0].index == 1 and line[1].index == 1

    def test_receiver_rolls_back_on_orphan(self):
        cuts = {
            0: chain(0, cut(0, 1, sent={1: 1})),
            1: chain(
                1,
                cut(1, 1, consumed={0: 1}),
                cut(1, 2, consumed={0: 5}),  # orphan vs rank 0's cut 1
            ),
        }
        line = consistent_line(cuts)
        assert line[0].index == 1
        assert line[1].index == 1

    def test_cascade_staircase_domino(self):
        # canonical misalignment: rank 0 always checkpoints *before* its
        # send, rank 1 always *after* the matching receive. Any pairing
        # (i, j) needs both j <= i-1 and i <= j: impossible above the start.
        cuts = {
            0: chain(
                0,
                cut(0, 1, sent={1: 0}, consumed={1: 0}),
                cut(0, 2, sent={1: 1}, consumed={1: 1}),
            ),
            1: chain(
                1,
                cut(1, 1, sent={0: 0}, consumed={0: 1}),
                cut(1, 2, sent={0: 1}, consumed={0: 2}),
            ),
        }
        line = consistent_line(cuts)
        # the cascade stops at rank 0's (empty) first checkpoint and rank
        # 1's initial state
        assert line[0].index == 1 and line[1].index == 0
        latest = {0: 2, 1: 2}
        assert domino_extent(line, latest) == 0.5
        assert rollback_distances(line, latest) == {0: 1, 1: 2}

    def test_transitless_rolls_back_sender(self):
        cuts = {
            0: chain(0, cut(0, 1, sent={1: 5})),
            1: chain(1, cut(1, 1, consumed={0: 3})),
        }
        loose = consistent_line(cuts)
        assert loose[0].index == 1 and loose[1].index == 1
        strict = consistent_line(cuts, transitless=True)
        # sender rolls to initial (sent 0), then receiver's consumed 3 is
        # an orphan -> receiver rolls to initial too
        assert strict[0].index == 0 and strict[1].index == 0

    def test_maximality_three_ranks(self):
        cuts = {
            0: chain(0, cut(0, 1, sent={1: 1}), cut(0, 2, sent={1: 3})),
            1: chain(1, cut(1, 1, consumed={0: 1}), cut(1, 2, consumed={0: 2})),
            2: chain(2, cut(2, 1)),
        }
        line = consistent_line(cuts)
        assert {r: c.index for r, c in line.items()} == {0: 2, 1: 2, 2: 1}

    def test_in_transit_ranges(self):
        line = {
            0: cut(0, 1, sent={1: 5}),
            1: cut(1, 1, consumed={0: 3}, sent={0: 2}),
        }
        ranges = in_transit_ranges(line)
        assert ranges == {(0, 1): (4, 5), (1, 0): (1, 2)}


class TestDependencyGraph:
    def test_interval_send_ranges(self):
        cuts = chain(0, cut(0, 1, sent={1: 2}), cut(0, 2, sent={1: 2}))
        ranges = interval_send_ranges(cuts, peer=1, final_count=5)
        # interval 1 sent seqs 1-2; interval 2 nothing; volatile 3-5
        assert ranges == [(1, 1, 2), (3, 3, 5)]

    def test_edges_from_overlapping_ranges(self):
        cuts = {
            0: chain(0, cut(0, 1, sent={1: 2})),
            1: chain(1, cut(1, 1, consumed={0: 1})),
        }
        g = rollback_dependency_graph(
            cuts,
            final_sent={0: {1: 3}},
            final_consumed={1: {0: 3}},
        )
        # seqs 1-2 sent in (0,1); seq 1 consumed in (1,1), seqs 2-3 in (1,2)
        assert g.has_edge((0, 1), (1, 1))
        assert g.has_edge((0, 1), (1, 2))
        assert g.has_edge((0, 2), (1, 2))  # volatile interval sent seq 3
        assert not g.has_edge((0, 2), (1, 1))

    def test_graph_line_matches_fixpoint_line(self):
        cuts = {
            0: chain(
                0,
                cut(0, 1, sent={1: 1}, consumed={1: 1}),
                cut(0, 2, sent={1: 2}, consumed={1: 2}),
            ),
            1: chain(
                1,
                cut(1, 1, sent={0: 2}, consumed={0: 2}),
                cut(1, 2, sent={0: 3}, consumed={0: 3}),
            ),
        }
        final_sent = {0: {1: 3}, 1: {0: 4}}
        final_consumed = {0: {1: 4}, 1: {0: 3}}
        via_graph = line_via_graph(cuts, final_sent, final_consumed)
        via_fixpoint = consistent_line(cuts)
        assert {r: c.index for r, c in via_graph.items()} == {
            r: c.index for r, c in via_fixpoint.items()
        }

    def test_volatile_intervals_marked(self):
        cuts = {0: chain(0, cut(0, 1))}
        g = rollback_dependency_graph(cuts, final_sent={}, final_consumed={})
        assert g.nodes[(0, 2)]["volatile"]
        assert not g.nodes[(0, 1)]["volatile"]


class TestThirdFamilyDependencies:
    """CIC and message logging seen through the dependency graph: forced
    checkpoints break the staircase cascade; stable logs erase the
    cross-process edges altogether."""

    @staticmethod
    def _staircase():
        # rank 0 checkpoints before each send, rank 1 after each receive:
        # the canonical domino misalignment (see the cascade test above).
        return {
            0: chain(
                0,
                cut(0, 1, sent={1: 0}, consumed={1: 0}),
                cut(0, 2, sent={1: 1}, consumed={1: 1}),
            ),
            1: chain(
                1,
                cut(1, 1, sent={0: 0}, consumed={0: 1}),
                cut(1, 2, sent={0: 1}, consumed={0: 2}),
            ),
        }

    def test_forced_checkpoint_breaks_the_staircase(self):
        # Under index-based CIC rank 1 is *forced* to cut on receiving
        # rank 0's index-1 message before consuming it: its cut 1 now
        # records consumed=0 (not 1) and the staircase pairing (1, 1)
        # becomes consistent — the cascade never starts.
        cuts = self._staircase()
        forced = {
            0: cuts[0],
            1: chain(
                1,
                cut(1, 1, sent={0: 0}, consumed={0: 0}),  # forced pre-receive
                cut(1, 2, sent={0: 1}, consumed={0: 1}),
            ),
        }
        stair_line = consistent_line(cuts)
        forced_line = consistent_line(forced)
        latest = {0: 2, 1: 2}
        assert domino_extent(stair_line, latest) > 0
        assert domino_extent(forced_line, latest) == 0.0
        assert forced_line[0].index == 2 and forced_line[1].index == 2

    def test_logged_messages_create_no_rollback_edges(self):
        # With sender-based logging in force every consumed message can
        # be replayed from stable storage: the cross-process edges of the
        # unlogged analysis must vanish entirely.
        cuts = self._staircase()
        final_sent = {0: {1: 2}, 1: {0: 1}}
        final_consumed = {0: {1: 1}, 1: {0: 2}}
        unlogged = rollback_dependency_graph(cuts, final_sent, final_consumed)
        logged = rollback_dependency_graph(
            cuts, final_sent, final_consumed, logged=True
        )
        assert any(p != q for (p, _), (q, _) in unlogged.edges)
        assert all(p == q for (p, _), (q, _) in logged.edges)
        # same nodes, volatile marking intact
        assert set(logged.nodes) == set(unlogged.nodes)
        assert logged.nodes[(0, 3)]["volatile"]

    def test_logged_rollback_stops_at_newest_checkpoint(self):
        # rollback propagation over the logged graph: only the volatile
        # intervals roll back, so every rank restores its newest cut —
        # exactly the message-logging recovery guarantee.
        import networkx as nx

        cuts = self._staircase()
        g = rollback_dependency_graph(
            cuts, {0: {1: 2}, 1: {0: 1}}, {0: {1: 1}, 1: {0: 2}}, logged=True
        )
        seeds = [n for n, d in g.nodes(data=True) if d["volatile"]]
        rolled = set(seeds)
        for seed in seeds:
            rolled.update(nx.descendants(g, seed))
        assert rolled == set(seeds)
