"""Unit tests for the fault-injection subsystem.

Model validation, injector determinism, retry helpers, checkpoint
integrity/quarantine mechanics, the storage span-leak fix, and the
headline degradation path: corrupting the latest committed checkpoint of
any rank forces recovery to fall back to an older committed line.
"""

import pytest

from repro.apps import SOR
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
    stable_read,
    stable_write,
)
from repro.chklib.state import Snapshot
from repro.chklib.storage_mgr import CheckpointRecord, CheckpointStore
from repro.core.engine import Engine
from repro.core.errors import StorageFault
from repro.core.rng import RngStreams
from repro.core.tracing import Tracer
from repro.fault import (
    FaultModel,
    RetryPolicy,
    StorageFaultSpec,
    make_injector,
)
from repro.machine import MachineParams
from repro.machine.params import StorageParams
from repro.machine.storage import StableStorage

# ---------------------------------------------------------------------------
# model validation


def test_fault_plan_rejects_bad_times():
    with pytest.raises(ValueError):
        FaultPlan(crash_times=(-1.0,))
    with pytest.raises(ValueError):
        FaultPlan(crash_times=(float("nan"),))
    assert FaultPlan(crash_times=(5.0, 1.0)).crash_times == (1.0, 5.0)


def test_retry_policy_validation_and_backoff():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_base=-0.1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    pol = RetryPolicy(max_retries=3, backoff_base=0.1, backoff_factor=2.0)
    assert pol.delay(0) == pytest.approx(0.1)
    assert pol.delay(2) == pytest.approx(0.4)


def test_storage_fault_spec_validation():
    with pytest.raises(ValueError):
        StorageFaultSpec(write_fail_p=1.5)
    with pytest.raises(ValueError):
        StorageFaultSpec(corrupt_p=-0.1)
    assert not StorageFaultSpec().any_faults
    assert StorageFaultSpec(fail_reads_at=(3,)).any_faults


def test_fault_model_merges_simultaneous_failures():
    model = FaultModel(
        machine_crash_times=(10.0,),
        node_crash_times={2: (10.0, 20.0)},
    )
    events = model.crash_events(n_ranks=4)
    assert [ev.time for ev in events] == [10.0, 20.0]
    # machine crash subsumes the node crash but the node's disk still dies
    assert events[0].ranks == (0, 1, 2, 3)
    assert events[0].disks_lost == (2,)
    assert events[1].ranks == (2,)
    assert events[1].disks_lost == (2,)


def test_fault_model_rejects_out_of_range_rank():
    with pytest.raises(ValueError):
        FaultModel(node_crash_times={-1: (1.0,)})
    model = FaultModel.node_crash(7, 1.0)
    with pytest.raises(ValueError):
        model.crash_events(n_ranks=4)


def test_runtime_rejects_plan_and_model_together():
    with pytest.raises(ValueError):
        CheckpointRuntime(
            SOR(n=10, iters=2),
            machine=MachineParams(n_nodes=2),
            fault_plan=FaultPlan.single(1.0),
            fault_model=FaultModel.machine_crash(1.0),
        )


# ---------------------------------------------------------------------------
# injector


def test_make_injector_none_for_clean_spec():
    assert make_injector(StorageFaultSpec(), RngStreams(0)) is None


def test_scheduled_write_failures_fire_exactly_once():
    inj = make_injector(StorageFaultSpec(fail_writes_at=(2,)), RngStreams(0))
    verdicts = [inj.on_write() for _ in range(4)]
    assert [v.fail for v in verdicts] == [False, True, False, False]
    assert 0.0 <= verdicts[1].fraction <= 1.0
    assert inj.write_faults == 1


def test_injector_is_deterministic_per_seed():
    spec = StorageFaultSpec(write_fail_p=0.4, read_fail_p=0.3, corrupt_p=0.2)

    def sequence(seed):
        inj = make_injector(spec, RngStreams(seed))
        return (
            [inj.on_write().fail for _ in range(20)],
            [inj.on_read().fail for _ in range(20)],
            [inj.corrupts_checkpoint(0, i) for i in range(20)],
        )

    assert sequence(7) == sequence(7)
    assert sequence(7) != sequence(8)  # astronomically unlikely to collide


def test_scheduled_corruption_targets_one_checkpoint():
    inj = make_injector(StorageFaultSpec(corrupt_ckpts=((1, 2),)), RngStreams(0))
    assert not inj.corrupts_checkpoint(0, 2)
    assert inj.corrupts_checkpoint(1, 2)
    assert not inj.corrupts_checkpoint(1, 3)


# ---------------------------------------------------------------------------
# checkpoint integrity and quarantine


def _record(rank=0, index=1, base_index=None):
    return CheckpointRecord(
        rank=rank,
        index=index,
        snapshot=Snapshot.capture({"x": index}),
        comm_meta={},
        taken_at=0.0,
        base_index=base_index,
    )


def test_checksum_detects_silent_corruption():
    rec = _record()
    assert rec.verify_integrity()
    rec.mark_corrupted()
    assert not rec.verify_integrity()


def test_quarantine_is_idempotent():
    store = CheckpointStore(n_ranks=1)
    store.add(_record(index=1))
    store.quarantine(0, 1)
    store.quarantine(0, 1)
    assert store.quarantined_count == 1


def test_chain_intact_sees_through_quarantined_base():
    store = CheckpointStore(n_ranks=1)
    store.add(_record(index=1))
    store.add(_record(index=2, base_index=1))
    assert store.chain_intact(0, 2)
    store.quarantine(0, 1)
    # the increment's base is unusable, so the increment is too
    assert not store.chain_intact(0, 2)
    assert not store.chain_intact(0, 3)  # missing record


# ---------------------------------------------------------------------------
# storage faults + retry helpers (mini simulations)


class _FakeNode:
    id = 0

    def bg_stream_started(self):
        pass

    def bg_stream_stopped(self):
        pass


def _storage_sim(spec, seed=0):
    engine = Engine()
    tracer = Tracer(engine)
    storage = StableStorage(engine, StorageParams(), tracer=tracer)
    storage.set_fault_injector(make_injector(spec, RngStreams(seed)))
    return engine, tracer, storage


def _drive(engine, gen):
    """Run *gen* to completion; return (result, raised exception or None)."""
    box = {}

    def driver():
        try:
            box["result"] = yield from gen
        except Exception as exc:  # noqa: BLE001 - recording for asserts
            box["error"] = exc

    engine.process(driver(), name="test-driver")
    engine.run()
    return box.get("result"), box.get("error")


def test_failed_write_pays_partial_time_and_closes_span():
    engine, tracer, storage = _storage_sim(StorageFaultSpec(fail_writes_at=(1,)))
    _, err = _drive(engine, storage.write(_FakeNode(), 1e6, tag="t"))
    assert isinstance(err, StorageFault)
    assert err.partial_bytes >= 0
    # the satellite fix: the span must be closed even on a fault
    (span,) = tracer.spans_named("storage.write")
    assert span.end is not None
    # failed ops do not count as completed writes
    assert storage.write_faults == 1
    assert storage.write_ops == 0
    assert storage.bytes_written == 0


def test_stable_write_retries_until_success():
    engine, tracer, storage = _storage_sim(StorageFaultSpec(fail_writes_at=(1, 2)))
    _, err = _drive(
        engine,
        stable_write(
            storage,
            _FakeNode(),
            1e5,
            retry=RetryPolicy(max_retries=3, backoff_base=0.01),
            tracer=tracer,
        ),
    )
    assert err is None
    assert storage.write_faults == 2
    assert storage.write_ops == 1
    assert tracer.get("storage.write_retries") == 2


def test_stable_write_exhausts_budget_and_raises():
    engine, tracer, storage = _storage_sim(StorageFaultSpec(fail_writes_at=(1, 2)))
    _, err = _drive(
        engine,
        stable_write(
            storage, _FakeNode(), 1e5, retry=RetryPolicy(max_retries=1), tracer=tracer
        ),
    )
    assert isinstance(err, StorageFault)
    assert storage.write_ops == 0


def test_stable_read_retries_until_success():
    engine, tracer, storage = _storage_sim(StorageFaultSpec(fail_reads_at=(1,)))
    _, err = _drive(
        engine,
        stable_read(
            storage,
            _FakeNode(),
            1e5,
            retry=RetryPolicy(max_retries=2, backoff_base=0.01),
            tracer=tracer,
        ),
    )
    assert err is None
    assert storage.read_faults == 1
    assert storage.read_ops == 1
    assert tracer.get("storage.read_retries") == 1


# ---------------------------------------------------------------------------
# the headline degradation path: corrupt the latest committed checkpoint
# of a rank, crash, and watch recovery fall back to an older line


MACHINE = MachineParams(n_nodes=4)


def _app():
    app = SOR(n=20, iters=8, flops_per_cell=3000.0)
    app.image_bytes = 16 * 1024
    return app


def _baseline():
    report = CheckpointRuntime(_app(), machine=MACHINE, seed=3).run()
    return report.sim_time, report.result["sum"]


@pytest.mark.parametrize("victim", [0, 2])
def test_coordinated_falls_back_to_older_committed_line(victim):
    T, expected = _baseline()
    report = CheckpointRuntime(
        _app(),
        scheme=CoordinatedScheme.NB([T / 4, T / 2]),
        machine=MACHINE,
        seed=3,
        fault_model=FaultModel.machine_crash(
            0.9 * T, storage=StorageFaultSpec(corrupt_ckpts=((victim, 2),))
        ),
    ).run()
    (ev,) = report.recoveries
    # one rank's copy of round 2 rotted, so the *whole* line falls back.
    # Coordinated GC keeps only the latest committed round (commit of n
    # discards n-1), so the newest older committed line is the initial
    # state — graceful degradation, not failure.
    assert set(ev.line_indices.values()) == {0}
    assert ev.quarantined == 1
    assert ev.line_consistent
    assert report.checkpoints_quarantined == 1
    assert report.result["sum"] == expected


def test_independent_logging_falls_back_only_on_the_victim():
    T, expected = _baseline()
    report = CheckpointRuntime(
        _app(),
        scheme=IndependentScheme.IndepM([T / 4, T / 2], skew=T / 50, logging=True),
        machine=MACHINE,
        seed=3,
        fault_model=FaultModel.machine_crash(
            0.9 * T, storage=StorageFaultSpec(corrupt_ckpts=((1, 2),))
        ),
    ).run()
    (ev,) = report.recoveries
    # with logging, only the victim rolls back further; peers keep #2
    assert ev.line_indices[1] == 1
    assert all(ev.line_indices[r] == 2 for r in (0, 2, 3))
    assert ev.quarantined == 1
    assert ev.line_consistent
    assert report.result["sum"] == expected


def test_node_crash_loses_local_disk_under_two_level():
    T, expected = _baseline()
    report = CheckpointRuntime(
        _app(),
        scheme=CoordinatedScheme.NBMS([T / 2], two_level=True),
        machine=MACHINE,
        seed=3,
        fault_model=FaultModel.node_crash(1, 0.8 * T),
    ).run()
    (ev,) = report.recoveries
    assert ev.failed_ranks == (1,)
    assert ev.disks_lost == (1,)
    assert ev.line_consistent
    assert report.result["sum"] == expected
