"""Coordinated schemes on the hierarchical machine: per-server staggering
rings, per-server NBS write slots, peers-scoped markers.

The paper's staggering serialises all writers through the one host file
system with a single token ring. With S shard servers the ring splits
into S independent rings — one per server group — so the writes still
serialise *within* each server (no thrash) while the servers proceed in
parallel. At S=1 the ring must reduce exactly to the legacy global ring.
"""

import pytest

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme
from repro.machine import MachineParams

SEED = 7


def make_app():
    app = SOR(n=30, iters=10, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    return app


HIER8 = MachineParams.hierarchical(8, nodes_per_rack=4, servers=2)
FLAT8 = MachineParams.xplorer8()


def run_sor(scheme=None, machine=FLAT8):
    rt = CheckpointRuntime(make_app(), scheme=scheme, machine=machine, seed=SEED)
    return rt, rt.run()


@pytest.fixture(scope="module")
def T_flat():
    return run_sor()[1].sim_time


@pytest.fixture(scope="module")
def T_hier():
    return run_sor(machine=HIER8)[1].sim_time


def test_single_server_ring_matches_legacy(T_flat):
    """S=1: one ring over all ranks, next = (r+1) % N, leader = coordinator."""
    scheme = CoordinatedScheme.NBMS([T_flat / 2])
    rt, report = run_sor(scheme=scheme)
    assert scheme._ring_next == {r: (r + 1) % 8 for r in range(8)}
    assert scheme._ring_leader == {r: 0 for r in range(8)}


def test_two_server_rings_are_per_group(T_hier):
    scheme = CoordinatedScheme.NBMS([T_hier / 2])
    rt, report = run_sor(scheme=scheme, machine=HIER8)
    # server 0 serves ranks 0..3 (leader: the coordinator, rank 0),
    # server 1 serves ranks 4..7 (leader: its smallest rank).
    assert scheme._ring_next == {
        0: 1, 1: 2, 2: 3, 3: 0,
        4: 5, 5: 6, 6: 7, 7: 4,
    }
    assert scheme._ring_leader == {r: (0 if r < 4 else 4) for r in range(8)}


def test_staggered_writes_serialise_within_each_server(T_hier):
    scheme = CoordinatedScheme.NBMS([T_hier / 2])
    rt, report = run_sor(scheme=scheme, machine=HIER8)
    for srv in rt.storage.servers:
        assert srv.server.peak_concurrency == 1
        assert srv.bytes_written > 0


def test_unstaggered_writes_collide_within_a_server(T_hier):
    scheme = CoordinatedScheme.NBM([T_hier / 2])
    rt, report = run_sor(scheme=scheme, machine=HIER8)
    assert max(srv.server.peak_concurrency for srv in rt.storage.servers) > 1


def test_nbs_write_slots_are_per_server(T_hier):
    scheme = CoordinatedScheme.NBS([T_hier / 2])
    rt, report = run_sor(scheme=scheme, machine=HIER8)
    assert sorted(scheme._write_slot) == [0, 1]
    for srv in rt.storage.servers:
        assert srv.server.peak_concurrency == 1


def test_staggering_beats_collision_on_the_hierarchical_machine(T_hier):
    _, nbm = run_sor(scheme=CoordinatedScheme.NBM([T_hier / 2]), machine=HIER8)
    _, nbms = run_sor(scheme=CoordinatedScheme.NBMS([T_hier / 2]), machine=HIER8)
    assert nbms.sim_time < nbm.sim_time


def test_peers_markers_match_all_markers_result(T_flat):
    """Peers-scoped markers change the marker fan-out, not the answer."""
    _, full = run_sor(scheme=CoordinatedScheme.NBMS([T_flat / 2]))
    scheme = CoordinatedScheme.NBMS([T_flat / 2], marker_scope="peers")
    _, scoped = run_sor(scheme=scheme)
    assert scoped.result == full.result
    # SOR's graph degree (<= 4 at 8 ranks) < all-pairs (7): fewer control
    # messages overall.
    assert scoped.control_messages < full.control_messages


def test_peers_markers_follow_the_declared_graph(T_flat):
    scheme = CoordinatedScheme.NBMS([T_flat / 2], marker_scope="peers")
    rt, _ = run_sor(scheme=scheme)
    targets = scheme._marker_targets(rt, 2)
    assert targets == sorted(set(make_app().comm_peers(2, 8)))


def test_marker_scope_is_validated():
    with pytest.raises(ValueError):
        CoordinatedScheme.NBMS([1.0], marker_scope="everyone")


def test_marker_scope_peers_without_graph_falls_back_to_all(T_flat):
    """An application that declares no communication graph keeps the
    all-pairs flood even under marker_scope="peers"."""

    class Opaque(SOR):
        def comm_peers(self, rank, size):
            return None

    app = Opaque(n=30, iters=10, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    scheme = CoordinatedScheme.NBMS([T_flat / 2], marker_scope="peers")
    rt = CheckpointRuntime(app, scheme=scheme, machine=FLAT8, seed=SEED)
    rt.run()
    assert scheme._marker_targets(rt, 2) == [r for r in range(8) if r != 2]
