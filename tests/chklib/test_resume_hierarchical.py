"""Durable recovery lines on the hierarchical machine.

Same contract as test_resume.py — halting at *t* and restarting from the
captured line continues bit-for-bit identically to a run that crashed at
*t* and recovered in-process — but on a multi-rack machine with two
shard servers and the burst-buffer tier, so the capture must cover the
per-tier storage counters, the plane's drain counters and the per-server
staggering rings, and a crash must kill in-flight burst-buffer drains
identically on both paths.
"""

import json

import pytest

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultModel
from repro.machine import MachineParams

MACHINE = MachineParams.hierarchical(
    16, nodes_per_rack=4, servers=2, burst_buffers=True
)
SEED = 11


def make_app():
    app = SOR(n=34, iters=10, flops_per_cell=2000.0)
    app.image_bytes = 48 * 1024
    return app


def _dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def T():
    return (
        CheckpointRuntime(make_app(), machine=MACHINE, seed=SEED).run().sim_time
    )


def schemes(T):
    times = (T / 4, T / 2, 3 * T / 4)
    return {
        "coord_nb": lambda: CoordinatedScheme.NB(times),
        "coord_nbms": lambda: CoordinatedScheme.NBMS(times),
        "coord_nbms_peers": lambda: CoordinatedScheme.NBMS(
            times, marker_scope="peers"
        ),
    }


@pytest.mark.parametrize("name", ["coord_nb", "coord_nbms", "coord_nbms_peers"])
@pytest.mark.parametrize("halt_frac", [0.3, 0.55])
def test_restart_on_hierarchical_machine_is_bitwise_identical(name, halt_frac, T):
    make_scheme = schemes(T)[name]
    halt = halt_frac * T

    ra = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    ).run()
    rb = CheckpointRuntime(
        make_app(),
        scheme=make_scheme(),
        machine=MACHINE,
        seed=SEED,
        fault_model=FaultModel.machine_crash(halt),
    ).run()

    halted = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    )
    halted.run(halt_at=halt)
    assert halted.halted
    resumed = CheckpointRuntime.restart_from(halted.durable_line)
    rc = resumed.run()

    assert _dumps(rc) == _dumps(rb)
    assert rc.result == ra.result


def test_burst_buffer_drains_progress_and_survive_resume(T):
    """The NBMS run on the buffered machine actually exercises the drain
    path, and drain counters restore across the halt."""
    times = (T / 4, T / 2, 3 * T / 4)
    rt = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NBMS(times),
        machine=MACHINE,
        seed=SEED,
    )
    report = rt.run()
    assert rt.storage.drain_ops > 0
    assert rt.storage.drained_bytes > 0
    # buffered writes landed on the rack tier, drains moved them on
    assert sum(b.bytes_written for b in rt.storage.burst_buffers) > 0

    crashed = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NBMS(times),
        machine=MACHINE,
        seed=SEED,
        fault_model=FaultModel.machine_crash(0.8 * T),
    )
    crashed.run()

    halted = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NBMS(times),
        machine=MACHINE,
        seed=SEED,
    )
    halted.run(halt_at=0.8 * T)
    drained_at_halt = halted.storage.drained_bytes
    resumed = CheckpointRuntime.restart_from(halted.durable_line)
    assert resumed.storage.drained_bytes == drained_at_halt
    resumed.run()
    # the resumed run re-does rolled-back rounds exactly like the
    # in-process crash recovery (not like the uninterrupted run)
    assert resumed.storage.drain_ops == crashed.storage.drain_ops
    assert resumed.storage.drained_bytes == crashed.storage.drained_bytes
