"""Unit tests for the protocol registry (DESIGN.md §13).

The registry is the single source of truth for scheme families: alias
resolution, option schemas, the verify hooks (abstract machines, trace
checkers, event vocabularies) and the ``--list-schemes`` description
rows all come from one object. These tests pin that contract down.
"""

import pytest

from repro.chklib import CICScheme, CoordinatedScheme, IndependentScheme
from repro.chklib.schemes.msglog import MessageLoggingScheme
from repro.chklib.schemes.registry import (
    REGISTRY,
    ProtocolFamily,
    ProtocolRegistry,
)
from repro.core.tracing import EVENT_KINDS
from repro.experiments.grid import SCHEME_ALIASES, SchemeSpec


# -- the populated registry ----------------------------------------------------


def test_four_families_registered():
    names = [f.name for f in REGISTRY.families()]
    assert names == ["coordinated", "independent", "cic", "msglog"]


def test_alias_table_covers_legacy_and_new():
    table = REGISTRY.alias_table()
    legacy = {
        "coord_nb", "coord_nbm", "coord_nbms", "coord_nbs", "coord_nbc",
        "coord_nbcs", "indep", "indep_m", "indep_c", "indep_log",
        "indep_m_log", "indep_m_nolog", "coord_nb_inc", "coord_nbms_inc",
        "coord_nbcs_inc", "coord_nb_2l", "coord_nbms_2l",
    }
    new = {"cic", "cic_fdas", "indep_m_mlog"}
    assert set(table) == legacy | new
    # grid.py's SCHEME_ALIASES is the same table (single-sourced)
    assert SCHEME_ALIASES == table


def test_aliases_pin_fixed_overrides():
    assert REGISTRY.resolve("indep_m_log") == ("indep_m", {"logging": True})
    assert REGISTRY.resolve("cic") == ("cic", {})
    assert REGISTRY.resolve("cic_fdas") == ("cic", {"cic_rule": "fdas"})
    assert REGISTRY.resolve("indep_m_mlog") == ("mlog", {})


def test_unknown_alias_error_lists_available():
    with pytest.raises(ValueError, match="unknown scheme 'nope'") as ei:
        REGISTRY.resolve("nope")
    msg = str(ei.value)
    assert "available:" in msg
    # a representative from every family shows up in the hint
    for alias in ("coord_nb", "indep_m", "cic", "indep_m_mlog"):
        assert alias in msg


def test_skewed_marks_timer_families():
    assert not REGISTRY.skewed("coord_nbms")
    assert REGISTRY.skewed("indep_m")
    assert REGISTRY.skewed("cic")
    assert REGISTRY.skewed("indep_m_mlog")


def test_family_of_maps_alias_to_scheme_class():
    assert REGISTRY.family_of("coord_nb").scheme_cls is CoordinatedScheme
    assert REGISTRY.family_of("indep_log").scheme_cls is IndependentScheme
    assert REGISTRY.family_of("cic_fdas").scheme_cls is CICScheme
    assert (
        REGISTRY.family_of("indep_m_mlog").scheme_cls is MessageLoggingScheme
    )


# -- option schema enforcement -------------------------------------------------


def test_out_of_schema_option_rejected():
    with pytest.raises(ValueError, match="takes no option"):
        SchemeSpec.of("coord_nb", (1.0,), logging=True)
    with pytest.raises(ValueError, match="cic_rule"):
        SchemeSpec.of("indep_m", (1.0,), cic_rule="fdas")


def test_option_at_default_is_tolerated():
    # uniform call sites pass skew=0.0 to timerless schemes; that is a
    # no-op, not a request, so it must stay legal
    spec = SchemeSpec.of("coord_nb", (1.0,), skew=0.0)
    assert spec.skew == 0.0
    with pytest.raises(ValueError, match="skew"):
        SchemeSpec.of("coord_nb", (1.0,), skew=0.5)


def test_alias_fixed_overrides_must_be_in_schema():
    reg = ProtocolRegistry()
    reg.register(REGISTRY.family_of("coord_nb"))
    with pytest.raises(ValueError, match="not in the coordinated"):
        reg.register_alias("bad", "coord_nb", {"logging": True})


def test_duplicate_registration_rejected():
    reg = ProtocolRegistry()
    fam = REGISTRY.family_of("cic")
    reg.register(fam)
    with pytest.raises(ValueError, match="duplicate protocol family"):
        reg.register(fam)
    reg.register_alias("cic", "cic", {})
    with pytest.raises(ValueError, match="duplicate scheme alias"):
        reg.register_alias("cic", "cic", {})


# -- spec building -------------------------------------------------------------


def test_build_constructs_the_right_classes():
    assert isinstance(
        SchemeSpec.of("coord_nbms", (1.0,)).build(), CoordinatedScheme
    )
    cic = SchemeSpec.of("cic_fdas", (1.0,), skew=0.1).build()
    assert isinstance(cic, CICScheme)
    assert cic.cic_rule == "fdas"
    assert cic.skew == 0.1
    mlog = SchemeSpec.of("indep_m_mlog", (1.0,), skew=0.1).build()
    assert isinstance(mlog, MessageLoggingScheme)
    assert mlog.pessimistic_logging


# -- verify hooks --------------------------------------------------------------


def test_model_machines_enumerate_every_family_once():
    labels = [label for label, _ in REGISTRY.model_machines()]
    assert labels == ["2pc", "token-ring", "cic-index", "sender-log"]


def test_trace_checkers_deduped_and_ordered():
    from repro.verify.invariants import CicIndexRule, MsglogReplayBounds

    classes = REGISTRY.trace_checkers()
    assert len(classes) == len(set(classes))
    assert classes.index(CicIndexRule) < classes.index(MsglogReplayBounds)


def test_trace_events_registered_in_event_kinds():
    assert REGISTRY.trace_events() <= EVENT_KINDS
    assert {
        "proto.cic.forced",
        "proto.cic.promote",
        "proto.mlog.logged",
    } <= REGISTRY.trace_events()


def test_validate_rejects_rogue_event_vocabulary():
    class Rogue(CICScheme):
        TRACE_EVENTS = ("proto.not.a.kind",)

    reg = ProtocolRegistry()
    fam = REGISTRY.family_of("cic")
    reg.register(
        ProtocolFamily(
            name="rogue",
            scheme_cls=Rogue,
            bases=("rogue",),
            options=fam.options,
            build=fam.build,
            skewed=True,
        )
    )
    with pytest.raises(ValueError, match="missing from EVENT_KINDS"):
        reg.validate()


def test_describe_rows_match_alias_table():
    rows = REGISTRY.describe()
    assert [alias for alias, _, _ in rows] == REGISTRY.aliases()
    by_alias = {alias: (family, fixed) for alias, family, fixed in rows}
    assert by_alias["indep_m_log"] == ("independent", {"logging": True})
    assert by_alias["cic_fdas"] == ("cic", {"cic_rule": "fdas"})
    assert by_alias["indep_m_mlog"] == ("msglog", {})
