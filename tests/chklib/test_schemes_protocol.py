"""Protocol-level unit tests of the checkpointing schemes.

These poke at the mechanics that the integration tests only exercise
implicitly: marker counting, epoch piggybacking, channel-state recording,
token staggering, pessimistic logging costs, duplicate suppression and GC
during the run.
"""

import operator

import pytest

from repro.apps.base import Application
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from repro.machine import MachineParams
from repro.net.collectives import reduce


class PingPong(Application):
    """Two-rank message exchanger with a tunable iteration grain."""

    name = "pingpong"
    image_bytes = 8 * 1024

    def __init__(self, iters=50, flops=50_000.0):
        self.iters = iters
        self.flops = flops

    def make_state(self, rank, size, seed):
        return {"iter": 0, "acc": 0}

    def run(self, ctx, state):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while state["iter"] < self.iters:
            yield from ctx.comm.send(right, state["iter"], tag=1)
            msg = yield from ctx.comm.recv(source=left, tag=1)
            state["acc"] += msg.payload
            yield from ctx.compute(self.flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()
        total = yield from reduce(ctx.comm, state["acc"], operator.add, root=0)
        return total if ctx.rank == 0 else None


MACHINE2 = MachineParams(n_nodes=2)


def run_pingpong(scheme=None, fault=None, machine=MACHINE2, **app_kw):
    rt = CheckpointRuntime(
        PingPong(**app_kw), scheme=scheme, machine=machine, seed=1, fault_plan=fault
    )
    report = rt.run()
    return rt, report


def test_epochs_advance_with_rounds():
    rt0, base = run_pingpong()
    times = [base.sim_time / 4, base.sim_time / 2]
    rt, report = run_pingpong(scheme=CoordinatedScheme.NB(times))
    assert all(agent.epoch == 2 for agent in rt.agents)
    assert report.result == base.result


def test_marker_count_per_round():
    rt0, base = run_pingpong()
    times = [base.sim_time / 3]
    rt, report = run_pingpong(scheme=CoordinatedScheme.NB(times))
    # 2 ranks: each sends 1 marker; plus 1 request, 1 remote ack, 1 commit
    markers = report.counters.get("net.control_messages", 0)
    assert report.control_messages == 1 + 2 + 1 + 1


def test_commit_discards_previous_checkpoint():
    rt0, base = run_pingpong()
    times = [base.sim_time / 4, base.sim_time / 2]
    rt, report = run_pingpong(scheme=CoordinatedScheme.NBM(times))
    for rank in range(2):
        chain = rt.store.chain(rank)
        assert [rec.index for rec in chain] == [2]
        assert chain[0].committed


def test_tentative_checkpoint_not_used_for_recovery():
    """Crash while round 2's write is still in flight -> restore round 1."""
    rt0, base = run_pingpong()
    t1 = base.sim_time / 4
    t2 = base.sim_time / 2
    scheme = CoordinatedScheme.NB([t1, t2])
    # crash just after round 2 starts (markers sent, writes queued)
    rt, report = run_pingpong(
        scheme=CoordinatedScheme.NB([t1, t2]),
        fault=FaultPlan.single(t2 + 0.02),
    )
    rec = report.recoveries[0]
    assert set(rec.line_indices.values()) == {1}
    assert report.result == base.result


def test_nbms_token_serialises_writes():
    machine = MachineParams(n_nodes=4)
    rt0 = CheckpointRuntime(PingPong(iters=60), machine=machine, seed=1)
    base = rt0.run()
    times = [base.sim_time / 3]
    rt = CheckpointRuntime(
        PingPong(iters=60),
        scheme=CoordinatedScheme.NBMS(times),
        machine=machine,
        seed=1,
    )
    rt.run()
    assert rt.storage.server.peak_concurrency == 1


def test_nb_writes_overlap():
    machine = MachineParams(n_nodes=4)
    rt0 = CheckpointRuntime(PingPong(iters=60), machine=machine, seed=1)
    base = rt0.run()
    times = [base.sim_time / 3]
    rt = CheckpointRuntime(
        PingPong(iters=60),
        scheme=CoordinatedScheme.NB(times),
        machine=machine,
        seed=1,
    )
    rt.run()
    assert rt.storage.server.peak_concurrency > 1


def test_pessimistic_logging_charges_send_path():
    rt0, base = run_pingpong()
    times = [base.sim_time / 3]
    _, plain = run_pingpong(
        scheme=IndependentScheme.Indep(times, logging=True)
    )
    _, pess = run_pingpong(
        scheme=IndependentScheme.Indep(times, pessimistic_logging=True)
    )
    # synchronous log flush on every send is much more expensive
    assert pess.sim_time > plain.sim_time
    assert pess.result == base.result


def test_log_annex_flushed_with_checkpoint():
    rt0, base = run_pingpong()
    times = [base.sim_time / 3]
    rt, _ = run_pingpong(scheme=IndependentScheme.Indep(times, logging=True))
    for rank in range(2):
        rec = rt.store.chain(rank)[-1]
        assert len(rec.log_annex) > 0
        assert rec.log_bytes > 0
        # annex holds this rank's outgoing messages only
        assert all(m.src == rank for m in rec.log_annex)


def test_gc_runs_during_execution():
    rt0, base = run_pingpong(iters=120)
    times = [base.sim_time * f for f in (0.2, 0.4, 0.6)]
    rt, report = run_pingpong(
        iters=120,
        scheme=IndependentScheme.Indep(times, skew=0.0, logging=True, gc=True),
    )
    assert report.counters.get("chk.gc_freed_ckpts", 0) > 0
    # aligned timers on a symmetric app: the line advances, old ones die
    for rank in range(2):
        assert len(rt.store.chain(rank)) <= 2


def test_duplicate_suppression_counter_after_crash():
    rt0, base = run_pingpong(iters=120)
    times = [base.sim_time * 0.3]
    rt, report = run_pingpong(
        iters=120,
        scheme=CoordinatedScheme.NBM(times),
        fault=FaultPlan.single(base.sim_time * 0.7),
    )
    assert report.result == base.result
    # the replayed prefix re-sent messages the survivors had consumed
    assert report.counters.get("chk.duplicates_dropped", 0) >= 0


def test_independent_has_zero_control_traffic_always():
    rt0, base = run_pingpong()
    times = [base.sim_time / 4, base.sim_time / 2]
    _, report = run_pingpong(scheme=IndependentScheme.IndepM(times))
    assert report.control_messages == 0
    assert report.control_bytes == 0


def test_blocked_time_nbm_much_smaller_than_nb():
    rt0, base = run_pingpong(iters=30, flops=300_000.0)
    times = [base.sim_time / 3]
    _, nb = run_pingpong(iters=30, flops=300_000.0,
                         scheme=CoordinatedScheme.NB(times))
    _, nbm = run_pingpong(iters=30, flops=300_000.0,
                          scheme=CoordinatedScheme.NBM(times))
    assert nbm.blocked_time < nb.blocked_time / 5
