"""RunReport / RecoveryEvent to_dict <-> from_dict round-trips.

The grid executor's on-disk cache (and its uniform round-trip of fresh
results) relies on serialization preserving *every* field — including
the fault/recovery counters — and on the rebuilt report comparing equal
to the original after both sides are type-normalised.
"""

import dataclasses
import json

import pytest

from repro.chklib import CheckpointRuntime, RecoveryEvent, RunReport
from repro.experiments import SchemeSpec, WorkloadSpec, interval_times
from repro.fault import FaultModel, StorageFaultSpec
from repro.machine import MachineParams


def _full_recovery_event() -> RecoveryEvent:
    return RecoveryEvent(
        crash_time=12.5,
        line_indices={0: 2, 1: 2, 2: 1},
        rollback_checkpoints={0: 1, 1: 0, 2: 2},
        lost_time={0: 3.25, 1: 0.0, 2: 7.5},
        replayed_messages=17,
        duration=4.75,
        domino_extent=0.5,
        failed_ranks=(1, 2),
        disks_lost=(2,),
        quarantined=3,
        restore_retries=2,
        line_consistent=False,
    )


def _full_report() -> RunReport:
    return RunReport(
        app="sor",
        scheme="Coord_NBMS",
        n_nodes=4,
        seed=7,
        sim_time=123.456,
        result={"sum": 1.5, "nested": [1, 2.0, "x"]},
        checkpoints_taken=12,
        checkpoints_committed=8,
        blocked_time=9.875,
        storage_bytes_written=2.5e6,
        storage_peak_bytes=1 << 20,
        storage_peak_checkpoints=6,
        storage_final_bytes=4096,
        control_messages=42,
        control_bytes=8400,
        app_messages=600,
        app_bytes=120000,
        counters={"sync_time": 1.25, "copy_bytes": 512.0},
        recoveries=[_full_recovery_event()],
        storage_write_faults=5,
        storage_read_faults=4,
        storage_write_retries=3,
        storage_read_retries=2,
        rounds_aborted=1,
        ckpt_writes_failed=2,
        checkpoints_quarantined=3,
    )


def _roundtrip(report: RunReport) -> RunReport:
    # through actual JSON text, exactly like the on-disk cache
    return RunReport.from_dict(json.loads(json.dumps(report.to_dict())))


def test_recovery_event_roundtrip_all_fields():
    ev = _full_recovery_event()
    back = RecoveryEvent.from_dict(json.loads(json.dumps(ev.to_dict())))
    for f in dataclasses.fields(RecoveryEvent):
        assert getattr(back, f.name) == getattr(ev, f.name), f.name
    # JSON has no int-keyed dicts or tuples; from_dict must restore them
    assert all(isinstance(k, int) for k in back.line_indices)
    assert all(isinstance(k, int) for k in back.rollback_checkpoints)
    assert all(isinstance(k, int) for k in back.lost_time)
    assert isinstance(back.failed_ranks, tuple)
    assert isinstance(back.disks_lost, tuple)


def test_run_report_roundtrip_all_fields():
    report = _full_report()
    back = _roundtrip(report)
    for f in dataclasses.fields(RunReport):
        assert getattr(back, f.name) == getattr(report, f.name), f.name
    assert isinstance(back.recoveries[0], RecoveryEvent)


def test_run_report_roundtrip_is_stable():
    """A second round-trip is the identity (types already normalised)."""
    once = _roundtrip(_full_report())
    twice = _roundtrip(once)
    assert once.to_dict() == twice.to_dict()
    assert json.dumps(once.to_dict(), sort_keys=True) == json.dumps(
        twice.to_dict(), sort_keys=True
    )


def test_from_dict_defaults_for_missing_optional_fields():
    """Old cache entries without the resilience counters still load."""
    d = _full_report().to_dict()
    for key in (
        "storage_write_faults",
        "storage_read_faults",
        "storage_write_retries",
        "storage_read_retries",
        "rounds_aborted",
        "ckpt_writes_failed",
        "checkpoints_quarantined",
        "counters",
        "recoveries",
    ):
        del d[key]
    back = RunReport.from_dict(d)
    assert back.storage_write_faults == 0
    assert back.rounds_aborted == 0
    assert back.checkpoints_quarantined == 0
    assert back.counters == {}
    assert back.recoveries == []


def test_to_dict_normalises_numpy_scalars_and_arrays():
    np = pytest.importorskip("numpy")
    report = _full_report()
    report.result = {
        "sum": np.float64(3.5),
        "count": np.int64(4),
        "grid": np.arange(6, dtype=np.float64).reshape(2, 3),
    }
    report.sim_time = np.float64(9.5)
    d = json.loads(json.dumps(report.to_dict()))  # must not raise
    assert d["result"]["sum"] == 3.5
    assert d["result"]["count"] == 4
    assert d["result"]["grid"] == [[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]]
    back = RunReport.from_dict(d)
    assert isinstance(back.sim_time, float)
    assert back.result["sum"] == 3.5


def test_real_faulted_run_roundtrips():
    """End to end: a simulation with a crash + storage faults produces a
    report whose recoveries and resilience counters survive JSON."""
    workload = WorkloadSpec.of(
        "sor-26",
        "sor",
        image_bytes=32 * 1024,
        n=26,
        iters=10,
        flops_per_cell=3000.0,
    )
    machine = MachineParams(n_nodes=4)
    base = CheckpointRuntime(workload.build(), machine=machine, seed=0).run()
    T = base.sim_time
    _interval, times = interval_times(T, rounds=2)
    report = CheckpointRuntime(
        workload.build(),
        scheme=SchemeSpec.of("coord_nbms", times).build(),
        machine=machine,
        seed=0,
        fault_model=FaultModel(
            machine_crash_times=(0.8 * T,),
            storage=StorageFaultSpec(
                write_fail_p=0.10, read_fail_p=0.10, corrupt_p=0.05
            ),
        ),
    ).run()
    assert report.recoveries, "crash must have produced a recovery"
    assert (
        report.storage_write_faults
        + report.storage_read_faults
        + report.storage_write_retries
    ) > 0, "storage faults must have been injected"

    back = _roundtrip(report)
    for f in dataclasses.fields(RunReport):
        assert getattr(back, f.name) == getattr(report, f.name), f.name
    for ev, ev_back in zip(report.recoveries, back.recoveries):
        for f in dataclasses.fields(RecoveryEvent):
            assert getattr(ev_back, f.name) == getattr(ev, f.name), f.name
