"""Unit tests for Snapshot and CheckpointStore."""

import numpy as np
import pytest

from repro.chklib import CheckpointRecord, CheckpointStore, Snapshot, state_nbytes


def make_record(rank, index, state=None, **kw):
    snap = Snapshot.capture(state if state is not None else {"iter": index})
    return CheckpointRecord(
        rank=rank,
        index=index,
        snapshot=snap,
        comm_meta={"sent": {}, "consumed": {}, "coll_counter": 0},
        taken_at=float(index),
        **kw,
    )


class TestSnapshot:
    def test_roundtrip_isolates_mutation(self):
        state = {"iter": 3, "grid": np.arange(10.0)}
        snap = Snapshot.capture(state)
        state["grid"][0] = 999.0
        state["iter"] = 4
        restored = snap.restore()
        assert restored["iter"] == 3
        assert restored["grid"][0] == 0.0

    def test_restore_twice_independent(self):
        snap = Snapshot.capture({"a": np.zeros(4)})
        r1, r2 = snap.restore(), snap.restore()
        r1["a"][0] = 5
        assert r2["a"][0] == 0

    def test_nbytes_tracks_array_size(self):
        small = Snapshot.capture({"x": np.zeros(10)})
        big = Snapshot.capture({"x": np.zeros(10_000)})
        assert big.nbytes - small.nbytes > 9000 * 8 * 0.99

    def test_rng_in_state_roundtrips(self):
        rng = np.random.default_rng(42)
        rng.random(5)
        snap = Snapshot.capture({"rng": rng})
        ahead = rng.random(3)
        replay = snap.restore()["rng"].random(3)
        np.testing.assert_array_equal(ahead, replay)

    def test_non_dict_rejected(self):
        with pytest.raises(TypeError):
            Snapshot.capture([1, 2, 3])

    def test_state_nbytes_matches_capture(self):
        state = {"x": np.zeros(100)}
        assert state_nbytes(state) == Snapshot.capture(state).nbytes


class TestCheckpointRecord:
    def test_byte_accounting_with_pad(self):
        rec = make_record(0, 1, {"x": np.zeros(100)}, pad_bytes=1000)
        assert rec.state_bytes == rec.snapshot.nbytes + 1000
        assert rec.total_bytes == rec.state_bytes

    def test_channel_and_log_bytes(self):
        from repro.net import Message

        rec = make_record(0, 1)
        m = Message(src=1, dst=0, tag=0, payload=np.zeros(10), seq=1)
        m.finalize_size()
        rec.channel_msgs.append(m)
        rec.log_annex.append(m)
        assert rec.channel_bytes == m.size
        assert rec.log_bytes == m.size
        assert rec.total_bytes == rec.state_bytes + 2 * m.size


class TestCheckpointStore:
    def test_add_get_chain(self):
        store = CheckpointStore(2)
        store.add(make_record(0, 1))
        store.add(make_record(0, 2))
        store.add(make_record(1, 1))
        assert [r.index for r in store.chain(0)] == [1, 2]
        assert store.get(1, 1).rank == 1
        assert store.count() == 3
        assert store.count(rank=0) == 2

    def test_duplicate_index_rejected(self):
        store = CheckpointStore(1)
        store.add(make_record(0, 1))
        with pytest.raises(ValueError):
            store.add(make_record(0, 1))

    def test_zero_index_rejected(self):
        store = CheckpointStore(1)
        with pytest.raises(ValueError):
            store.add(make_record(0, 0))

    def test_latest_index(self):
        store = CheckpointStore(2)
        assert store.latest_index(0) == 0
        store.add(make_record(0, 3))
        assert store.latest_index(0) == 3

    def test_latest_committed_global(self):
        store = CheckpointStore(2)
        for rank in (0, 1):
            for idx in (1, 2):
                store.add(make_record(rank, idx))
        assert store.latest_committed_global() == 0
        store.commit(0, 1)
        store.commit(0, 2)
        store.commit(1, 1)
        assert store.latest_committed_global() == 1
        store.commit(1, 2)
        assert store.latest_committed_global() == 2

    def test_discard_frees_bytes(self):
        store = CheckpointStore(1)
        rec = make_record(0, 1, {"x": np.zeros(1000)})
        store.add(rec)
        freed = store.discard(0, 1)
        assert freed == rec.total_bytes
        assert store.count() == 0
        assert store.discarded_count == 1

    def test_discard_older_than(self):
        store = CheckpointStore(1)
        for idx in (1, 2, 3):
            store.add(make_record(0, idx))
        store.discard_older_than(0, 3)
        assert [r.index for r in store.chain(0)] == [3]

    def test_peaks_track_maximum(self):
        store = CheckpointStore(1)
        store.add(make_record(0, 1, {"x": np.zeros(100)}))
        store.add(make_record(0, 2, {"x": np.zeros(100)}))
        peak = store.peak_bytes
        store.discard(0, 1)
        store.add(make_record(0, 3, {"x": np.zeros(10)}))
        assert store.peak_bytes == peak
        assert store.peak_checkpoints == 2

    def test_find_logged(self):
        from repro.net import Message

        store = CheckpointStore(2)
        rec = make_record(0, 1)
        msg = Message(src=0, dst=1, tag=0, payload="m", seq=7)
        msg.finalize_size()
        rec.log_annex.append(msg)
        store.add(rec)
        assert store.find_logged(0, 1, 7) is msg
        assert store.find_logged(0, 1, 8) is None
        assert store.find_logged(1, 0, 7) is None
