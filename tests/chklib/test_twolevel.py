"""Two-level stable storage: correctness and accounting."""

import pytest

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan, IndependentScheme
from repro.machine import MachineParams

MACHINE = MachineParams(n_nodes=4)


def make_app():
    app = SOR(n=34, iters=12, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    return app


@pytest.fixture(scope="module")
def base():
    return CheckpointRuntime(make_app(), machine=MACHINE, seed=7).run()


def test_two_level_result_unchanged(base):
    times = [base.sim_time / 4, base.sim_time / 2]
    report = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB(times, two_level=True),
        machine=MACHINE,
        seed=7,
    ).run()
    assert report.result["sum"] == base.result["sum"]
    assert report.scheme == "coord_nb_2l"


def test_local_disks_receive_capture_writes(base):
    times = [base.sim_time / 4, base.sim_time / 2]
    rt = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB(times, two_level=True),
        machine=MACHINE,
        seed=7,
    )
    rt.run()
    for rank in range(4):
        assert rt.cluster.local_disk(rank).bytes_written > 0
        # the trickle ships the same bytes to the global server
        rec = rt.store.get(rank, 2)
        assert rec.global_written_at is not None
        assert rec.global_written_at > rec.written_at


def test_single_level_global_written_equals_written(base):
    times = [base.sim_time / 3]
    rt = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB(times),
        machine=MACHINE,
        seed=7,
    )
    rt.run()
    rec = rt.store.get(0, 1)
    assert rec.global_written_at == rec.written_at


def test_two_level_crash_recovery_exact_and_reads_local(base):
    times = [base.sim_time / 4, base.sim_time / 2]
    rt = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NBMS(times, two_level=True),
        machine=MACHINE,
        seed=7,
        fault_plan=FaultPlan.single(0.8 * base.sim_time),
    )
    report = rt.run()
    assert report.result["sum"] == base.result["sum"]
    assert all(disk.bytes_read > 0 for disk in rt.cluster.local_disks)
    assert rt.storage.bytes_read == 0  # the global server was not touched


def test_two_level_recovery_faster_than_global(base):
    times = [base.sim_time / 4, base.sim_time / 2]

    def run_with(two_level):
        return CheckpointRuntime(
            make_app(),
            scheme=CoordinatedScheme.NB(times, two_level=two_level),
            machine=MACHINE,
            seed=7,
            fault_plan=FaultPlan.single(0.8 * base.sim_time),
        ).run()

    slow = run_with(False)
    fast = run_with(True)
    assert fast.recoveries[0].duration < 0.25 * slow.recoveries[0].duration
    assert fast.result == slow.result == {"sum": base.result["sum"],
                                          "n": 34, "iters": 12}


def test_independent_two_level(base):
    times = [base.sim_time / 4, base.sim_time / 2]
    report = CheckpointRuntime(
        make_app(),
        scheme=IndependentScheme.IndepM(times, two_level=True, logging=True),
        machine=MACHINE,
        seed=7,
        fault_plan=FaultPlan.single(0.8 * base.sim_time),
    ).run()
    assert report.result["sum"] == base.result["sum"]
    assert report.scheme == "indep_m_2l"
