"""Unit tests for logging-aware (orphan-tolerant) garbage collection."""

import numpy as np

from repro.chklib import CheckpointRecord, CheckpointStore, Snapshot, collect_garbage
from repro.net import Message


def rec(rank, index, sent=None, consumed=None, annex=None):
    record = CheckpointRecord(
        rank=rank,
        index=index,
        snapshot=Snapshot.capture({"x": np.zeros(16)}),
        comm_meta={
            "sent": dict(sent or {}),
            "consumed": dict(consumed or {}),
            "coll_counter": 0,
        },
        taken_at=float(index),
    )
    record.written_at = float(index)
    record.committed = True
    for dst, seq in annex or []:
        m = Message(src=rank, dst=dst, tag=0, payload=b"x", seq=seq)
        m.finalize_size()
        record.log_annex.append(m)
    return record


def test_logging_gc_keeps_only_latest_when_all_consumed():
    store = CheckpointStore(2)
    # rank 0 logged sends 1..2 with ckpt1, 3..4 with ckpt2
    store.add(rec(0, 1, sent={1: 2}, annex=[(1, 1), (1, 2)]))
    store.add(rec(0, 2, sent={1: 4}, annex=[(1, 3), (1, 4)]))
    # rank 1's latest checkpoint has consumed everything rank 0 sent
    store.add(rec(1, 1, consumed={0: 2}))
    store.add(rec(1, 2, consumed={0: 4}))
    stats = collect_garbage(store, logging_recovery=True)
    assert stats.line_indices == {0: 2, 1: 2}
    assert [r.index for r in store.chain(0)] == [2]
    assert [r.index for r in store.chain(1)] == [2]
    assert stats.freed_checkpoints == 2


def test_logging_gc_keeps_old_checkpoint_with_live_intransit_logs():
    store = CheckpointStore(2)
    # ckpt1's annex holds seq 2, which rank 1's latest cut has NOT consumed
    store.add(rec(0, 1, sent={1: 2}, annex=[(1, 1), (1, 2)]))
    store.add(rec(0, 2, sent={1: 2}))
    store.add(rec(1, 1, consumed={0: 1}))
    stats = collect_garbage(store, logging_recovery=True)
    # rank 0's ckpt1 must survive: seq 2 is in transit across the line
    assert [r.index for r in store.chain(0)] == [1, 2]
    assert stats.freed_checkpoints == 0


def test_logging_gc_old_checkpoint_without_annex_is_garbage():
    store = CheckpointStore(1)
    store.add(rec(0, 1))
    store.add(rec(0, 2))
    store.add(rec(0, 3))
    stats = collect_garbage(store, logging_recovery=True)
    assert [r.index for r in store.chain(0)] == [3]
    assert stats.freed_checkpoints == 2


def test_logging_gc_vs_transitless_gc_difference():
    """The same store: transitless GC collects nothing (misaligned counts),
    logging GC reduces to the latest line."""

    def build():
        store = CheckpointStore(2)
        store.add(rec(0, 1, sent={1: 3}, annex=[(1, 1), (1, 2), (1, 3)]))
        store.add(rec(0, 2, sent={1: 6}, annex=[(1, 4), (1, 5), (1, 6)]))
        store.add(rec(1, 1, consumed={0: 2}))
        # seq 6 still in transit at rank 1's newest cut
        store.add(rec(1, 2, consumed={0: 5}))
        return store

    strict = build()
    stats_strict = collect_garbage(strict, transitless=True)
    # transitless rollback cascades to the initial states: nothing to free
    assert stats_strict.freed_checkpoints == 0
    assert stats_strict.line_indices == {0: 0, 1: 0}

    logged = build()
    stats_logged = collect_garbage(logged, logging_recovery=True)
    # ckpt1's annex (seqs 1-3) is fully consumed by rank 1's latest cut:
    # the old checkpoints die; seq 6 lives in the latest annex, which stays
    assert stats_logged.freed_checkpoints == 2
    assert logged.count() == 2
