"""Checkpoint policies: scheduling as a first-class, auditable decision.

Covers the policy subsystem on both scheme families: the ``FixedTimes``
default reproduces legacy fixed-schedule runs byte-for-byte, ``Periodic``
and ``PhaseTriggered`` drive checkpoints without a precomputed schedule,
``FailureRateAdaptive`` narrows its interval exactly when faults are
observed, ``StoragePressure`` widens under occupancy — and every run's
``policy.*`` event stream passes the trace invariants.
"""

import json

import pytest

from repro.apps import SOR
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FailureRateAdaptive,
    FaultModel,
    FixedTimes,
    IndependentScheme,
    Periodic,
    PhaseTriggered,
    StoragePressure,
    build_policy,
    policy_spec,
)
from repro.core.errors import SimulationError
from repro.fault import StorageFaultSpec
from repro.machine import MachineParams
from repro.verify import check_runtime

MACHINE = MachineParams(n_nodes=4)
SEED = 11


def make_app():
    app = SOR(n=26, iters=10, flops_per_cell=3000.0)
    app.image_bytes = 32 * 1024
    return app


def run(scheme, fault_model=None, seed=SEED):
    rt = CheckpointRuntime(
        make_app(),
        scheme=scheme,
        machine=MACHINE,
        seed=seed,
        fault_model=fault_model,
    )
    report = rt.run()
    audit = check_runtime(rt)
    assert audit.ok, audit.violations
    return report


def _dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def T():
    return (
        CheckpointRuntime(make_app(), machine=MACHINE, seed=SEED)
        .run()
        .sim_time
    )


# -- FixedTimes: the legacy knob, unchanged ------------------------------------


@pytest.mark.parametrize("family", ["coord", "indep"])
def test_fixed_times_matches_legacy_schedule(family, T):
    times = (T / 4, T / 2, 3 * T / 4)
    if family == "coord":
        legacy = CoordinatedScheme.NB(times)
        wrapped = CoordinatedScheme.NB(times, policy=FixedTimes(times))
    else:
        legacy = IndependentScheme.Indep(times, logging=True)
        wrapped = IndependentScheme.Indep(
            times, logging=True, policy=FixedTimes(times)
        )
    assert _dumps(run(legacy)) == _dumps(run(wrapped))


def test_fixed_times_emits_decide_events(T):
    times = (T / 4, T / 2)
    rep = run(CoordinatedScheme.NB(times, policy=FixedTimes(times)))
    assert rep.counters["policy.decisions"] == len(times)


# -- Periodic ------------------------------------------------------------------


def test_periodic_drives_both_families(T):
    interval = T / 4
    for scheme in (
        CoordinatedScheme.NB((), policy=Periodic(interval, stop=4 * T)),
        IndependentScheme.Indep(
            (), logging=True, policy=Periodic(interval, stop=4 * T)
        ),
    ):
        rep = run(scheme)
        assert rep.counters["policy.decisions"] >= 2
        assert rep.checkpoints_committed >= 1
        mean = (
            rep.counters["policy.interval_sum"]
            / rep.counters["policy.decisions"]
        )
        assert mean == pytest.approx(interval)


def test_periodic_rejects_nonpositive_interval():
    with pytest.raises(ValueError, match="positive"):
        Periodic(0.0)


# -- PhaseTriggered: point-driven, no timers -----------------------------------


@pytest.mark.parametrize("family", ["coord", "indep"])
def test_phase_triggered_cuts_at_points(family):
    policy = PhaseTriggered(every=3)
    if family == "coord":
        scheme = CoordinatedScheme.NB((), policy=policy)
    else:
        scheme = IndependentScheme.Indep((), logging=True, policy=policy)
    rep = run(scheme)
    assert rep.counters["policy.decisions"] >= 1
    assert rep.checkpoints_committed >= 1


# -- FailureRateAdaptive -------------------------------------------------------


def _faults(T):
    return FaultModel(
        machine_crash_times=(0.55 * T,),
        storage=StorageFaultSpec(write_fail_p=0.08, read_fail_p=0.08),
    )


def test_adaptive_narrows_under_faults_and_not_when_quiet(T):
    interval = T / 4

    def scheme():
        return CoordinatedScheme.NB(
            (),
            policy=FailureRateAdaptive(base_interval=interval, stop=4 * T),
        )

    faulted = run(scheme(), fault_model=_faults(T))
    quiet = run(scheme())

    assert faulted.counters.get("policy.narrowings", 0) > 0
    assert quiet.counters.get("policy.narrowings", 0) == 0
    assert len(faulted.recoveries) >= 1

    def mean(rep):
        return (
            rep.counters["policy.interval_sum"]
            / rep.counters["policy.decisions"]
        )

    # the acceptance criterion: adaptation demonstrably changes frequency
    assert mean(faulted) < mean(quiet)
    # the narrowed mean never escapes the advertised clamp
    assert mean(faulted) >= interval / 4.0
    # both runs still compute the undisturbed answer
    assert faulted.result == quiet.result


def test_adaptive_parameter_validation():
    with pytest.raises(ValueError, match="narrow"):
        FailureRateAdaptive(1.0, narrow=1.5)
    with pytest.raises(ValueError, match="widen"):
        FailureRateAdaptive(1.0, widen=0.5)
    with pytest.raises(ValueError, match="lo"):
        FailureRateAdaptive(1.0, min_interval=2.0)


# -- StoragePressure -----------------------------------------------------------


def test_storage_pressure_widens_as_storage_fills(T):
    interval = T / 5
    # a tiny budget: the second decision already sees stored checkpoints
    policy = StoragePressure(
        base_interval=interval, budget_bytes=8 * 1024, stop=4 * T
    )
    rep = run(IndependentScheme.Indep((), logging=False, policy=policy))
    assert rep.counters.get("policy.widenings", 0) > 0
    assert rep.counters.get("policy.narrowings", 0) == 0


# -- declarative specs ---------------------------------------------------------


def test_policy_spec_round_trip():
    spec = policy_spec("periodic", interval=1.5, stop=10.0)
    assert spec == ("periodic", (("interval", 1.5), ("stop", 10.0)))
    policy = build_policy(spec)
    assert isinstance(policy, Periodic)
    assert policy.interval == 1.5
    assert policy.stop == 10.0


def test_policy_spec_normalises_sequences():
    spec = policy_spec("fixed", times=[1.0, 2.0])
    assert spec == ("fixed", (("times", (1.0, 2.0)),))
    assert build_policy(spec).times == (1.0, 2.0)


def test_policy_spec_unknown_kind():
    with pytest.raises(SimulationError, match="unknown policy kind"):
        policy_spec("young-daly")
    with pytest.raises(SimulationError, match="unknown policy kind"):
        build_policy(("young-daly", ()))
