"""Durable recovery lines: bitwise-identical continuation across a halt.

The contract under test (DESIGN.md §9): halting a run at *t* and
restarting from the captured :class:`DurableLine` — even across a
process boundary via the on-disk frame — continues **bit-for-bit
identically** to a run that crashed at *t* and recovered in-process.

Four runs per scheme family:

* **A** — uninterrupted (the ground-truth application result);
* **B** — in-process ``FaultModel.machine_crash(t)``;
* **C1** — same run halted at *t* via ``run(halt_at=t)``;
* **C** — ``restart_from(C1.durable_line)``.

Asserts ``C.to_dict() == B.to_dict()`` exactly (every counter, every
recovery record, the final simulated clock) and ``C.result == A.result``.
"""

import json

import pytest

from repro.apps import SOR, Gauss
from repro.chklib import (
    CheckpointRuntime,
    CICScheme,
    CoordinatedScheme,
    DurableLine,
    FaultModel,
    IndependentScheme,
    NoCheckpointing,
)
from repro.chklib.schemes.msglog import MessageLoggingScheme
from repro.chklib.resume import LINE_MAGIC
from repro.core.errors import ResumeError
from repro.machine import MachineParams

MACHINE = MachineParams(n_nodes=4)
SEED = 7


def make_app():
    app = SOR(n=30, iters=10, flops_per_cell=2400.0)
    app.image_bytes = 64 * 1024
    return app


def normal_time() -> float:
    return CheckpointRuntime(make_app(), machine=MACHINE, seed=SEED).run().sim_time


def schemes(T):
    times = (T / 4, T / 2, 3 * T / 4)
    return {
        "coord_nb": lambda: CoordinatedScheme.NB(times),
        "coord_nbm": lambda: CoordinatedScheme.NBM(times),
        "indep_log": lambda: IndependentScheme.Indep(times, logging=True),
        "indep_nolog": lambda: IndependentScheme.Indep(times, logging=False),
        "cic": lambda: CICScheme.BCS(times, skew=T / 10),
        "cic_fdas": lambda: CICScheme.FDAS(times, skew=T / 10),
        "mlog": lambda: MessageLoggingScheme.Mlog(times, skew=T / 10),
    }


def _dumps(report):
    return json.dumps(report.to_dict(), sort_keys=True)


@pytest.fixture(scope="module")
def T():
    return normal_time()


@pytest.mark.parametrize(
    "name",
    [
        "coord_nb",
        "coord_nbm",
        "indep_log",
        "indep_nolog",
        "cic",
        "cic_fdas",
        "mlog",
    ],
)
def test_restart_continues_bitwise_identically(name, T):
    make_scheme = schemes(T)[name]
    halt = 0.55 * T

    ra = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    ).run()
    rb = CheckpointRuntime(
        make_app(),
        scheme=make_scheme(),
        machine=MACHINE,
        seed=SEED,
        fault_model=FaultModel.machine_crash(halt),
    ).run()

    halted = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    )
    halted.run(halt_at=halt)
    assert halted.halted
    assert halted.durable_line is not None
    assert halted.durable_line.meta["halted_at"] == pytest.approx(halt)

    resumed = CheckpointRuntime.restart_from(halted.durable_line)
    rc = resumed.run()

    # the restart IS the crash recovery, continued bit-for-bit
    assert _dumps(rc) == _dumps(rb)
    assert len(resumed.recoveries) == 1
    # and the application's answer is the undisturbed one
    assert rc.result == ra.result


def test_restart_from_disk_roundtrip(tmp_path, T):
    halt = 0.55 * T
    make_scheme = schemes(T)["coord_nb"]
    rb = CheckpointRuntime(
        make_app(),
        scheme=make_scheme(),
        machine=MACHINE,
        seed=SEED,
        fault_model=FaultModel.machine_crash(halt),
    ).run()

    halted = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    )
    halted.run(halt_at=halt)
    path = tmp_path / "lines" / "run.line"
    halted.durable_line.save(path)

    loaded = DurableLine.load(path)
    assert loaded.meta == halted.durable_line.meta
    rc = CheckpointRuntime.restart_from(loaded).run()
    assert _dumps(rc) == _dumps(rb)

    # restart_from also accepts the path itself
    rc2 = CheckpointRuntime.restart_from(path).run()
    assert _dumps(rc2) == _dumps(rb)


def test_two_restarts_from_one_line_are_independent(T):
    halt = 0.55 * T
    make_scheme = schemes(T)["indep_log"]
    halted = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    )
    halted.run(halt_at=halt)
    line = halted.durable_line
    r1 = CheckpointRuntime.restart_from(line).run()
    r2 = CheckpointRuntime.restart_from(line).run()
    assert _dumps(r1) == _dumps(r2)


def test_halt_after_completion_never_fires(T):
    make_scheme = schemes(T)["coord_nb"]
    rt = CheckpointRuntime(
        make_app(), scheme=make_scheme(), machine=MACHINE, seed=SEED
    )
    rep = rt.run(halt_at=100.0 * T)  # way past the app's end
    assert not rt.halted
    assert rt.durable_line is None
    assert rep.result is not None


def test_halt_requires_a_scheme():
    rt = CheckpointRuntime(
        make_app(), scheme=NoCheckpointing(), machine=MACHINE, seed=SEED
    )
    with pytest.raises(ResumeError, match="without a checkpointing scheme"):
        rt.run(halt_at=1.0)


def test_halt_must_be_in_the_future():
    rt = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB([1.0]),
        machine=MACHINE,
        seed=SEED,
    )
    with pytest.raises(ResumeError, match="future"):
        rt.run(halt_at=-1.0)


# -- damaged frames ----------------------------------------------------------


def _saved_line(tmp_path, T):
    halted = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB((T / 4, T / 2)),
        machine=MACHINE,
        seed=SEED,
    )
    halted.run(halt_at=0.55 * T)
    path = tmp_path / "run.line"
    halted.durable_line.save(path)
    return path


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(ResumeError, match="cannot read"):
        DurableLine.load(tmp_path / "nope.line")


def test_load_truncated_frame_raises(tmp_path, T):
    path = _saved_line(tmp_path, T)
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # torn write
    with pytest.raises(ResumeError, match="CRC|truncated"):
        DurableLine.load(path)


def test_load_flipped_byte_raises(tmp_path, T):
    path = _saved_line(tmp_path, T)
    raw = bytearray(path.read_bytes())
    raw[len(raw) // 2] ^= 0xFF
    path.write_bytes(bytes(raw))
    with pytest.raises(ResumeError, match="CRC"):
        DurableLine.load(path)


def test_load_bad_magic_raises(tmp_path, T):
    path = _saved_line(tmp_path, T)
    raw = path.read_bytes()
    path.write_bytes(b"XXXX" + raw[len(LINE_MAGIC):])
    with pytest.raises(ResumeError, match="bad magic"):
        DurableLine.load(path)


def test_restart_config_mismatch_raises(T):
    halted = CheckpointRuntime(
        make_app(),
        scheme=CoordinatedScheme.NB((T / 4, T / 2)),
        machine=MACHINE,
        seed=SEED,
    )
    halted.run(halt_at=0.55 * T)
    other = Gauss(n=12, flops_per_cell=100.0)  # different application
    with pytest.raises(ResumeError, match="does not match"):
        CheckpointRuntime.restart_from(halted.durable_line, app=other)
