"""Model-checker tests: the shipped protocol is clean, every mutation dies.

The acceptance bar for the subsystem: exhaustive exploration of the N=3
coordinated 2PC finds zero violations on the faithful abstraction, and
each deliberately-injected protocol bug is caught with a counterexample.
"""

import pytest

from repro.verify import (
    CicIndexModel,
    ModelBugs,
    SenderLogModel,
    TokenRingModel,
    TwoPhaseCommitModel,
    explore,
)


# -- the shipped protocol is correct ------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4])
def test_shipped_2pc_clean(n):
    result = explore(TwoPhaseCommitModel(n_ranks=n))
    assert result.complete, "state space must be exhausted, not truncated"
    assert result.ok, result.summary()
    assert result.states_explored > 0
    assert result.terminal_states > 0


@pytest.mark.parametrize("n", [2, 3, 4, 6])
def test_shipped_token_ring_clean(n):
    result = explore(TokenRingModel(n_ranks=n))
    assert result.complete and result.ok, result.summary()


@pytest.mark.parametrize("n", [2, 3])
def test_shipped_cic_index_rule_clean(n):
    result = explore(CicIndexModel(n_ranks=n))
    assert result.complete and result.ok, result.summary()
    assert result.states_explored > 0 and result.terminal_states > 0


@pytest.mark.parametrize("n", [2, 3])
def test_shipped_sender_log_clean(n):
    result = explore(SenderLogModel(n_ranks=n))
    assert result.complete and result.ok, result.summary()


def test_exploration_is_exhaustive_at_n3():
    """The headline acceptance criterion: N=3 with every rank allowed to
    fail its write explores the full interleaving space with 0 violations."""
    result = explore(TwoPhaseCommitModel(n_ranks=3))
    assert result.complete
    assert result.ok
    # sanity on scale: every combination of abort votes and message orders
    # is present, so the space is far larger than the happy path alone
    assert result.states_explored > 300
    assert result.transitions > result.states_explored


def test_no_faults_shrinks_the_space():
    full = explore(TwoPhaseCommitModel(n_ranks=3))
    happy = explore(TwoPhaseCommitModel(n_ranks=3, fault_ranks=()))
    assert happy.ok and happy.complete
    assert happy.states_explored < full.states_explored


# -- every injected bug is flagged --------------------------------------------


def _violated(result):
    assert not result.ok, "mutation must be caught"
    return {v.invariant for v in result.violations}


def test_bug_commit_without_all_acks():
    result = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(commit_without_all_acks=True))
    )
    names = _violated(result)
    assert "commit_implies_all_acks" in names


def test_bug_ack_before_write():
    """Acking before the write lands breaks commit-on-recovery soundness:
    a COMMIT no longer proves every rank's record is on stable storage."""
    result = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(ack_before_write=True))
    )
    names = _violated(result)
    assert "commit_implies_all_written" in names or "no_commit_of_unwritten_record" in names


def test_bug_dropped_ack_wedges_the_round():
    result = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(drop_ack=1))
    )
    names = _violated(result)
    assert "termination_all_decided" in names


def test_bug_ignored_abort_wedges_the_round():
    result = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(ignore_abort=True))
    )
    names = _violated(result)
    assert "termination_all_decided" in names


def test_bug_commit_on_abort_breaks_atomicity():
    result = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(commit_on_abort=True))
    )
    names = _violated(result)
    assert "no_commit_after_abort_vote" in names or "agreement" in names


def test_bug_skipped_token_handoff():
    result = explore(TokenRingModel(n_ranks=4, skip_token=2))
    assert not result.ok
    names = {v.invariant for v in result.violations}
    assert names & {"storage_write_mutex", "all_writes_complete"}


def test_bug_skipped_forced_checkpoint_breaks_index_rule():
    """A CIC receiver that delivers a higher-index message without
    raising its own index leaves an orphan-capable interval behind."""
    result = explore(CicIndexModel(n_ranks=3, skip_forced=True))
    names = _violated(result)
    assert "cic_index_rule" in names


def test_bug_unlogged_delivery_is_flagged():
    result = explore(SenderLogModel(n_ranks=3, skip_log=True))
    names = _violated(result)
    assert "delivered_implies_logged" in names


def test_bug_out_of_order_replay_is_flagged():
    result = explore(SenderLogModel(n_ranks=3, out_of_order_replay=True))
    names = _violated(result)
    assert "replay_in_order" in names


def test_counterexamples_carry_shortest_traces():
    result = explore(
        TwoPhaseCommitModel(n_ranks=2, bugs=ModelBugs(commit_without_all_acks=True))
    )
    assert not result.ok
    v = result.violations[0]
    assert v.trace, "BFS must produce a non-empty action trace"
    assert all(isinstance(step, str) for step in v.trace)


def test_stop_at_first_short_circuits():
    full = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(commit_on_abort=True))
    )
    first = explore(
        TwoPhaseCommitModel(n_ranks=3, bugs=ModelBugs(commit_on_abort=True)),
        stop_at_first=True,
    )
    assert len(first.violations) == 1
    assert len(full.violations) >= len(first.violations)
    assert first.states_explored <= full.states_explored


def test_state_budget_marks_incomplete():
    result = explore(TwoPhaseCommitModel(n_ranks=4), max_states=100)
    assert not result.complete
