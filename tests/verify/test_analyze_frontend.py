"""Tests for the shared static-analysis front-end (Module/Project)."""

import textwrap

from repro.verify.analyze.frontend import (
    GENERATOR_PRIMITIVES,
    Module,
    Project,
    build_project,
    dotted_name,
)


def _module(source, path="pkg/mod.py"):
    return Module.from_source(textwrap.dedent(source), path=path)


def _project(*sources):
    return Project([_module(s, path=f"pkg/m{i}.py") for i, s in enumerate(sources)])


# -- Module indexing ----------------------------------------------------------


def test_functions_indexed_with_generator_flag():
    mod = _module(
        """
        def plain(x):
            return x + 1

        def gen(ctx):
            yield from ctx.timeout(1.0)
        """
    )
    by_name = {f.name: f for f in mod.functions}
    assert not by_name["plain"].is_generator
    assert by_name["gen"].is_generator


def test_generator_flag_is_own_scope_only():
    # a yield inside a nested def must not make the outer def a generator
    mod = _module(
        """
        def outer(ctx):
            def inner():
                yield 1
            return inner
        """
    )
    by_name = {f.name: f for f in mod.functions}
    assert not by_name["outer"].is_generator
    assert by_name["inner"].is_generator


def test_method_qualnames_and_class_membership():
    mod = _module(
        """
        class Agent:
            def step(self, ctx):
                yield from ctx.compute(1.0)
        """
    )
    (fn,) = mod.functions
    assert fn.qualname == "Agent.step"
    assert fn.class_name == "Agent"
    (cls,) = mod.classes
    assert [m.name for m in cls.methods] == ["step"]


def test_class_manifests_and_self_fields():
    mod = _module(
        """
        class Thing:
            RESUME_FIELDS = ("a", "b")
            VOLATILE_FIELDS = ("engine",)
            NOT_A_MANIFEST = ("c",) + ("d",)   # non-literal: ignored

            def __init__(self):
                self.a = 1
                self.engine = None

            def tick(self):
                self.b += 1
        """
    )
    (cls,) = mod.classes
    assert cls.manifests["RESUME_FIELDS"] == ("a", "b")
    assert cls.manifests["VOLATILE_FIELDS"] == ("engine",)
    assert cls.declared_fields() == {"a", "b", "engine"}
    assert set(cls.self_fields) == {"a", "b", "engine"}


def test_class_bases_use_terminal_names():
    mod = _module(
        """
        class Mine(base.Scheme, Mixin):
            pass
        """
    )
    (cls,) = mod.classes
    assert cls.bases == ("Scheme", "Mixin")


def test_syntax_error_recorded_not_raised():
    mod = _module("def broken(:\n")
    assert mod.tree is None
    assert mod.syntax_error is not None
    assert mod.functions == []


def test_allow_pragma_named_blanket_and_mismatch():
    mod = _module(
        """
        a = 1  # verify: allow[cleanup-mutation]
        b = 2  # verify: allow
        c = 3
        """
    )
    assert mod.allowed(2, "cleanup-mutation")
    assert not mod.allowed(2, "nondet-taint")
    assert mod.allowed(3, "anything-at-all")
    assert not mod.allowed(4, "cleanup-mutation")


# -- generator-name classification --------------------------------------------


def test_name_with_all_generator_defs_classifies():
    project = _project(
        """
        def warmup(ctx):
            yield from ctx.compute(1.0)
        """,
        """
        class Other:
            def warmup(self, ctx):
                yield from ctx.timeout(1.0)
        """,
    )
    assert "warmup" in project.generator_names


def test_ambiguous_name_does_not_classify():
    # one def is a generator, one is not -> by-name attribution is unsafe
    project = _project(
        """
        def run(ctx):
            yield from ctx.compute(1.0)
        """,
        """
        def run(x):
            return x
        """,
    )
    assert "run" not in project.generator_names


def test_thin_wrapper_classifies_to_fixed_point():
    project = _project(
        """
        def base_step(ctx):
            yield from ctx.compute(1.0)

        def wrapper(ctx):
            return base_step(ctx)

        def wrapper_of_wrapper(ctx):
            return wrapper(ctx)
        """
    )
    assert "wrapper" in project.generator_names
    assert "wrapper_of_wrapper" in project.generator_names


def test_wrapper_of_primitive_classifies():
    project = _project(
        """
        def pause(ctx, dt):
            return ctx.timeout(dt)
        """
    )
    assert "pause" in project.generator_names


# -- class hierarchy helpers --------------------------------------------------


def test_subclasses_of_is_transitive():
    project = _project(
        """
        class Scheme:
            pass

        class Mid(Scheme):
            pass

        class Leaf(Mid):
            pass

        class Unrelated:
            pass
        """
    )
    names = {c.name for c in project.subclasses_of(["Scheme"])}
    assert names == {"Scheme", "Mid", "Leaf"}


def test_ancestry_walks_base_names_across_modules():
    project = _project(
        """
        class Base:
            RESUME_FIELDS = ("x",)
        """,
        """
        class Child(Base):
            RESUME_FIELDS = ("y",)
        """,
    )
    child = project.classes_by_name["Child"][0]
    names = {c.name for c in project.ancestry(child)}
    assert names == {"Child", "Base"}


# -- misc ---------------------------------------------------------------------


def test_dotted_name_on_chains_and_non_chains():
    import ast

    def expr(src):
        return ast.parse(src, mode="eval").body

    assert dotted_name(expr("a.b.c")) == "a.b.c"
    assert dotted_name(expr("name")) == "name"
    assert dotted_name(expr("f().g")) is None


def test_primitive_set_covers_the_comm_surface():
    assert {"timeout", "compute", "send", "recv", "barrier"} <= GENERATOR_PRIMITIVES


def test_build_project_default_is_whole_program():
    project = build_project()
    assert project.whole_program
    assert project.modules  # the src/repro tree parsed


def test_build_project_subset_is_not_whole_program(tmp_path):
    f = tmp_path / "one.py"
    f.write_text("x = 1\n")
    project = build_project([tmp_path])
    assert not project.whole_program
    assert len(project.modules) == 1
