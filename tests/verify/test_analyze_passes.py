"""Mutation tests: each analysis pass catches its seeded bug class.

Every test plants one representative bug in a synthetic module and
asserts the pass flags it — and that the repaired twin stays clean, so
the rules discriminate rather than blanket-fire.
"""

import textwrap

from repro.verify.analyze import analyze
from repro.verify.analyze.frontend import Module, Project
from repro.verify.analyze.passes.backend_purity import backend_purity_pass
from repro.verify.analyze.passes.capture import capture_pass
from repro.verify.analyze.passes.cleanup_mutation import cleanup_mutation_pass
from repro.verify.analyze.passes.nondet_taint import nondet_taint_pass
from repro.verify.analyze.passes.trace_conformance import trace_conformance_pass
from repro.verify.analyze.passes.yield_discipline import yield_discipline_pass


def _project(source, path="pkg/mod.py", whole_program=False):
    module = Module.from_source(textwrap.dedent(source), path=path)
    return Project([module], whole_program=whole_program)


def _rules(findings):
    return [f.rule for f in findings]


# -- 1. yield-discipline: generator created, never driven ---------------------


def test_undriven_generator_assignment_flagged():
    project = _project(
        """
        def worker(ctx):
            g = ctx.compute(100.0)
            yield from ctx.timeout(1.0)
        """
    )
    findings = yield_discipline_pass(project)
    assert _rules(findings) == ["undriven-generator"]
    assert "never driven" in findings[0].message


def test_driven_generator_assignment_clean():
    project = _project(
        """
        def worker(ctx):
            g = ctx.compute(100.0)
            yield from g
        """
    )
    assert yield_discipline_pass(project) == []


def test_spawned_generator_assignment_clean():
    # handing the generator to the engine counts as driving it
    project = _project(
        """
        def worker(ctx, engine):
            g = ctx.compute(100.0)
            engine.spawn(g)
            yield from ctx.timeout(1.0)
        """
    )
    assert yield_discipline_pass(project) == []


def test_plain_call_of_project_coroutine_flagged():
    # the whole-program upgrade over the fixed primitive list: `warmup`
    # is a *project* coroutine, invisible to the hygiene lint's rule
    project = _project(
        """
        def warmup(ctx):
            yield from ctx.timeout(1.0)

        def worker(ctx):
            warmup(ctx)
            yield from ctx.compute(5.0)
        """
    )
    findings = yield_discipline_pass(project)
    assert _rules(findings) == ["undriven-generator"]
    assert "warmup" in findings[0].message


def test_yield_from_project_coroutine_clean():
    project = _project(
        """
        def warmup(ctx):
            yield from ctx.timeout(1.0)

        def worker(ctx):
            yield from warmup(ctx)
        """
    )
    assert yield_discipline_pass(project) == []


def test_undriven_generator_allow_pragma():
    project = _project(
        """
        def worker(ctx):
            g = ctx.compute(100.0)  # verify: allow[undriven-generator]
            yield from ctx.timeout(1.0)
        """
    )
    assert yield_discipline_pass(project) == []


# -- 2. cleanup-mutation: the PR 5 `_quiesced` regression ---------------------

# PR 5's worst bug: a process coroutine's `finally:` reached into cluster
# state during restore-time teardown, un-quiescing the storage rate mid-
# restore. This fixture replays that exact shape.
_PR5_FIXTURE = """
    def restore_reader(rt, rank):
        try:
            yield rt.engine.timeout(1.0)
        finally:
            rt.cluster._blocked_ranks.discard(rank)
            rt.cluster._apply_storage_rate()
"""


def test_pr5_cleanup_unquiesce_bug_flagged():
    findings = cleanup_mutation_pass(_project(_PR5_FIXTURE))
    assert _rules(findings) == ["cleanup-mutation", "cleanup-mutation"]
    assert all("finally" in f.message for f in findings)
    assert "quiesce-guard" in findings[0].message


def test_quiesce_guard_api_in_finally_clean():
    project = _project(
        """
        def restore_reader(rt, rank):
            try:
                yield rt.engine.timeout(1.0)
            finally:
                rt.cluster.set_rank_blocked(rank, False)
        """
    )
    assert cleanup_mutation_pass(project) == []


def test_except_generator_exit_write_flagged():
    project = _project(
        """
        def worker(rt, rank):
            try:
                yield rt.engine.timeout(1.0)
            except GeneratorExit:
                rt.storage.write_faults = 0
                raise
        """
    )
    findings = cleanup_mutation_pass(project)
    assert _rules(findings) == ["cleanup-mutation"]
    assert "except GeneratorExit" in findings[0].message


def test_non_generator_finally_not_flagged():
    # only process coroutines run their cleanup mid-restore
    project = _project(
        """
        def report(rt):
            try:
                return rt.cluster.snapshot()
            finally:
                rt.cluster.set_load(0)
        """
    )
    assert cleanup_mutation_pass(project) == []


def test_machine_modules_exempt():
    # repro/machine implements the guarded state; the rule polices clients
    project = _project(_PR5_FIXTURE, path="src/repro/machine/cluster.py")
    assert cleanup_mutation_pass(project) == []


def test_local_state_in_finally_clean():
    project = _project(
        """
        def worker(ctx):
            pending = []
            try:
                yield from ctx.compute(1.0)
            finally:
                pending.clear()
        """
    )
    assert cleanup_mutation_pass(project) == []


# -- 3. capture-completeness: a field dropped from the manifests --------------


def test_scheme_field_missing_from_manifests_flagged():
    project = _project(
        """
        class Scheme:
            RESUME_FIELDS = ("times",)

        class SkewedScheme(Scheme):
            RESUME_FIELDS = ("skew",)
            VOLATILE_FIELDS = ("_write_slot",)

            def __init__(self, times, skew):
                self.times = times
                self.skew = skew
                self.drift = 0.0
                self._write_slot = None
        """
    )
    findings = capture_pass(project)
    assert _rules(findings) == ["capture-completeness"]
    assert "SkewedScheme.drift" in findings[0].message


def test_fields_declared_anywhere_in_ancestry_clean():
    project = _project(
        """
        class Scheme:
            RESUME_FIELDS = ("times",)
            VOLATILE_FIELDS = ("runtime",)

        class MyScheme(Scheme):
            RESUME_FIELDS = ("interval",)

            def __init__(self, times, interval):
                self.times = times
                self.interval = interval
                self.runtime = None
        """
    )
    assert capture_pass(project) == []


def test_classes_outside_capture_roots_ignored():
    project = _project(
        """
        class Report:
            def __init__(self):
                self.rows = []
        """
    )
    assert capture_pass(project) == []


def test_capture_allow_pragma():
    project = _project(
        """
        class Scheme:
            RESUME_FIELDS = ("times",)

        class MyScheme(Scheme):
            def __init__(self, times):
                self.times = times
                self.scratch = None  # verify: allow[capture-completeness]
        """
    )
    assert capture_pass(project) == []


# -- 4. trace-conformance: a typo'd event name --------------------------------


def test_typoed_emission_flagged():
    project = _project(
        """
        class Agent:
            def commit(self):
                self.tracer.event("proto.comit", rank=self.rank)
        """
    )
    findings = trace_conformance_pass(project)
    assert _rules(findings) == ["trace-conformance"]
    assert "proto.comit" in findings[0].message


def test_valid_emission_clean():
    project = _project(
        """
        class Agent:
            def commit(self):
                self.tracer.event("proto.commit", rank=self.rank)
        """
    )
    assert trace_conformance_pass(project) == []


def test_typoed_consumer_comparison_flagged():
    project = _project(
        """
        def check(ev):
            if ev.kind == "proto.comit":
                return True
        """
    )
    findings = trace_conformance_pass(project)
    assert _rules(findings) == ["trace-conformance"]
    assert "vacuously" in findings[0].message


def test_typoed_consumes_manifest_flagged():
    project = _project(
        """
        class MyChecker:
            consumes = ("proto.commit", "proto.comit")
        """
    )
    findings = trace_conformance_pass(project)
    assert _rules(findings) == ["trace-conformance"]


def test_message_kind_comparison_not_confused_with_events():
    # msg.kind lives in a different namespace than trace-event kinds
    project = _project(
        """
        def deliver(msg):
            if msg.kind == "app":
                return True
        """
    )
    assert trace_conformance_pass(project) == []


def test_whole_program_vacuous_consumption_flagged():
    # valid vocabulary entry, but nothing in the (whole) program emits it
    project = _project(
        """
        def check(ev):
            if ev.kind == "proto.cut":
                return True
        """,
        whole_program=True,
    )
    findings = trace_conformance_pass(project)
    assert _rules(findings) == ["trace-conformance"]
    assert "no site emits" in findings[0].message


def test_subset_run_skips_vacuous_consumption():
    # the same module analysed as a subset: the emitter may live elsewhere
    project = _project(
        """
        def check(ev):
            if ev.kind == "proto.cut":
                return True
        """,
        whole_program=False,
    )
    assert trace_conformance_pass(project) == []


# -- 5. nondet-taint: set iteration order reaching a trace event --------------


def test_set_order_into_trace_event_flagged():
    project = _project(
        """
        class Gc:
            def run(self, ranks):
                survivors = set(ranks)
                self.tracer.event("gc.run", survivors=list(survivors))
        """
    )
    findings = nondet_taint_pass(project)
    assert _rules(findings) == ["nondet-taint"]
    assert "trace event" in findings[0].message


def test_sorted_cleanses_set_order():
    project = _project(
        """
        class Gc:
            def run(self, ranks):
                survivors = set(ranks)
                self.tracer.event("gc.run", survivors=sorted(survivors))
        """
    )
    assert nondet_taint_pass(project) == []


def test_id_into_rng_seed_flagged():
    project = _project(
        """
        def reseed(rng, obj):
            rng.seed(id(obj))
        """
    )
    findings = nondet_taint_pass(project)
    assert _rules(findings) == ["nondet-taint"]
    assert "RNG seeding" in findings[0].message


def test_environ_into_print_flagged():
    project = _project(
        """
        def report():
            tag = os.environ.get("HOSTNAME")
            print(tag)
        """
    )
    findings = nondet_taint_pass(project)
    assert _rules(findings) == ["nondet-taint"]
    assert "print" in findings[0].message


def test_loop_carried_taint_reaches_sink_above_source():
    # the sink sits above the tainting assignment; the second sequential
    # pass sees the loop-carried environment
    project = _project(
        """
        def emit(self, ranks, order):
            for r in order:
                self.tracer.event("gc.discard", rank=r)
            order = set(ranks)
        """
    )
    findings = nondet_taint_pass(project)
    assert _rules(findings) == ["nondet-taint"]


def test_len_of_set_is_clean():
    project = _project(
        """
        class Gc:
            def run(self, ranks):
                survivors = set(ranks)
                self.tracer.event("gc.run", count=len(survivors))
        """
    )
    assert nondet_taint_pass(project) == []


# -- backend-purity: kernel layer stays deterministic and layered -------------

_CORE = "src/repro/core/fastengine.py"


def test_backend_upward_import_flagged():
    project = _project(
        """
        from repro.chklib.runtime import CheckpointRuntime
        import repro.experiments.runner
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    assert _rules(findings) == ["backend-purity", "backend-purity"]
    assert "reach up" in findings[0].message


def test_backend_relative_upward_import_flagged():
    # ``from ..chklib import runtime`` carries module="chklib" level=2
    project = _project(
        """
        from ..chklib import runtime
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    assert _rules(findings) == ["backend-purity"]


def test_backend_wall_clock_flagged_despite_pragma():
    # the one pass pragma waivers must never reach: nondeterminism
    # cannot be laundered into the kernel with a comment
    project = _project(
        """
        import time

        class FastEngine:
            def run(self):
                self._t0 = time.perf_counter()  # verify: allow[backend-purity]
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    assert _rules(findings) == ["backend-purity"]
    assert "wall-clock" in findings[0].message


def test_backend_from_time_import_flagged():
    project = _project(
        """
        from time import perf_counter

        def stamp():
            return perf_counter()
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    # once for the import, once for the call
    assert _rules(findings) == ["backend-purity", "backend-purity"]


def test_backend_global_rng_flagged():
    project = _project(
        """
        import random

        def jitter():
            return random.random()
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    assert _rules(findings) == ["backend-purity"]
    assert "global RNG" in findings[0].message


def test_backend_numpy_global_rng_flagged_seeded_ctor_clean():
    project = _project(
        """
        import numpy as np

        def bad():
            return np.random.random(8)

        def good(seed):
            return np.random.default_rng(seed)
        """,
        path=_CORE,
    )
    findings = backend_purity_pass(project)
    assert _rules(findings) == ["backend-purity"]
    assert "np.random.random" in findings[0].message


def test_backend_unseeded_default_rng_flagged():
    # default_rng() with no seed is OS entropy — still forbidden
    project = _project(
        """
        import numpy as np

        def bad():
            return np.random.default_rng()
        """,
        path=_CORE,
    )
    assert _rules(backend_purity_pass(project)) == ["backend-purity"]


def test_backend_purity_ignores_non_core_modules():
    # the same sins outside repro/core/ belong to other passes
    project = _project(
        """
        import random
        from repro.chklib.runtime import CheckpointRuntime

        def jitter():
            return random.random()
        """,
        path="src/repro/experiments/harness.py",
    )
    assert backend_purity_pass(project) == []


def test_backend_clean_module_clean():
    project = _project(
        """
        import heapq
        from .engine import Engine

        class FastEngine(Engine):
            def _push(self, ev):
                heapq.heappush(self._heap, ev)
        """,
        path=_CORE,
    )
    assert backend_purity_pass(project) == []


# -- end-to-end: analyze() over a seeded-bug subset ---------------------------


def test_analyze_subset_reports_all_seeded_bug_classes(tmp_path):
    (tmp_path / "buggy.py").write_text(
        textwrap.dedent(
            """
            class Scheme:
                RESUME_FIELDS = ("times",)

            class BadScheme(Scheme):
                def __init__(self, times):
                    self.times = times
                    self.lost = 0.0

                def commit(self):
                    self.tracer.event("proto.comit", n=1)

                def emit(self, ranks):
                    self.tracer.event("gc.run", ranks=list(set(ranks)))

            def worker(ctx, rt, rank):
                g = ctx.compute(100.0)
                try:
                    yield from ctx.timeout(1.0)
                finally:
                    rt.cluster._apply_storage_rate()
            """
        )
    )
    report = analyze(paths=[tmp_path])
    rules = {f.rule for f in report.new}
    assert rules == {
        "undriven-generator",
        "cleanup-mutation",
        "capture-completeness",
        "trace-conformance",
        "nondet-taint",
    }
    assert not report.ok


def test_analyze_repro_tree_is_clean():
    """The enforcement gate: the shipped tree has zero non-baselined findings."""
    report = analyze()
    assert report.new == [], "\n".join(str(f) for f in report.new)
    assert report.stale == []
    assert report.ok
