"""Unit tests for the trace invariant engine on synthetic event streams,
plus clean-run audits of real simulations."""

import pytest

from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan, IndependentScheme
from repro.core.errors import VerificationError
from repro.core.tracing import TraceEvent
from repro.machine import MachineParams
from repro.verify import (
    RunMeta,
    check_runtime,
    check_trace,
    meta_for_runtime,
    runtime_verification_enabled,
    set_runtime_verification,
    verified,
)

COORD = RunMeta(n_ranks=2, scheme="coord_nb", klass="coordinated")
INDEP = RunMeta(n_ranks=2, scheme="indep", klass="independent")


def _ev(time, kind, **fields):
    return TraceEvent(time, kind, fields)


def _names(report):
    return {v.invariant for v in report.violations}


# -- per-checker synthetic streams --------------------------------------------


def test_clean_synthetic_trace_passes():
    events = [
        _ev(0.1, "msg.send", src=0, dst=1, seq=1, epoch=0, gen=0),
        _ev(0.2, "msg.deliver", src=0, dst=1, seq=1, epoch=0, gen=0),
        _ev(0.3, "proto.cut", rank=0, round=1, scheme="coord_nb"),
    ]
    report = check_trace(events, COORD)
    assert report.ok
    assert report.events_checked == 3


def test_monotonic_clock_violation():
    events = [
        _ev(5.0, "proto.cut", rank=0, round=1, scheme="x"),
        _ev(4.0, "proto.cut", rank=1, round=1, scheme="x"),
    ]
    assert "monotonic_clock" in _names(check_trace(events, COORD))


def test_fifo_out_of_order_delivery():
    events = [
        _ev(0.1, "msg.send", src=0, dst=1, seq=1, epoch=0, gen=0),
        _ev(0.2, "msg.send", src=0, dst=1, seq=2, epoch=0, gen=0),
        _ev(0.3, "msg.deliver", src=0, dst=1, seq=2, epoch=0, gen=0),
        _ev(0.4, "msg.deliver", src=0, dst=1, seq=1, epoch=0, gen=0),
    ]
    assert "channel_fifo" in _names(check_trace(events, COORD))


def test_fifo_never_sent_delivery():
    events = [
        _ev(0.1, "msg.deliver", src=0, dst=1, seq=7, epoch=0, gen=0),
    ]
    assert "channel_fifo" in _names(check_trace(events, COORD))


def test_fifo_replay_reuses_old_seq_numbers():
    """Re-injected channel state keeps pre-crash sequence numbers in a new
    generation — that must NOT be a violation."""
    events = [
        _ev(0.1, "msg.send", src=0, dst=1, seq=1, epoch=0, gen=0),
        _ev(0.2, "msg.send", src=0, dst=1, seq=2, epoch=0, gen=0),
        _ev(0.3, "msg.deliver", src=0, dst=1, seq=1, epoch=0, gen=0),
        _ev(0.5, "recover.crash", gen=1, failed=(0, 1)),
        _ev(0.5, "recover.line", gen=1, indices=((0, 1), (1, 1)),
            klass="coordinated", logging=False, consistent=True,
            sent=((0, ((1, 2),)), (1, ())), consumed=((0, ()), (1, ((0, 1),)))),
        _ev(0.5, "recover.replay", gen=1, count=1),
        _ev(0.6, "msg.deliver", src=0, dst=1, seq=2, epoch=0, gen=1),
    ]
    assert check_trace(events, COORD).ok


def test_cut_regression_flagged():
    events = [
        _ev(1.0, "proto.cut", rank=0, round=2, scheme="x"),
        _ev(2.0, "proto.cut", rank=0, round=1, scheme="x"),
    ]
    assert "cut_monotonic" in _names(check_trace(events, COORD))


def test_cut_rewind_after_recovery_is_legal():
    events = [
        _ev(1.0, "proto.cut", rank=0, round=2, scheme="x"),
        _ev(2.0, "recover.line", gen=1, indices=((0, 1), (1, 1)),
            klass="coordinated", logging=False, consistent=True,
            sent=((0, ()), (1, ())), consumed=((0, ()), (1, ()))),
        _ev(2.0, "recover.replay", gen=1, count=0),
        _ev(3.0, "proto.cut", rank=0, round=3, scheme="x"),
    ]
    assert check_trace(events, COORD).ok


def test_commit_on_recovery_without_decision_flagged():
    events = [
        _ev(1.0, "proto.commit_on_recovery", rank=1, round=3),
    ]
    assert "coordinated_two_phase" in _names(check_trace(events, COORD))


def test_unsound_line_flagged_by_runtime_bit():
    events = [
        _ev(1.0, "recover.line", gen=1, indices=((0, 1), (1, 1)),
            klass="independent", logging=False, consistent=False,
            sent=((0, ()), (1, ())), consumed=((0, ()), (1, ()))),
        _ev(1.0, "recover.replay", gen=1, count=0),
    ]
    assert "line_soundness" in _names(check_trace(events, INDEP))


def test_orphan_across_independent_line_flagged():
    # rank 1 consumed 3 messages from rank 0 but the line says only 2 sent
    events = [
        _ev(1.0, "recover.line", gen=1, indices=((0, 2), (1, 2)),
            klass="independent", logging=False, consistent=True,
            sent=((0, ((1, 2),)), (1, ())),
            consumed=((0, ()), (1, ((0, 3),)))),
        _ev(1.0, "recover.replay", gen=1, count=0),
    ]
    assert "line_soundness" in _names(check_trace(events, INDEP))


def test_replay_count_mismatch_flagged():
    # counters imply 2 in transit, but recovery replayed none: lost messages
    events = [
        _ev(1.0, "recover.line", gen=1, indices=((0, 2), (1, 2)),
            klass="independent", logging=True, consistent=True,
            sent=((0, ((1, 5),)), (1, ())),
            consumed=((0, ()), (1, ((0, 3),)))),
        _ev(1.0, "recover.replay", gen=1, count=0),
    ]
    meta = RunMeta(n_ranks=2, scheme="indep_log", klass="independent", logging=True)
    assert "line_soundness" in _names(check_trace(events, meta))


def test_gc_discard_of_protected_checkpoint_flagged():
    events = [
        _ev(1.0, "gc.run", line=((0, 2), (1, 2)),
            protected=((0, (2,)), (1, (2,)))),
        _ev(1.0, "gc.discard", rank=0, index=2),
    ]
    assert "gc_line_safety" in _names(check_trace(events, INDEP))


def test_recovery_using_discarded_checkpoint_flagged():
    events = [
        _ev(1.0, "gc.run", line=((0, 3), (1, 3)),
            protected=((0, (3,)), (1, (3,)))),
        _ev(1.0, "gc.discard", rank=0, index=2),
        _ev(2.0, "recover.line", gen=1, indices=((0, 2), (1, 2)),
            klass="independent", logging=False, consistent=True,
            sent=((0, ()), (1, ())), consumed=((0, ()), (1, ()))),
        _ev(2.0, "recover.replay", gen=1, count=0),
    ]
    assert "gc_line_safety" in _names(check_trace(events, INDEP))


# -- real runs stay clean (including across a crash) --------------------------


MACHINE2 = MachineParams(n_nodes=2)


def _audit(scheme, fault=None):
    from tests.verify.test_mutations import Ring

    rt = CheckpointRuntime(
        Ring(), scheme=scheme, machine=MACHINE2, seed=3, fault_plan=fault
    )
    rt.run()
    return rt, check_runtime(rt)


def test_coordinated_run_with_crash_is_clean():
    rt0, _ = _audit(None)
    horizon = rt0.engine.now
    times = [horizon / 3, horizon * 2 / 3]
    rt, report = _audit(
        CoordinatedScheme.NB(times), fault=FaultPlan.single(horizon / 2)
    )
    assert rt.recoveries, "the crash must actually have happened"
    assert report.ok, report.violations


def test_logged_independent_run_with_crash_is_clean():
    rt0, _ = _audit(None)
    horizon = rt0.engine.now
    times = [horizon / 3, horizon * 2 / 3]
    rt, report = _audit(
        IndependentScheme.Indep(times, logging=True),
        fault=FaultPlan.single(horizon / 2),
    )
    assert rt.recoveries
    assert report.ok, report.violations


def test_meta_for_runtime_derives_scheme_facts():
    rt, _ = _audit(CoordinatedScheme.NBMS([1.0]))
    meta = meta_for_runtime(rt)
    assert meta.klass == "coordinated"
    assert meta.staggered is True
    assert meta.n_ranks == 2


def test_verified_context_toggles_and_restores():
    assert not runtime_verification_enabled()
    with verified():
        assert runtime_verification_enabled()
    assert not runtime_verification_enabled()
    set_runtime_verification(False)


def test_verification_error_lists_violations():
    events = [_ev(1.0, "proto.commit_on_recovery", rank=0, round=9)]
    report = check_trace(events, COORD)
    with pytest.raises(VerificationError) as err:
        report.raise_if_violated()
    assert "coordinated_two_phase" in str(err.value)
    assert err.value.violations
