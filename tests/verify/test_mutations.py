"""Mutation tests: deliberately-broken schemes must be caught by the
trace invariant engine.

Each mutation subclasses a real scheme and re-runs a small application;
the recorded event stream is then audited with ``check_runtime``. The
liveness-style mutations (dropped ack, skipped token hand-off) wedge the
protocol rather than corrupt state, so they are caught by the model
checker instead — see ``test_model_checker.py``.
"""

import operator

import pytest

from repro.apps.base import Application
from repro.chklib import (
    CheckpointRuntime,
    CICScheme,
    CoordinatedScheme,
    FaultModel,
    IndependentScheme,
)
from repro.chklib.schemes.coordinated import CTL_COMMIT
from repro.chklib.schemes.msglog import MessageLoggingScheme
from repro.core.errors import VerificationError
from repro.machine import MachineParams
from repro.net.collectives import reduce
from repro.net.message import KIND_CONTROL
from repro.verify import check_runtime, verified


class Ring(Application):
    """N-rank ring exchanger with per-iteration checkpoint points."""

    name = "ring"
    image_bytes = 8 * 1024

    def __init__(self, iters=40, flops=50_000.0):
        self.iters = iters
        self.flops = flops

    def make_state(self, rank, size, seed):
        return {"iter": 0, "acc": 0}

    def run(self, ctx, state):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        while state["iter"] < self.iters:
            yield from ctx.comm.send(right, state["iter"], tag=1)
            msg = yield from ctx.comm.recv(source=left, tag=1)
            state["acc"] += msg.payload
            yield from ctx.compute(self.flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()
        total = yield from reduce(ctx.comm, state["acc"], operator.add, root=0)
        return total if ctx.rank == 0 else None


MACHINE3 = MachineParams(n_nodes=3)


def _run(scheme=None, machine=MACHINE3):
    rt = CheckpointRuntime(Ring(), scheme=scheme, machine=machine, seed=1)
    rt.run()
    return rt


def _times(machine=MACHINE3):
    base = _run(machine=machine)
    return [base.engine.now / 3, base.engine.now * 2 / 3]


# -- mutation: commit before all votes ----------------------------------------


class CommitEarly(CoordinatedScheme):
    """BUG: the coordinator broadcasts COMMIT at quorum N-1, one vote
    short — a crashed straggler whose write never landed would be
    'committed' on recovery with nothing on stable storage."""

    def _on_ack(self, agent_at_coord, src, n):
        rt = agent_at_coord.runtime
        if n in self._aborted:
            return
        acks = self._acks.setdefault(n, set())
        acks.add(src)
        if len(acks) < rt.n_ranks - 1:  # BUG: should be rt.n_ranks
            return
        self._acks.pop(n, None)
        rt.tracer.event("proto.commit", round=n, acks=tuple(sorted(acks)))
        comm = rt.comms[self.coordinator_rank]
        for dst in range(rt.n_ranks):
            if dst != self.coordinator_rank:
                rt.spawn(
                    comm.send_control(dst, KIND_CONTROL, type=CTL_COMMIT, n=n),
                    name=f"commit:{n}->{dst}",
                )
        self._apply_commit(rt.agents[self.coordinator_rank], n)


def test_commit_before_all_votes_is_flagged():
    rt = _run(scheme=CommitEarly.NB(_times()))
    report = check_runtime(rt)
    assert not report.ok
    assert any(
        v.invariant == "coordinated_two_phase" and "committed with acks" in v.message
        for v in report.violations
    )


def test_commit_before_all_votes_raises_under_verified():
    times = _times()
    with verified():
        with pytest.raises(VerificationError):
            _run(scheme=CommitEarly.NB(times))


# -- mutation: broken staggering (token ignored) ------------------------------


class NoTokenWait(CoordinatedScheme):
    """BUG: background writers start immediately instead of waiting for
    the staggering token — concurrent writes hammer the storage path the
    token ring exists to serialise."""

    def _bg_writer(self, agent, rnd, cow=False):
        if not rnd.token_event.triggered:
            rnd.token_event.succeed()  # BUG: skip the token wait
        yield from super()._bg_writer(agent, rnd, cow)


def test_skipped_token_wait_breaks_write_mutex():
    rt = _run(scheme=NoTokenWait.NBMS(_times()))
    report = check_runtime(rt)
    assert not report.ok
    assert any(
        v.invariant == "staggered_write_mutex" for v in report.violations
    )


def test_shipped_nbms_write_mutex_holds():
    rt = _run(scheme=CoordinatedScheme.NBMS(_times()))
    report = check_runtime(rt)
    assert report.ok, report.violations


# -- mutation: GC eats a live checkpoint --------------------------------------


class GreedyGc(IndependentScheme):
    """BUG: the 'space reclamation' pass discards the recovery-line member
    itself (each rank's newest checkpoint) instead of what lies behind it."""

    def _write_finished(self, agent, record, nbytes):
        super()._write_finished(agent, record, nbytes)
        rt = agent.runtime
        latest = {r: rt.store.latest_index(r) for r in range(rt.n_ranks)}
        rt.tracer.event(
            "gc.run",
            line=tuple(sorted(latest.items())),
            protected=tuple(
                (r, (i,) if i else ()) for r, i in sorted(latest.items())
            ),
        )
        idx = latest[agent.rank]
        if idx:
            rt.tracer.event("gc.discard", rank=agent.rank, index=idx)
            rt.store.discard(agent.rank, idx)  # BUG: that's the line member


def test_gc_of_live_checkpoint_is_flagged():
    scheme = GreedyGc(_times(), memory_ckpt=False, name="indep_greedy", logging=True)
    rt = _run(scheme=scheme)
    report = check_runtime(rt)
    assert not report.ok
    assert any(
        v.invariant == "gc_line_safety" and "protected" in v.message
        for v in report.violations
    )


def test_shipped_gc_is_line_safe():
    scheme = IndependentScheme(
        _times(), memory_ckpt=False, name="indep_gc", logging=True, gc=True
    )
    rt = _run(scheme=scheme)
    report = check_runtime(rt)
    assert report.ok, report.violations


# -- mutation: CIC receiver ignores the index rule ----------------------------


class CicSkipForced(CICScheme):
    """BUG: a higher piggybacked index no longer forces (or promotes) a
    checkpoint — the receiver's interval can depend on an interval the
    sender may roll away, exactly what CIC exists to prevent."""

    def on_app_deliver(self, agent, msg):
        pass  # BUG: index rule ignored


def _cic_setup():
    base = _run()
    T = base.engine.now
    return [T / 3, 2 * T / 3], T / 10


def test_skipped_forced_checkpoint_is_flagged():
    times, skew = _cic_setup()
    rt = _run(scheme=CicSkipForced.BCS(times, skew=skew))
    report = check_runtime(rt)
    assert not report.ok
    assert any(
        v.invariant == "cic_index_rule" for v in report.violations
    )


def test_shipped_cic_index_rule_holds():
    times, skew = _cic_setup()
    for make in (CICScheme.BCS, CICScheme.FDAS):
        rt = _run(scheme=make(times, skew=skew))
        report = check_runtime(rt)
        assert report.ok, report.violations


# -- mutation: msglog recovery rolls back too far ------------------------------


class MlogDeepRollback(MessageLoggingScheme):
    """BUG: recovery ignores the stable logs and restores each rank's
    *oldest* committed checkpoint — a domino-style deep rollback the
    logging scheme's whole point is to make unnecessary."""

    def recovery_line(self, runtime):
        line = super().recovery_line(runtime)
        for rank in line:
            eligible = [
                rec
                for rec in runtime.store.chain(rank)
                if rec.committed and not rec.quarantined
            ]
            if eligible:
                line[rank] = eligible[0]  # BUG: oldest, not newest
        return line


def _mlog_run(cls):
    times, skew = _cic_setup()
    T = times[-1] * 1.5
    rt = CheckpointRuntime(
        Ring(),
        scheme=cls.Mlog(times, skew=skew),
        machine=MACHINE3,
        seed=1,
        fault_model=FaultModel.machine_crash(0.8 * T),
    )
    rt.run()
    return rt


def test_deep_rollback_past_logs_is_flagged():
    rt = _mlog_run(MlogDeepRollback)
    report = check_runtime(rt)
    assert not report.ok
    assert any(
        v.invariant == "msglog_replay_bounds"
        and "newest stable checkpoint" in v.message
        for v in report.violations
    )


def test_shipped_msglog_replay_bounds_hold():
    rt = _mlog_run(MessageLoggingScheme)
    report = check_runtime(rt)
    assert report.ok, report.violations
