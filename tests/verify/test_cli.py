"""CLI entry points of the verification subsystem."""

from repro.verify.__main__ import main


def test_cli_lint_passes_on_the_tree(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "0 issue(s)" in out


def test_cli_model_small(capsys):
    assert main(["model", "--ranks", "2"]) == 0
    out = capsys.readouterr().out
    assert "2pc n=2" in out and "token-ring n=2" in out
    assert "PASS" in out


def test_cli_smoke_battery(capsys):
    assert main(["smoke"]) == 0
    out = capsys.readouterr().out
    # the five measured schemes plus the two coverage extras, all audited
    for name in ("coord_nb", "indep", "coord_nbm", "indep_m", "coord_nbms"):
        assert name in out
