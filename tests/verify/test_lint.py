"""Tests for the sim-hygiene AST lint."""

from repro.verify import lint_paths, lint_source
from repro.verify.lint import default_target


def _rules(source):
    return [i.rule for i in lint_source(source)]


# -- wall clock ---------------------------------------------------------------


def test_time_time_flagged():
    assert _rules("import time\nt = time.time()\n") == ["wall-clock"]


def test_perf_counter_flagged():
    assert _rules("import time\nt = time.perf_counter()\n") == ["wall-clock"]


def test_datetime_now_flagged():
    src = "import datetime\nt = datetime.datetime.now()\n"
    assert _rules(src) == ["wall-clock"]


def test_from_time_import_flagged():
    src = "from time import time\nt = time()\n"
    rules = _rules(src)
    assert rules.count("wall-clock") == 2  # the import and the call


def test_engine_now_is_fine():
    assert _rules("t = engine.now\n") == []


def test_unrelated_dot_time_not_flagged():
    # `span.time()` or `report.time()` must not trip the suffix match
    assert _rules("t = report.elapsed()\n") == []


# -- nondeterminism -----------------------------------------------------------


def test_global_random_call_flagged():
    assert _rules("import random\nx = random.random()\n") == ["nondeterminism"]


def test_from_random_import_flagged():
    assert _rules("from random import choice\n") == ["nondeterminism"]


def test_numpy_global_rng_flagged():
    src = "import numpy as np\nx = np.random.rand(3)\n"
    assert _rules(src) == ["nondeterminism"]


def test_unseeded_default_rng_flagged():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert _rules(src) == ["nondeterminism"]


def test_seeded_default_rng_allowed():
    src = "import numpy as np\nrng = np.random.default_rng(1234)\n"
    assert _rules(src) == []


def test_seeded_default_rng_keyword_allowed():
    src = "import numpy as np\nrng = np.random.default_rng(seed=s)\n"
    assert _rules(src) == []


def test_local_variable_named_random_not_flagged():
    # no `import random`, so `random.x()` is someone's object attribute
    assert _rules("x = random.shuffle(deck)\n") == []


def test_os_urandom_flagged():
    assert _rules("import os\nx = os.urandom(8)\n") == ["nondeterminism"]


def test_uuid_flagged():
    assert _rules("import uuid\nrun_id = uuid.uuid4()\n") == ["nondeterminism"]


def test_unseeded_random_instance_flagged():
    issues = lint_source("import random\nrng = random.Random()\n")
    assert [i.rule for i in issues] == ["nondeterminism"]
    assert "without an explicit seed" in issues[0].message


def test_seeded_random_instance_still_global_rng():
    # seeded, but still the stdlib RNG rather than the run's RngStreams
    assert _rules("import random\nrng = random.Random(42)\n") == ["nondeterminism"]


def test_strftime_of_current_time_flagged():
    assert _rules("import time\ns = time.strftime('%H:%M')\n") == ["wall-clock"]


def test_strftime_with_explicit_tuple_allowed():
    src = "import time\ns = time.strftime('%H:%M', sim_tuple)\n"
    assert _rules(src) == []


# -- bare assert --------------------------------------------------------------


def test_bare_assert_flagged():
    assert _rules("assert x > 0, 'boom'\n") == ["bare-assert"]


def test_isinstance_assert_allowed():
    assert _rules("assert isinstance(agent, CoordinatedAgent)\n") == []


# -- unyielded primitives -----------------------------------------------------


def test_unyielded_compute_flagged():
    src = "def f(ctx):\n    ctx.compute(100.0)\n"
    assert _rules(src) == ["unyielded-primitive"]


def test_yield_from_compute_allowed():
    src = "def f(ctx):\n    yield from ctx.compute(100.0)\n"
    assert _rules(src) == []


def test_assigned_generator_allowed():
    # binding the generator (to spawn or combine) is deliberate use
    src = "def f(ctx):\n    g = ctx.compute(100.0)\n    return g\n"
    assert _rules(src) == []


def test_unyielded_send_flagged():
    src = "def f(comm):\n    comm.send(1, payload)\n"
    assert _rules(src) == ["unyielded-primitive"]


# -- pragmas ------------------------------------------------------------------


def test_allow_pragma_waives_named_rule():
    src = "import time\nt = time.time()  # verify: allow[wall-clock]\n"
    assert _rules(src) == []


def test_allow_pragma_blanket():
    src = "import time\nt = time.time()  # verify: allow\n"
    assert _rules(src) == []


def test_allow_pragma_wrong_rule_does_not_waive():
    src = "import time\nt = time.time()  # verify: allow[bare-assert]\n"
    assert _rules(src) == ["wall-clock"]


# -- the tree itself ----------------------------------------------------------


def test_syntax_error_is_a_finding_not_a_crash():
    issues = lint_source("def broken(:\n")
    assert [i.rule for i in issues] == ["syntax"]


def test_repro_package_is_clean():
    """The enforcement satellite: the shipped simulator passes its own lint."""
    issues = lint_paths()
    assert issues == [], "\n".join(str(i) for i in issues)


def test_default_target_is_the_repro_package():
    target = default_target()
    assert target.name == "repro"
    assert (target / "core").is_dir()
