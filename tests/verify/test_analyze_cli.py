"""CLI behaviour of the `analyze` layer: exit codes, baseline, JSON."""

import json
import textwrap

from repro.verify.__main__ import LAYER_CODES, STALE_BASELINE_CODE, main
from repro.verify.analyze import Baseline, analyze

_BUGGY = textwrap.dedent(
    """
    def worker(ctx):
        g = ctx.compute(100.0)
        yield from ctx.timeout(1.0)
    """
)


def _buggy_file(tmp_path):
    p = tmp_path / "buggy.py"
    p.write_text(_BUGGY)
    return p


def test_analyze_clean_tree_exits_zero(capsys):
    assert main(["analyze"]) == 0
    captured = capsys.readouterr()
    assert "0 new finding(s)" in captured.out
    assert "[verify] analyze: PASS" in captured.err


def test_analyze_json_stdout_is_pure_json(capsys):
    assert main(["analyze", "--format", "json"]) == 0
    captured = capsys.readouterr()
    report = json.loads(captured.out)  # no trailing summary line on stdout
    assert report["counts"]["new"] == 0
    assert report["counts"]["stale_suppressions"] == 0
    assert "[verify] analyze: PASS" in captured.err


def test_analyze_new_findings_exit_code(tmp_path, capsys):
    p = _buggy_file(tmp_path)
    assert main(["analyze", "--paths", str(p)]) == LAYER_CODES["analyze"]
    captured = capsys.readouterr()
    assert "undriven-generator" in captured.out
    assert "[verify] analyze: FAIL" in captured.err


def test_analyze_matching_baseline_passes(tmp_path):
    p = _buggy_file(tmp_path)
    keys = [f.key for f in analyze(paths=[p]).findings]
    assert keys
    bpath = tmp_path / "baseline.json"
    Baseline(suppressions=keys).save(bpath)
    assert main(["analyze", "--paths", str(p), "--baseline", str(bpath)]) == 0


def test_analyze_stale_baseline_distinct_exit_code(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    bpath = tmp_path / "baseline.json"
    Baseline(suppressions=[("undriven-generator", "gone.py", "old")]).save(bpath)
    code = main(["analyze", "--paths", str(clean), "--baseline", str(bpath)])
    assert code == STALE_BASELINE_CODE
    captured = capsys.readouterr()
    assert "stale-baseline" in captured.out
    assert "[verify] analyze: FAIL" in captured.err


def test_analyze_update_baseline_roundtrip(tmp_path, capsys):
    p = _buggy_file(tmp_path)
    bpath = tmp_path / "baseline.json"
    args = ["analyze", "--paths", str(p), "--baseline", str(bpath)]
    assert main(args + ["--update-baseline"]) == 0
    saved = json.loads(bpath.read_text())
    assert len(saved["suppressions"]) == 1
    capsys.readouterr()
    # the refreshed baseline makes the same subset pass
    assert main(args) == 0


def test_layer_codes_are_distinct_and_documented():
    assert LAYER_CODES == {"lint": 2, "model": 3, "smoke": 4, "trace": 4, "analyze": 5}
    assert STALE_BASELINE_CODE == 6
    assert STALE_BASELINE_CODE not in LAYER_CODES.values()
