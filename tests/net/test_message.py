"""Unit tests for Message and payload sizing."""

import numpy as np
import pytest

from repro.net import HEADER_BYTES, Message, payload_nbytes


def test_numpy_payload_sized_by_buffer():
    arr = np.zeros(100, dtype=np.float64)
    assert payload_nbytes(arr) == 800


def test_none_payload_is_free():
    assert payload_nbytes(None) == 0


def test_scalar_payload_floor():
    assert payload_nbytes(3) == 8
    assert payload_nbytes(2.5) == 8
    assert payload_nbytes(True) == 8


def test_bytes_payload():
    assert payload_nbytes(b"abcd") == 4


def test_tuple_of_arrays_sums():
    a = np.zeros(10, dtype=np.int64)
    b = np.zeros(5, dtype=np.float32)
    assert payload_nbytes((a, b, 7)) == 80 + 20 + 8


def test_generic_payload_pickle_sized():
    size = payload_nbytes({"key": [1, 2, 3]})
    assert size > 8


def test_finalize_size_adds_header():
    msg = Message(src=0, dst=1, tag=5, payload=np.zeros(4))
    msg.finalize_size()
    assert msg.size == HEADER_BYTES + 32


def test_finalize_size_keeps_explicit_size():
    msg = Message(src=0, dst=1, tag=0, payload=None, size=999)
    msg.finalize_size()
    assert msg.size == 999


def test_channel_property():
    msg = Message(src=3, dst=7, tag=0, payload=None)
    assert msg.channel == (3, 7)
