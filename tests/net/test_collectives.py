"""Collective operations: correctness on every rank, various sizes."""

import operator

import numpy as np
import pytest

from repro.net import (
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)


def run_spmd(world, n, body):
    """Run `body(comms[r], r, results)` as one process per rank."""
    eng, cluster, transport, comms = world(n=n)
    results = {}

    for r in range(n):
        eng.process(body(comms[r], r, results))
    eng.run()
    return results


@pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8])
def test_bcast_all_ranks_receive(world, n):
    def body(comm, rank, results):
        value = "payload" if rank == 2 % n else None
        got = yield from bcast(comm, value, root=2 % n)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert all(v == "payload" for v in results.values())
    assert len(results) == n


@pytest.mark.parametrize("n", [2, 4, 8])
def test_bcast_numpy_array(world, n):
    arr = np.arange(100, dtype=np.float64)

    def body(comm, rank, results):
        got = yield from bcast(comm, arr if rank == 0 else None, root=0)
        results[rank] = got

    results = run_spmd(world, n, body)
    for v in results.values():
        np.testing.assert_array_equal(v, arr)


@pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
def test_reduce_sum(world, n):
    def body(comm, rank, results):
        got = yield from reduce(comm, rank + 1, operator.add, root=0)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert results[0] == n * (n + 1) // 2
    assert all(results[r] is None for r in range(1, n))


@pytest.mark.parametrize("root", [0, 1, 3])
def test_reduce_nonzero_root(world, root):
    n = 4

    def body(comm, rank, results):
        got = yield from reduce(comm, 2**rank, operator.add, root=root)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert results[root] == 15
    assert all(results[r] is None for r in range(n) if r != root)


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_allreduce_max(world, n):
    def body(comm, rank, results):
        got = yield from allreduce(comm, rank * 10, max)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert all(v == (n - 1) * 10 for v in results.values())


@pytest.mark.parametrize("n", [1, 3, 8])
def test_gather_collects_rank_ordered(world, n):
    def body(comm, rank, results):
        got = yield from gather(comm, f"r{rank}", root=0)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert results[0] == [f"r{i}" for i in range(n)]
    assert all(results[r] is None for r in range(1, n))


@pytest.mark.parametrize("n", [1, 3, 8])
def test_scatter_distributes(world, n):
    def body(comm, rank, results):
        values = [i * i for i in range(n)] if rank == 0 else None
        got = yield from scatter(comm, values, root=0)
        results[rank] = got

    results = run_spmd(world, n, body)
    assert results == {r: r * r for r in range(n)}


def test_scatter_validates_length(world):
    eng, cluster, transport, comms = world(n=2)

    def root():
        yield from scatter(comms[0], [1, 2, 3], root=0)

    def other():
        yield from scatter(comms[1], None, root=0)

    p = eng.process(root())
    eng.process(other())
    with pytest.raises(ValueError, match="scatter"):
        eng.run(until=p)


@pytest.mark.parametrize("n", [2, 3, 8])
def test_alltoall_personalised(world, n):
    def body(comm, rank, results):
        values = [f"{rank}->{dst}" for dst in range(n)]
        got = yield from alltoall(comm, values)
        results[rank] = got

    results = run_spmd(world, n, body)
    for r in range(n):
        assert results[r] == [f"{src}->{r}" for src in range(n)]


def test_alltoall_validates_length(world):
    eng, cluster, transport, comms = world(n=2)

    def bad():
        yield from alltoall(comms[0], [1, 2, 3])

    p = eng.process(bad())
    with pytest.raises(ValueError):
        eng.run(until=p)


@pytest.mark.parametrize("n", [1, 2, 5, 8])
def test_barrier_synchronises(world, n):
    eng, cluster, transport, comms = world(n=n)
    exit_times = {}

    def body(rank):
        yield eng.timeout(rank * 1.0)  # stagger arrivals
        yield from barrier(comms[rank])
        exit_times[rank] = eng.now

    for r in range(n):
        eng.process(body(r))
    eng.run()
    # nobody leaves before the last arrival
    assert all(t >= (n - 1) * 1.0 for t in exit_times.values())


def test_back_to_back_collectives_do_not_cross_talk(world):
    n = 4

    def body(comm, rank, results):
        a = yield from bcast(comm, "A" if rank == 0 else None, root=0)
        b = yield from bcast(comm, "B" if rank == 1 else None, root=1)
        s = yield from allreduce(comm, rank, operator.add)
        results[rank] = (a, b, s)

    results = run_spmd(world, n, body)
    assert all(v == ("A", "B", 6) for v in results.values())


def test_coll_counter_advances_identically(world):
    n = 4
    eng, cluster, transport, comms = world(n=n)

    def body(rank):
        yield from barrier(comms[rank])
        yield from bcast(comms[rank], rank, root=0)

    for r in range(n):
        eng.process(body(r))
    eng.run()
    assert len({c.coll_counter for c in comms}) == 1
    assert comms[0].coll_counter == 2
