"""Unit tests for Mailbox matching, draining and waiter management."""

import pytest

from repro.core import Engine
from repro.net import ANY_SOURCE, ANY_TAG, Message
from repro.net.mailbox import Mailbox


def msg(src=0, dst=1, tag=0, payload=None, seq=1):
    m = Message(src=src, dst=dst, tag=tag, payload=payload, seq=seq)
    m.finalize_size()
    return m


@pytest.fixture
def box():
    return Mailbox(Engine(), rank=1)


def test_deliver_then_recv(box):
    box.deliver(msg(payload="x"))
    req = box.recv()
    assert req.triggered and req._value.payload == "x"


def test_recv_then_deliver(box):
    req = box.recv(source=0, tag=5)
    assert not req.triggered
    box.deliver(msg(tag=5, payload="y"))
    assert req.triggered


def test_waiting_recv_skips_non_matching(box):
    req = box.recv(source=2)
    box.deliver(msg(src=0))
    assert not req.triggered
    assert len(box) == 1
    box.deliver(msg(src=2))
    assert req.triggered


def test_oldest_matching_wins(box):
    box.deliver(msg(seq=1, payload="first"))
    box.deliver(msg(seq=2, payload="second"))
    req = box.recv(source=0)
    assert req._value.payload == "first"


def test_wildcards(box):
    box.deliver(msg(src=3, tag=9))
    assert box.recv(source=ANY_SOURCE, tag=ANY_TAG).triggered


def test_probe_matches_without_consuming(box):
    box.deliver(msg(tag=4, payload="z"))
    assert box.probe(tag=4).payload == "z"
    assert box.probe(tag=5) is None
    assert len(box) == 1


def test_drain_empties_and_returns(box):
    box.deliver(msg(seq=1))
    box.deliver(msg(seq=2))
    drained = box.drain()
    assert [m.seq for m in drained] == [1, 2]
    assert len(box) == 0


def test_cancel_waiters_returns_specs(box):
    box.recv(source=3, tag=7)
    box.recv()
    specs = box.cancel_waiters()
    assert specs == [(3, 7), (ANY_SOURCE, ANY_TAG)]
    # a later delivery goes to the buffer, not the cancelled waiters
    box.deliver(msg(src=3, tag=7))
    assert len(box) == 1


def test_on_consume_hook_fires(box):
    seen = []
    box.on_consume = seen.append
    box.deliver(msg(payload="a"))
    box.recv()
    assert len(seen) == 1 and seen[0].payload == "a"


def test_multiple_waiters_fifo(box):
    r1 = box.recv(source=0)
    r2 = box.recv(source=0)
    box.deliver(msg(seq=1))
    box.deliver(msg(seq=2))
    assert r1._value.seq == 1
    assert r2._value.seq == 2
