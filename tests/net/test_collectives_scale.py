"""Collectives beyond the paper's 8 ranks: odd sizes and p > 64.

The tag discipline reserves a per-collective slot of ``_stride(comm)``
wire tags. The stride used to be a flat 64 — alltoall's per-step sub-tag
reaches p-1, so any communicator larger than 64 ranks overflowed the
slot. The stride now grows to the next power of two >= p; these tests
pin the derivation, the p=128 regression, round counts at awkward sizes
and cross-rank ``coll_counter`` agreement.
"""

import math
import operator

import pytest

from repro.net import allreduce, alltoall, barrier, bcast, reduce
from repro.net.collectives import COLL_TAG_BASE, _SLOT_STRIDE, _stride


def run_spmd(world, n, body):
    eng, cluster, transport, comms = world(n=n)
    results = {}
    for r in range(n):
        eng.process(body(comms[r], r, results))
    eng.run()
    return comms, results


class _FakeComm:
    def __init__(self, size):
        self.size = size


@pytest.mark.parametrize(
    "p,expect",
    [(1, 64), (8, 64), (64, 64), (65, 128), (96, 128), (128, 128), (129, 256)],
)
def test_stride_is_next_power_of_two_floored_at_64(p, expect):
    assert _stride(_FakeComm(p)) == expect


def test_stride_small_communicators_keep_legacy_value():
    # every p <= 64 derives the exact tags it always did (byte identity
    # of the 8-rank tables depends on this).
    for p in range(1, 65):
        assert _stride(_FakeComm(p)) == _SLOT_STRIDE


@pytest.mark.parametrize("n", [3, 5, 7, 96, 128])
def test_reduce_and_bcast_at_odd_and_large_sizes(world, n):
    def body(comm, rank, results):
        total = yield from reduce(comm, rank + 1, operator.add, root=0)
        got = yield from bcast(comm, total, root=0)
        results[rank] = got

    _, results = run_spmd(world, n, body)
    assert all(v == n * (n + 1) // 2 for v in results.values())
    assert len(results) == n


@pytest.mark.parametrize("n", [3, 5, 7, 96, 128])
def test_barrier_round_counts(world, n):
    """Dissemination barrier: exactly ceil(log2 p) sends per rank."""
    sends = {r: 0 for r in range(n)}

    def body(comm, rank, results):
        original = comm.send

        def counting_send(*args, **kw):
            sends[rank] += 1
            return original(*args, **kw)

        comm.send = counting_send
        yield from barrier(comm)
        results[rank] = True

    _, results = run_spmd(world, n, body)
    assert len(results) == n
    expected = math.ceil(math.log2(n))
    assert all(count == expected for count in sends.values())


@pytest.mark.parametrize("n", [96, 128])
def test_alltoall_beyond_64_ranks(world, n):
    """Regression: alltoall's step sub-tag reaches p-1 and used to
    overflow the flat 64-tag slot for p > 64."""

    def body(comm, rank, results):
        values = [rank * 1000 + dst for dst in range(n)]
        out = yield from alltoall(comm, values)
        results[rank] = out

    _, results = run_spmd(world, n, body)
    for rank in range(n):
        assert results[rank] == [src * 1000 + rank for src in range(n)]


@pytest.mark.parametrize("n", [3, 5, 7, 96, 128])
def test_coll_counter_agrees_across_ranks(world, n):
    """Mixed collectives advance every rank's slot counter identically
    (the counter is checkpointed state; divergence would desynchronise
    tag derivation after a restart)."""

    def body(comm, rank, results):
        yield from barrier(comm)
        yield from reduce(comm, rank, operator.add, root=0)
        got = yield from allreduce(comm, rank, max)
        results[rank] = got

    comms, results = run_spmd(world, n, body)
    assert all(v == n - 1 for v in results.values())
    counters = {c.coll_counter for c in comms}
    assert len(counters) == 1
    # barrier + reduce + allreduce(reduce + bcast) = 4 slots
    assert counters.pop() == 4


@pytest.mark.parametrize("n", [96, 128])
def test_large_slot_tags_stay_disjoint(world, n):
    """Consecutive collective slots occupy disjoint tag ranges even when
    the stride has grown beyond 64."""
    stride = _stride(_FakeComm(n))
    seen = {}

    def body(comm, rank, results):
        original = comm.send

        def tagged_send(dst, payload, tag=0, **kw):
            slot, offset = divmod(tag - COLL_TAG_BASE, stride)
            seen.setdefault(slot, set()).add(offset)
            return original(dst, payload, tag=tag, **kw)

        comm.send = tagged_send
        yield from barrier(comm)
        out = yield from alltoall(comm, list(range(n)))
        results[rank] = out

    run_spmd(world, n, body)
    # two slots consumed: the barrier's offsets stay in the log2 rounds,
    # the alltoall's sub-tags span 1..p-1 — all inside one stride.
    assert set(seen) == {0, 1}
    assert max(seen[0]) < stride
    assert seen[1] and max(seen[1]) <= n - 1 < stride
