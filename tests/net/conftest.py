"""Shared fixtures for network-layer tests."""

import pytest

from repro.core import Engine
from repro.machine import Cluster, MachineParams
from repro.net import Comm, Transport


@pytest.fixture
def world():
    """A small deterministic world: engine, 4-node cluster, transport."""

    def build(n=4, **machine_kw):
        eng = Engine()
        params = MachineParams(n_nodes=n, **machine_kw)
        cluster = Cluster(eng, params)
        transport = Transport(cluster)
        comms = [Comm(transport, r, n) for r in range(n)]
        return eng, cluster, transport, comms

    return build
