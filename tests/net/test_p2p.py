"""Point-to-point semantics: eager sends, FIFO channels, matching, timing."""

import numpy as np
import pytest

from repro.core import SimulationError
from repro.net import ANY_SOURCE, ANY_TAG, Comm, Transport


def test_send_recv_roundtrip(world):
    eng, cluster, transport, comms = world()
    got = []

    def sender():
        yield from comms[0].send(1, {"x": 42}, tag=7)

    def receiver():
        msg = yield from comms[1].recv(source=0, tag=7)
        got.append(msg.payload)

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert got == [{"x": 42}]


def test_send_blocks_for_wire_time(world):
    eng, cluster, transport, comms = world()
    done = []

    def sender():
        yield from comms[0].send(1, np.zeros(1000, dtype=np.float64))
        done.append(eng.now)

    def receiver():
        yield from comms[1].recv()

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    link = cluster.params.link
    expected = link.latency + (8000 + 32) / link.bandwidth
    assert done == [pytest.approx(expected)]


def test_send_is_eager_does_not_wait_for_receiver(world):
    eng, cluster, transport, comms = world()
    send_done = []

    def sender():
        yield from comms[0].send(1, None)
        send_done.append(eng.now)

    def late_receiver():
        yield eng.timeout(100.0)
        yield from comms[1].recv()

    eng.process(sender())
    eng.process(late_receiver())
    eng.run()
    assert send_done[0] < 1.0  # returned long before the receive


def test_fifo_per_channel(world):
    eng, cluster, transport, comms = world()
    got = []

    def sender():
        for i in range(5):
            yield from comms[0].send(1, i)

    def receiver():
        for _ in range(5):
            msg = yield from comms[1].recv(source=0)
            got.append(msg.payload)

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert got == [0, 1, 2, 3, 4]


def test_sequence_numbers_per_channel(world):
    eng, cluster, transport, comms = world()
    seqs = []

    def sender():
        yield from comms[0].send(1, "a")
        yield from comms[0].send(2, "b")
        yield from comms[0].send(1, "c")

    def receiver(rank, n):
        for _ in range(n):
            msg = yield from comms[rank].recv()
            seqs.append((rank, msg.seq))

    eng.process(sender())
    eng.process(receiver(1, 2))
    eng.process(receiver(2, 1))
    eng.run()
    assert sorted(seqs) == [(1, 1), (1, 2), (2, 1)]


def test_any_source_matching(world):
    eng, cluster, transport, comms = world()
    got = []

    def sender(rank, delay):
        yield eng.timeout(delay)
        yield from comms[rank].send(0, rank)

    def master():
        for _ in range(3):
            msg = yield from comms[0].recv(source=ANY_SOURCE)
            got.append(msg.payload)

    eng.process(master())
    for r, d in [(1, 0.3), (2, 0.1), (3, 0.2)]:
        eng.process(sender(r, d))
    eng.run()
    assert got == [2, 3, 1]  # arrival order


def test_tag_matching_same_source_in_order(world):
    eng, cluster, transport, comms = world()
    got = []

    def sender():
        yield from comms[0].send(1, "first", tag=1)
        yield from comms[0].send(1, "second", tag=2)

    def receiver():
        m1 = yield from comms[1].recv(source=0, tag=1)
        m2 = yield from comms[1].recv(source=0, tag=2)
        got.extend([m1.payload, m2.payload])

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert got == ["first", "second"]


def test_out_of_order_consumption_rejected(world):
    """Tag-selective receives must not jump the per-channel queue."""
    eng, cluster, transport, comms = world()

    def sender():
        yield from comms[0].send(1, "old", tag=1)
        yield from comms[0].send(1, "new", tag=2)

    def bad_receiver():
        yield from comms[1].recv(source=0, tag=2)

    eng.process(sender())
    eng.process(bad_receiver())
    # the violation surfaces when the jumping message is consumed
    with pytest.raises(SimulationError, match="out of order"):
        eng.run()


def test_isend_overlaps_computation(world):
    eng, cluster, transport, comms = world()
    times = {}

    def sender():
        req = comms[0].isend(1, np.zeros(100_000))
        times["after_isend"] = eng.now
        yield req
        times["after_wait"] = eng.now

    def receiver():
        yield from comms[1].recv()

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert times["after_isend"] == 0.0
    assert times["after_wait"] > 0.0


def test_isend_order_fixed_at_call(world):
    eng, cluster, transport, comms = world()
    got = []

    def sender():
        comms[0].isend(1, "one")
        comms[0].isend(1, "two")
        yield from comms[0].send(1, "three")

    def receiver():
        for _ in range(3):
            msg = yield from comms[1].recv(source=0)
            got.append(msg.payload)

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert got == ["one", "two", "three"]


def test_same_sender_messages_serialise_on_link(world):
    eng, cluster, transport, comms = world()
    arrivals = []

    def sender():
        comms[0].isend(1, np.zeros(10_000))
        comms[0].isend(2, np.zeros(10_000))
        yield eng.timeout(0)

    def receiver(rank):
        msg = yield from comms[rank].recv()
        arrivals.append((rank, eng.now))

    eng.process(sender())
    eng.process(receiver(1))
    eng.process(receiver(2))
    eng.run()
    t1 = dict(arrivals)[1]
    t2 = dict(arrivals)[2]
    assert t2 >= 2 * t1 * 0.9  # second transfer waited for the first


def test_probe_non_destructive(world):
    eng, cluster, transport, comms = world()
    observed = []

    def sender():
        yield from comms[0].send(1, "peek-me", tag=3)

    def receiver():
        yield eng.timeout(1.0)
        assert comms[1].probe(source=0, tag=99) is None
        peeked = comms[1].probe(source=0, tag=3)
        observed.append(peeked.payload)
        msg = yield from comms[1].recv(source=0, tag=3)
        observed.append(msg.payload)

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert observed == ["peek-me", "peek-me"]


def test_self_send_rejected(world):
    eng, cluster, transport, comms = world()
    gen = comms[0].send(0, "loop")
    with pytest.raises(ValueError):
        next(gen)


def test_destination_range_validated(world):
    eng, cluster, transport, comms = world()
    gen = comms[0].send(99, "nowhere")
    with pytest.raises(ValueError):
        next(gen)


def test_negative_tag_rejected(world):
    eng, cluster, transport, comms = world()
    gen = comms[0].send(1, "x", tag=-1)
    with pytest.raises(ValueError):
        next(gen)


def test_duplicate_rank_registration_rejected(world):
    eng, cluster, transport, comms = world()
    with pytest.raises(ValueError):
        Comm(transport, 0, 4)


def test_transport_metrics(world):
    eng, cluster, transport, comms = world()

    def sender():
        yield from comms[0].send(1, np.zeros(10))

    def receiver():
        yield from comms[1].recv()

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    assert transport.messages_sent == 1
    assert transport.bytes_sent == 80 + 32


def test_channel_meta_roundtrip(world):
    eng, cluster, transport, comms = world()

    def sender():
        yield from comms[0].send(1, "a")
        yield from comms[0].send(1, "b")

    def receiver():
        yield from comms[1].recv()
        yield from comms[1].recv()

    eng.process(sender())
    eng.process(receiver())
    eng.run()
    meta0 = comms[0].channel_meta()
    meta1 = comms[1].channel_meta()
    assert meta0["sent"] == {1: 2}
    assert meta1["consumed"] == {0: 2}

    # restoring rewinds the send sequence: the next send reuses seq 2
    comms[0].restore_meta({"sent": {1: 1}, "consumed": {}, "coll_counter": 0})
    comms[1].restore_meta({"sent": {}, "consumed": {0: 1}, "coll_counter": 0})
    got = []

    def resender():
        yield from comms[0].send(1, "b-again")

    def rereceiver():
        msg = yield from comms[1].recv(source=0)
        got.append(msg.seq)

    eng.process(resender())
    eng.process(rereceiver())
    eng.run()
    assert got == [2]
