"""End-to-end integration: SOR under every scheme, with and without crashes.

These are the load-bearing tests of the reproduction: the checkpointed and
the recovered runs must produce the exact result of the undisturbed run.
"""

import numpy as np
import pytest

from repro.apps import SOR
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from repro.machine import MachineParams


# flops_per_cell is cranked up so the run lasts ~10 simulated seconds —
# long relative to a checkpoint write, as in the paper's workloads.
APP = dict(n=34, iters=12, flops_per_cell=2400.0)
MACHINE = MachineParams(n_nodes=4)


def make_app():
    app = SOR(**APP)
    # small process image so checkpoint writes are short relative to the
    # run and rounds complete well before the application ends.
    app.image_bytes = 64 * 1024
    return app


def run(scheme=None, fault=None, app=None, **kw):
    rt = CheckpointRuntime(
        app or make_app(),
        scheme=scheme,
        machine=MACHINE,
        seed=7,
        fault_plan=fault,
        **kw,
    )
    return rt.run()


@pytest.fixture(scope="module")
def normal_report():
    return run()


def test_normal_run_matches_serial(normal_report):
    serial = SOR(**APP).serial_result(4, 7)
    assert normal_report.result["sum"] == pytest.approx(serial["sum"], rel=1e-9)


def test_normal_run_has_no_checkpoints(normal_report):
    assert normal_report.checkpoints_taken == 0
    assert normal_report.storage_bytes_written == 0
    assert normal_report.scheme == "normal"
    assert normal_report.sim_time > 0


def ckpt_times(report, k=2):
    """k checkpoint times inside the first ~60% of the normal run, spaced so
    every round (including its background writes) completes before the end."""
    step = report.sim_time / (k + 2)
    return [step * (i + 1) for i in range(k)]


@pytest.mark.parametrize(
    "factory",
    [
        CoordinatedScheme.NB,
        CoordinatedScheme.NBM,
        CoordinatedScheme.NBMS,
        CoordinatedScheme.NBS,
    ],
    ids=["nb", "nbm", "nbms", "nbs"],
)
def test_coordinated_failure_free_result_unchanged(normal_report, factory):
    scheme = factory(ckpt_times(normal_report))
    report = run(scheme=scheme)
    assert report.result["sum"] == normal_report.result["sum"]  # exact
    assert report.checkpoints_taken == 2 * 4  # 2 rounds x 4 ranks
    assert report.checkpoints_committed == 2 * 4
    assert report.sim_time >= normal_report.sim_time


@pytest.mark.parametrize("memory", [False, True], ids=["indep", "indep_m"])
def test_independent_failure_free_result_unchanged(normal_report, memory):
    factory = IndependentScheme.IndepM if memory else IndependentScheme.Indep
    scheme = factory(ckpt_times(normal_report), skew=0.05)
    report = run(scheme=scheme)
    assert report.result["sum"] == normal_report.result["sum"]
    assert report.checkpoints_taken == 2 * 4
    assert report.sim_time >= normal_report.sim_time


def test_coordinated_storage_bounded(normal_report):
    scheme = CoordinatedScheme.NB(ckpt_times(normal_report, k=3))
    report = run(scheme=scheme)
    # commit of n discards n-1: never more than 2 checkpoints per rank
    assert report.storage_peak_checkpoints <= 2 * 4


def test_independent_storage_accumulates(normal_report):
    scheme = IndependentScheme.Indep(ckpt_times(normal_report, k=3))
    report = run(scheme=scheme)
    assert report.storage_peak_checkpoints == 3 * 4  # nothing discarded


def test_coordinated_protocol_messages_flow(normal_report):
    scheme = CoordinatedScheme.NB(ckpt_times(normal_report, k=1))
    report = run(scheme=scheme)
    # 1 round on 4 ranks: 3 requests + 4*3 markers + 3 acks + 3 commits
    assert report.control_messages == 3 + 12 + 3 + 3


def test_independent_has_no_protocol_messages(normal_report):
    scheme = IndependentScheme.Indep(ckpt_times(normal_report, k=2))
    report = run(scheme=scheme)
    assert report.control_messages == 0


@pytest.mark.parametrize(
    "factory",
    [CoordinatedScheme.NB, CoordinatedScheme.NBM, CoordinatedScheme.NBMS],
    ids=["nb", "nbm", "nbms"],
)
def test_coordinated_crash_recovery_exact(normal_report, factory):
    times = ckpt_times(normal_report, k=2)
    crash_at = times[1] + 0.35 * (normal_report.sim_time / 3)
    scheme = factory(times)
    report = run(scheme=scheme, fault=FaultPlan.single(crash_at))
    assert len(report.recoveries) == 1
    rec = report.recoveries[0]
    assert set(rec.line_indices.values()) == {2} or set(
        rec.line_indices.values()
    ) == {1}
    assert report.result["sum"] == normal_report.result["sum"]  # exact replay
    assert report.sim_time > normal_report.sim_time


def test_coordinated_crash_before_any_checkpoint(normal_report):
    scheme = CoordinatedScheme.NB([normal_report.sim_time * 10])  # never fires
    report = run(scheme=scheme, fault=FaultPlan.single(normal_report.sim_time / 2))
    rec = report.recoveries[0]
    assert all(i == 0 for i in rec.line_indices.values())  # restart from scratch
    assert rec.domino_extent == 1.0
    assert report.result["sum"] == normal_report.result["sum"]


def test_independent_with_logging_crash_recovery_exact(normal_report):
    times = ckpt_times(normal_report, k=2)
    crash_at = times[1] + 0.3 * (normal_report.sim_time / 3)
    scheme = IndependentScheme.Indep(times, skew=0.1, logging=True)
    report = run(scheme=scheme, fault=FaultPlan.single(crash_at))
    assert len(report.recoveries) == 1
    assert report.result["sum"] == normal_report.result["sum"]


def test_independent_without_logging_dominoes_but_recovers(normal_report):
    times = ckpt_times(normal_report, k=2)
    crash_at = normal_report.sim_time * 0.9
    # skew wider than an iteration so the cuts land on different iteration
    # boundaries (aligned cuts of a halo app are naturally transitless)
    scheme = IndependentScheme.Indep(
        times, skew=normal_report.sim_time / 6, logging=False
    )
    report = run(scheme=scheme, fault=FaultPlan.single(crash_at))
    rec = report.recoveries[0]
    # a tightly-coupled app has no transitless line except the start
    assert rec.domino_extent == 1.0
    assert report.result["sum"] == normal_report.result["sum"]


def test_two_crashes_still_exact(normal_report):
    times = ckpt_times(normal_report, k=2)
    t = normal_report.sim_time
    scheme = CoordinatedScheme.NBM(times)
    report = run(
        scheme=scheme,
        fault=FaultPlan(crash_times=(times[0] + t / 6, times[1] + t / 5)),
    )
    assert len(report.recoveries) == 2
    assert report.result["sum"] == normal_report.result["sum"]


def test_blocked_time_positive_for_blocking_scheme(normal_report):
    scheme = CoordinatedScheme.NB(ckpt_times(normal_report))
    report = run(scheme=scheme)
    assert report.blocked_time > 0


def test_runtime_runs_only_once(normal_report):
    rt = CheckpointRuntime(SOR(**APP), machine=MACHINE, seed=7)
    rt.run()
    with pytest.raises(RuntimeError):
        rt.run()
