"""Crash + rollback + replay must reproduce the undisturbed result for
every application and both scheme classes."""

import pytest

from repro.apps import ASP, SOR, Gauss, Ising, NBody, NQueens, TSP
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from repro.machine import MachineParams

SEED = 5
MACHINE = MachineParams(n_nodes=4)

APP_FACTORIES = {
    "sor": lambda: SOR(n=26, iters=10, flops_per_cell=3000.0),
    "ising": lambda: Ising(n=24, iters=8, flops_per_cell=5000.0),
    "asp": lambda: ASP(n=36, flops_per_cell=900.0),
    "nbody": lambda: NBody(n=48, iters=6, flops_per_pair=4000.0),
    "gauss": lambda: Gauss(n=40, flops_per_cell=900.0),
    "tsp": lambda: TSP(n_cities=9, flops_per_node=3000.0),
    "nqueens": lambda: NQueens(n=8, flops_per_node=2000.0),
}


def make_app(name):
    app = APP_FACTORIES[name]()
    app.image_bytes = 32 * 1024
    return app


def run(name, scheme=None, fault=None):
    rt = CheckpointRuntime(
        make_app(name), scheme=scheme, machine=MACHINE, seed=SEED, fault_plan=fault
    )
    return rt.run()


@pytest.fixture(scope="module")
def baselines():
    return {name: run(name) for name in APP_FACTORIES}


def result_key(report):
    r = report.result
    for key in ("sum", "magnetisation", "distsum", "pos_sum", "x_sum",
                "optimum", "solutions"):
        if key in r:
            return r[key]
    raise AssertionError(f"no result key in {r}")


@pytest.mark.parametrize("name", sorted(APP_FACTORIES))
def test_coordinated_crash_recovery_exact(baselines, name):
    base = baselines[name]
    t = base.sim_time
    scheme = CoordinatedScheme.NBM([t / 4, t / 2])
    report = run(name, scheme=scheme, fault=FaultPlan.single(0.8 * t))
    assert len(report.recoveries) == 1
    assert result_key(report) == result_key(base)
    assert report.sim_time > base.sim_time


@pytest.mark.parametrize("name", sorted(APP_FACTORIES))
def test_independent_logging_crash_recovery_exact(baselines, name):
    base = baselines[name]
    t = base.sim_time
    scheme = IndependentScheme.IndepM([t / 4, t / 2], skew=t / 50, logging=True)
    report = run(name, scheme=scheme, fault=FaultPlan.single(0.8 * t))
    assert len(report.recoveries) == 1
    assert result_key(report) == result_key(base)


@pytest.mark.parametrize("name", ["tsp", "nqueens"])
def test_independent_no_logging_loosely_coupled_no_domino(baselines, name):
    """Workers that never talk mid-run have transitless lines everywhere:
    independent checkpointing recovers them without logging or domino."""
    base = baselines[name]
    t = base.sim_time
    scheme = IndependentScheme.Indep([t / 4, t / 2], skew=t / 50, logging=False)
    report = run(name, scheme=scheme, fault=FaultPlan.single(0.8 * t))
    rec = report.recoveries[0]
    assert rec.domino_extent < 1.0
    assert result_key(report) == result_key(base)


@pytest.mark.parametrize("name", ["sor", "ising", "asp"])
def test_independent_no_logging_tightly_coupled_dominoes(baselines, name):
    """With timer skew larger than an iteration, ranks cut at different
    iteration boundaries; without logging no transitless line exists above
    the initial state and the rollback cascades (domino effect)."""
    base = baselines[name]
    t = base.sim_time
    scheme = IndependentScheme.Indep([t / 4, t / 2], skew=t / 6, logging=False)
    report = run(name, scheme=scheme, fault=FaultPlan.single(0.85 * t))
    rec = report.recoveries[0]
    assert rec.domino_extent == 1.0  # rolled all the way back
    assert result_key(report) == result_key(base)  # ... but still correct


@pytest.mark.parametrize("name", ["sor", "ising"])
def test_independent_aligned_timers_find_boundary_line(baselines, name):
    """Counter-case: with negligible skew all ranks cut at the same
    iteration boundary, where halo-exchange apps are naturally transitless
    — independent checkpointing recovers without domino. The domino risk
    is a function of cut misalignment, not of the app alone."""
    base = baselines[name]
    t = base.sim_time
    scheme = IndependentScheme.Indep([t / 4, t / 2], skew=t / 1000, logging=False)
    report = run(name, scheme=scheme, fault=FaultPlan.single(0.85 * t))
    rec = report.recoveries[0]
    assert rec.domino_extent == 0.0
    assert result_key(report) == result_key(base)
