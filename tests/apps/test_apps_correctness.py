"""Every application: parallel == serial reference, on several rank counts."""

import numpy as np
import pytest

from repro.apps import ASP, SOR, Gauss, Ising, NBody, NQueens, TSP
from repro.chklib import CheckpointRuntime
from repro.machine import MachineParams

SEED = 11


def run_app(app, n_ranks, seed=SEED):
    rt = CheckpointRuntime(
        app, machine=MachineParams(n_nodes=n_ranks), seed=seed
    )
    return rt.run()


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_sor_matches_serial(n_ranks):
    app = SOR(n=26, iters=8)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    assert report.result["sum"] == pytest.approx(serial["sum"], rel=1e-12)


@pytest.mark.parametrize("n_ranks", [1, 2, 4, 8])
def test_ising_matches_serial_exactly(n_ranks):
    app = Ising(n=24, iters=6)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    assert report.result["magnetisation"] == serial["magnetisation"]


def test_ising_different_seeds_differ():
    app = Ising(n=24, iters=6)
    r1 = run_app(app, 4, seed=1).result["magnetisation"]
    r2 = run_app(Ising(n=24, iters=6), 4, seed=2).result["magnetisation"]
    assert r1 != r2  # astronomically unlikely to collide


@pytest.mark.parametrize("n_ranks", [1, 3, 8])
def test_asp_matches_serial_exactly(n_ranks):
    app = ASP(n=40)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    assert report.result["distsum"] == serial["distsum"]


def test_asp_distances_no_overflow():
    app = ASP(n=30, density=0.05)  # sparse: many unreachable pairs
    report = run_app(app, 4)
    assert report.result["distsum"] > 0


@pytest.mark.parametrize("n_ranks", [1, 2, 8])
def test_nbody_matches_serial_exactly(n_ranks):
    app = NBody(n=48, iters=4)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    # same block accumulation order -> bit-identical floats
    assert report.result["pos_sum"] == serial["pos_sum"]
    assert report.result["vel_sum"] == serial["vel_sum"]


@pytest.mark.parametrize("n_ranks", [1, 2, 8])
def test_gauss_matches_serial(n_ranks):
    app = Gauss(n=48)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    np.testing.assert_allclose(report.result["x"], serial["x"], rtol=1e-12)


def test_gauss_solves_the_system():
    app = Gauss(n=48)
    report = run_app(app, 8)
    np.testing.assert_allclose(
        report.result["x"], app.reference_solution(SEED), rtol=1e-8
    )


@pytest.mark.parametrize("n_ranks", [1, 3, 8])
def test_tsp_matches_serial_exactly(n_ranks):
    app = TSP(n_cities=9)
    report = run_app(app, n_ranks)
    serial = app.serial_result(n_ranks, SEED)
    assert report.result["optimum"] == serial["optimum"]


def test_tsp_optimum_matches_brute_force():
    from itertools import permutations

    from repro.apps.tsp import _make_map

    app = TSP(n_cities=7)
    report = run_app(app, 4)
    dist = _make_map(7, SEED)
    best = min(
        sum(dist[a, b] for a, b in zip((0,) + p, p + (0,)))
        for p in permutations(range(1, 7))
    )
    assert report.result["optimum"] == best


@pytest.mark.parametrize("n_ranks", [1, 2, 8])
def test_nqueens_matches_serial(n_ranks):
    app = NQueens(n=8)
    report = run_app(app, n_ranks)
    assert report.result["solutions"] == app.serial_result(n_ranks, SEED)["solutions"]


@pytest.mark.parametrize("n,expected", [(6, 4), (7, 40), (8, 92), (9, 352)])
def test_nqueens_known_counts(n, expected):
    app = NQueens(n=n)
    report = run_app(app, 4)
    assert report.result["solutions"] == expected


@pytest.mark.parametrize(
    "app_factory",
    [
        lambda: SOR(n=26, iters=8),
        lambda: Ising(n=24, iters=6),
        lambda: ASP(n=40),
        lambda: NBody(n=48, iters=4),
        lambda: Gauss(n=48),
        lambda: TSP(n_cities=9),
        lambda: NQueens(n=8),
    ],
    ids=["sor", "ising", "asp", "nbody", "gauss", "tsp", "nqueens"],
)
def test_runs_are_reproducible(app_factory):
    r1 = run_app(app_factory(), 4)
    r2 = run_app(app_factory(), 4)
    assert r1.sim_time == r2.sim_time
    assert str(r1.result) == str(r2.result)


@pytest.mark.parametrize(
    "app_factory",
    [
        lambda: SOR(n=26, iters=8),
        lambda: Ising(n=24, iters=6),
        lambda: ASP(n=40),
    ],
    ids=["sor", "ising", "asp"],
)
def test_apps_validate_too_many_ranks(app_factory):
    app = app_factory()
    with pytest.raises(ValueError):
        app.make_state(0, 1000, SEED)


def test_app_describe_strings():
    assert "sor" in SOR(n=26, iters=1).describe()
    assert "ising" in Ising(n=24, iters=1).describe()
    assert "asp" in ASP(n=40).describe()
    assert "nbody" in NBody(n=48, iters=1).describe()
    assert "gauss" in Gauss(n=48).describe()
    assert "tsp" in TSP(n_cities=8).describe()
    assert "nqueens" in NQueens(n=8).describe()
