"""Unit tests for application internals: partitioning, kernels, generators."""

import numpy as np
import pytest

from repro.apps.asp import _INF, _make_graph, _owner_of
from repro.apps.asp import _partition as asp_partition
from repro.apps.gauss import _back_substitute, _make_system
from repro.apps.ising import _couplings, _init_spins, _sweep_colour
from repro.apps.nbody import _block_forces, _init_block
from repro.apps.nqueens import _count_from
from repro.apps.sor import _boundary_value, _init_block as sor_block, _partition, _sweep
from repro.apps.tsp import _greedy_bound, _make_map, _solve_task


class TestPartitioning:
    @pytest.mark.parametrize("n,size", [(10, 1), (10, 3), (100, 8), (9, 8)])
    def test_sor_partition_covers_interior(self, n, size):
        parts = _partition(n, size)
        assert parts[0][0] == 1
        assert parts[-1][1] == n - 1
        for (a_lo, a_hi), (b_lo, b_hi) in zip(parts, parts[1:]):
            assert a_hi == b_lo  # contiguous, no gaps or overlaps

    def test_sor_partition_balanced(self):
        parts = _partition(100, 8)
        sizes = [hi - lo for lo, hi in parts]
        assert max(sizes) - min(sizes) <= 1

    @pytest.mark.parametrize("n,size", [(16, 4), (17, 4), (5, 5)])
    def test_asp_partition_covers_all_rows(self, n, size):
        parts = asp_partition(n, size)
        assert parts[0][0] == 0 and parts[-1][1] == n
        total = sum(hi - lo for lo, hi in parts)
        assert total == n

    def test_asp_owner_of(self):
        parts = asp_partition(10, 3)
        for row in range(10):
            rank = _owner_of(row, parts)
            lo, hi = parts[rank]
            assert lo <= row < hi
        with pytest.raises(ValueError):
            _owner_of(99, parts)


class TestSorKernel:
    def test_boundary_value_deterministic(self):
        i = np.array([3]); j = np.array([4])
        assert _boundary_value(i, j, 16) == _boundary_value(i, j, 16)

    def test_sweep_preserves_boundary_columns(self):
        block = sor_block(1, 9, 10)
        left = block[:, 0].copy()
        right = block[:, -1].copy()
        _sweep(block, 1, 1.5, 0)
        np.testing.assert_array_equal(block[:, 0], left)
        np.testing.assert_array_equal(block[:, -1], right)

    def test_sweep_touches_only_one_colour(self):
        block = np.zeros((5, 8))
        block[0, :] = 1.0  # upper halo drives the update
        before = block.copy()
        _sweep(block, 1, 1.0, 0)
        gi = 1 + np.arange(3)[:, None]
        gj = np.arange(1, 7)[None, :]
        other = (gi + gj) % 2 == 1
        np.testing.assert_array_equal(
            block[1:-1, 1:-1][other], before[1:-1, 1:-1][other]
        )

    def test_sweep_converges_toward_laplace(self):
        """Relaxation reduces the residual of the interior."""
        block = sor_block(1, 31, 32)
        rng = np.random.default_rng(0)
        block[1:-1, 1:-1] += rng.normal(0, 1, size=block[1:-1, 1:-1].shape)

        def residual(b):
            lap = (
                b[0:-2, 1:-1] + b[2:, 1:-1] + b[1:-1, 0:-2] + b[1:-1, 2:]
                - 4 * b[1:-1, 1:-1]
            )
            return float(np.abs(lap).sum())

        r0 = residual(block)
        for _ in range(50):
            _sweep(block, 1, 1.5, 0)
            _sweep(block, 1, 1.5, 1)
        assert residual(block) < 0.05 * r0


class TestIsingKernel:
    def test_couplings_deterministic_and_gaussian(self):
        jh1, jv1 = _couplings(32, 5)
        jh2, jv2 = _couplings(32, 5)
        np.testing.assert_array_equal(jh1, jh2)
        np.testing.assert_array_equal(jv1, jv2)
        assert abs(jh1.mean()) < 0.1 and 0.8 < jh1.std() < 1.2

    def test_spins_are_plus_minus_one_and_stay_so(self):
        block = _init_spins(0, 0, 8, 16, 3)
        assert set(np.unique(block[1:-1])) <= {-1, 1}
        jh, jv = _couplings(16, 3)
        rng = np.random.default_rng(0)
        block[0] = block[-2]
        block[-1] = block[1]
        for colour in (0, 1):
            _sweep_colour(block, jh[0:8], jv[np.arange(-1, 8) % 16], 0,
                          colour, 0.8, rng)
        assert set(np.unique(block[1:-1])) <= {-1, 1}

    def test_zero_temperature_limit_only_downhill(self):
        """At beta -> inf, flips with positive energy cost never accept."""
        n = 16
        block = _init_spins(0, 0, 8, n, 1)
        block[0] = block[-2]
        block[-1] = block[1]
        jh, jv = _couplings(n, 1)
        rng = np.random.default_rng(2)

        def energy(b):
            inter = b[1:-1].astype(float)
            up = b[0:-2]; down = b[2:]
            left = np.roll(inter, 1, axis=1); right = np.roll(inter, -1, axis=1)
            j_up = jv[np.arange(-1, 8) % n][:-1]
            j_down = jv[np.arange(-1, 8) % n][1:]
            field = j_up * up + j_down * down + np.roll(jh[0:8], 1, 1) * left + jh[0:8] * right
            return float(-(inter * field).sum())

        e_before = energy(block)
        _sweep_colour(block, jh[0:8], jv[np.arange(-1, 8) % n], 0, 0, 1e9, rng)
        # halos stale now, but the sweep only used the pre-sweep halos:
        assert energy(block) <= e_before + 1e-9


class TestAspGraph:
    def test_graph_deterministic(self):
        np.testing.assert_array_equal(_make_graph(20, 1, 0.3), _make_graph(20, 1, 0.3))

    def test_diagonal_zero_and_inf_marks(self):
        g = _make_graph(20, 1, 0.1)
        assert (np.diag(g) == 0).all()
        assert (g == _INF).any()  # sparse graph has missing edges

    def test_density_controls_edges(self):
        dense = (_make_graph(50, 1, 0.9) < _INF).sum()
        sparse = (_make_graph(50, 1, 0.1) < _INF).sum()
        assert dense > sparse


class TestGauss:
    def test_system_diagonally_dominant(self):
        aug = _make_system(32, 7)
        a = aug[:, :-1]
        diag = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - diag
        assert (diag > off * 0.5).all()  # strongly weighted diagonal

    def test_back_substitution_solves_triangular(self):
        n = 10
        rng = np.random.default_rng(1)
        u = np.triu(rng.uniform(1, 2, size=(n, n)))
        x_true = rng.uniform(-1, 1, size=n)
        aug = np.concatenate([u, (u @ x_true)[:, None]], axis=1)
        np.testing.assert_allclose(_back_substitute(aug), x_true, rtol=1e-10)


class TestNBody:
    def test_forces_antisymmetric(self):
        pos_a, _, mass_a = _init_block(0, 5, 1)
        pos_b, _, mass_b = _init_block(1, 5, 1)
        f_ab = (_block_forces(pos_a, pos_b, mass_b) * mass_a[:, None]).sum(axis=0)
        f_ba = (_block_forces(pos_b, pos_a, mass_a) * mass_b[:, None]).sum(axis=0)
        np.testing.assert_allclose(f_ab, -f_ba, atol=1e-9)

    def test_empty_blocks(self):
        pos, _, mass = _init_block(0, 3, 1)
        empty = np.zeros((0, 3))
        assert _block_forces(empty, pos, mass).shape == (0, 3)
        assert (_block_forces(pos, empty, np.zeros(0)) == 0).all()

    def test_self_forces_finite(self):
        pos, _, mass = _init_block(0, 8, 1)
        f = _block_forces(pos, pos, mass)
        assert np.isfinite(f).all()  # softening handles self-pairs


class TestTsp:
    def test_map_symmetric_zero_diagonal(self):
        d = _make_map(10, 4)
        assert (d == d.T).all()
        assert (np.diag(d) == 0).all()

    def test_greedy_bound_is_a_tour_cost(self):
        d = _make_map(8, 4)
        bound = _greedy_bound(d)
        assert bound >= 8 * int(d[d > 0].min())

    def test_solve_task_never_exceeds_incumbent(self):
        d = _make_map(8, 4)
        best = _greedy_bound(d)
        improved, nodes = _solve_task(d, 1, 2, best)
        assert improved <= best
        assert nodes >= 1

    def test_solve_task_prunes_with_tight_bound(self):
        d = _make_map(9, 4)
        loose, nodes_loose = _solve_task(d, 1, 2, 10**9)
        tight, nodes_tight = _solve_task(d, 1, 2, loose)
        assert nodes_tight <= nodes_loose


class TestNQueens:
    @pytest.mark.parametrize("n,expected", [(4, 2), (5, 10), (6, 4), (8, 92)])
    def test_known_counts(self, n, expected):
        solutions, nodes = _count_from(n, 0, 0, 0, 0)
        assert solutions == expected
        assert nodes > solutions
