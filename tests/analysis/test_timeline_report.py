"""Unit tests for the ASCII timeline and the markdown report builder."""

import pytest

from repro.analysis import build_report, render_timeline
from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme
from repro.core import Engine, Tracer
from repro.machine import MachineParams


class TestTimeline:
    def test_paints_spans(self):
        eng = Engine()
        tracer = Tracer(eng)
        s1 = tracer.open_span("ckpt.cut", rank=0)
        eng.timeout(5.0)
        eng.run()
        tracer.close_span(s1)
        out = render_timeline(tracer, t_end=10.0, width=10)
        assert "r0" in out
        line = [l for l in out.splitlines() if l.startswith("r0")][0]
        assert line.count("#") == 6  # spans [0, 5] of a 10s window
        assert "." in line

    def test_write_spans_rendered_separately(self):
        eng = Engine()
        tracer = Tracer(eng)
        span = tracer.open_span("storage.write", node=1)
        eng.timeout(2.0)
        eng.run()
        tracer.close_span(span)
        out = render_timeline(tracer, t_end=4.0, width=8, n_ranks=2)
        r1 = [l for l in out.splitlines() if l.startswith("r1")][0]
        assert "~" in r1

    def test_empty_window_rejected(self):
        tracer = Tracer(Engine())
        with pytest.raises(ValueError):
            render_timeline(tracer, t_end=0.0)

    def test_real_run_produces_visible_blocking(self):
        app = SOR(n=34, iters=12, flops_per_cell=2400.0)
        app.image_bytes = 64 * 1024
        rt0 = CheckpointRuntime(app, machine=MachineParams(n_nodes=4), seed=1)
        T = rt0.run().sim_time
        app2 = SOR(n=34, iters=12, flops_per_cell=2400.0)
        app2.image_bytes = 64 * 1024
        rt = CheckpointRuntime(
            app2,
            scheme=CoordinatedScheme.NB([T / 2]),
            machine=MachineParams(n_nodes=4),
            seed=1,
        )
        report = rt.run()
        out = render_timeline(rt.tracer, t_end=report.sim_time, n_ranks=4)
        assert out.count("#") > 4  # every rank shows a blocked window
        assert len(out.splitlines()) == 5


class _FakeResult:
    def __init__(self, ok=True):
        self._ok = ok

    def render(self):
        return "col\n---\n1"

    def shape_holds(self):
        return {"claim_a": self._ok, "claim_b": True}


class TestReport:
    def test_report_contains_sections_and_verdict(self):
        text = build_report([("Table 1", _FakeResult())], seed=7)
        assert "## Table 1" in text
        assert "seed: `7`" in text
        assert "- [x] claim_a" in text
        assert "ALL SHAPE CHECKS PASS" in text

    def test_report_flags_failures(self):
        text = build_report([("T", _FakeResult(ok=False))])
        assert "- [ ] claim_a" in text
        assert "SOME SHAPE CHECKS FAILED" in text

    def test_report_without_shapes(self):
        class Bare:
            def render(self):
                return "body"

        text = build_report([("B", Bare())], preamble="intro text")
        assert "intro text" in text
        assert "body" in text
