"""Unit tests for overhead metrics and table rendering."""

import pytest

from repro.analysis import (
    SchemeComparison,
    count_wins,
    fmt_percent,
    fmt_seconds,
    overhead_percent,
    overhead_seconds,
    per_checkpoint_overhead,
    reduction_factor,
    render_table,
)


class FakeReport:
    def __init__(self, sim_time):
        self.sim_time = sim_time


class TestOverheads:
    def test_overhead_seconds(self):
        assert overhead_seconds(FakeReport(12.0), FakeReport(10.0)) == 2.0

    def test_overhead_percent(self):
        assert overhead_percent(FakeReport(11.0), FakeReport(10.0)) == pytest.approx(10.0)

    def test_overhead_percent_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            overhead_percent(FakeReport(1.0), FakeReport(0.0))

    def test_per_checkpoint(self):
        assert per_checkpoint_overhead(FakeReport(16.0), FakeReport(10.0), 3) == 2.0

    def test_per_checkpoint_invalid_rounds(self):
        with pytest.raises(ValueError):
            per_checkpoint_overhead(FakeReport(16.0), FakeReport(10.0), 0)


class TestWins:
    ROWS = [
        {"a": 1.0, "b": 2.0},
        {"a": 3.0, "b": 2.0},
        {"a": 1.0, "b": 1.0},
        {"a": 0.5, "b": 5.0},
    ]

    def test_count_wins(self):
        assert count_wins(self.ROWS, "a", "b") == (2, 1, 1)

    def test_count_wins_with_tolerance(self):
        rows = [{"a": 1.0, "b": 1.05}]
        assert count_wins(rows, "a", "b", tol=0.1) == (0, 0, 1)

    def test_scheme_comparison_str(self):
        cmp = SchemeComparison.over(self.ROWS, "a", "b")
        assert "a better in 2" in str(cmp)
        assert cmp.ties == 1

    def test_reduction_factor(self):
        rows = [{"x": 10.0, "y": 2.0}, {"x": 8.0, "y": 1.0}]
        red = reduction_factor(rows, "x", "y")
        assert red["min"] == 5.0
        assert red["max"] == 8.0
        assert red["mean"] == 6.5

    def test_reduction_factor_empty(self):
        red = reduction_factor([{"x": 1.0, "y": 0.0}], "x", "y")
        assert red["min"] != red["min"]  # NaN


class TestRendering:
    def test_fmt_seconds_ranges(self):
        assert fmt_seconds(123.4) == "123"
        assert fmt_seconds(12.34) == "12.3"
        assert fmt_seconds(1.234) == "1.23"
        assert fmt_seconds(float("nan")) == "-"

    def test_fmt_percent(self):
        assert fmt_percent(3.14159) == "3.14 %"
        assert fmt_percent(float("nan")) == "-"

    def test_render_table_alignment(self):
        out = render_table(
            ["name", "value"],
            [["alpha", 1.0], ["b", 200.0]],
            title="T",
            fmt=fmt_seconds,
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[2] and "value" in lines[2]
        # first column left-aligned, second right-aligned
        assert lines[4].startswith("alpha")
        assert lines[4].rstrip().endswith("1.00")
        assert lines[5].rstrip().endswith("200")

    def test_render_table_none_cell(self):
        out = render_table(["a"], [[None]])
        assert "-" in out
