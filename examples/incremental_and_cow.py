#!/usr/bin/env python
"""Extension techniques: incremental and copy-on-write checkpointing.

The paper's related work credits Elnozahy et al. with reducing checkpoint
overhead through incremental and copy-on-write checkpointing; this library
implements both on top of the reproduced schemes. The demo runs the ISING
spin glass — whose random bond couplings (the bulk of the state) never
change after initialisation — and shows dirty-page increments shrinking
the shipped volume by ~3x, with recovery still exact across a crash.

    python examples/incremental_and_cow.py
"""

from repro.apps import Ising
from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan
from repro.machine import MachineParams


def run(scheme, fault=None, machine=None, seed=21):
    return CheckpointRuntime(
        Ising(n=192, iters=160),
        scheme=scheme,
        machine=machine or MachineParams.xplorer8(),
        seed=seed,
        fault_plan=fault,
    ).run()


def main() -> None:
    baseline = run(None)
    T = baseline.sim_time
    times = [T * f for f in (0.2, 0.4, 0.6)]
    print(f"ISING n=192: baseline {T:.1f} s, 3 checkpoints\n")

    print(f"{'variant':<26} {'overhead':>9} {'blocked(s)':>11} "
          f"{'written MB':>11}")
    for label, scheme in (
        ("NBMS (memcopy, full)", CoordinatedScheme.NBMS(times)),
        ("NBMS + incremental", CoordinatedScheme.NBMS(times, incremental=True)),
        ("NBC  (copy-on-write)", CoordinatedScheme.NBC(times)),
        ("NBCS + incremental", CoordinatedScheme.NBCS(times, incremental=True)),
    ):
        report = run(scheme)
        overhead = 100 * (report.sim_time - T) / T
        print(
            f"{label:<26} {overhead:>8.2f}% {report.blocked_time:>11.3f} "
            f"{report.storage_bytes_written / 1e6:>11.2f}"
        )

    # recovery through an incremental chain is exact
    crashed = run(
        CoordinatedScheme.NBMS(times, incremental=True, full_every=8),
        fault=FaultPlan.single(0.8 * T),
    )
    rec = crashed.recoveries[0]
    print(
        f"\ncrash at 80%: restored checkpoint "
        f"{max(rec.line_indices.values())} (chain read), result identical: "
        f"{crashed.result['magnetisation'] == baseline.result['magnetisation']}"
    )


if __name__ == "__main__":
    main()
