#!/usr/bin/env python
"""Why Coord_NBMS wins: contention at the stable storage, dissected.

Runs one workload under all four coordinated variants plus the two
independent schemes and prints the per-checkpoint overhead next to the
storage server's peak concurrency — making the paper's mechanism visible:
the overhead tracks how many checkpoint streams hit the storage at once,
and staggering only pays once the application no longer blocks on the
write (main-memory checkpointing).

    python examples/staggered_checkpointing.py
"""

from repro.analysis import render_timeline
from repro.apps import Gauss
from repro.chklib import CheckpointRuntime
from repro.experiments import make_scheme
from repro.machine import MachineParams

SCHEMES = (
    "coord_nb",  # blocking write, all at once
    "coord_nbs",  # blocking write, staggered   (ablation: the bad combo)
    "coord_nbm",  # memory copy, concurrent background writes
    "coord_nbms",  # memory copy, staggered background writes
    "indep",  # blocking write, autonomous timers
    "indep_m",  # memory copy, autonomous timers
)


def main() -> None:
    machine = MachineParams.xplorer8()
    make_app = lambda: Gauss(n=512, flops_per_cell=32.0)

    baseline = CheckpointRuntime(make_app(), machine=machine, seed=1).run()
    rounds = 3
    interval = baseline.sim_time / (rounds + 1.5)
    times = [interval * (i + 1) for i in range(rounds)]
    print(
        f"GAUSS n=512: baseline {baseline.sim_time:.1f} s, "
        f"{rounds} checkpoints every {interval:.0f} s\n"
    )
    print(f"{'scheme':<12} {'overhead/ckpt':>14} {'blocked(s)':>11} "
          f"{'peak streams':>13}")
    timelines = {}
    for name in SCHEMES:
        rt = CheckpointRuntime(
            make_app(),
            scheme=make_scheme(name, times, interval),
            machine=machine,
            seed=1,
        )
        report = rt.run()
        per_ckpt = (report.sim_time - baseline.sim_time) / rounds
        peak = rt.storage.server.peak_concurrency
        print(
            f"{name:<12} {per_ckpt:>12.2f} s {report.blocked_time:>11.2f} "
            f"{peak:>13}"
        )
        timelines[name] = render_timeline(
            rt.tracer, t_end=report.sim_time, n_ranks=machine.n_nodes
        )

    # the second checkpoint round, zoomed: where the schemes differ
    print("\ncheckpoint activity timelines (# blocked, ~ writing):")
    for name in ("coord_nb", "coord_nbms", "indep"):
        print(f"\n--- {name}")
        print(timelines[name])


if __name__ == "__main__":
    main()
