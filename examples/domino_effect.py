#!/usr/bin/env python
"""The domino effect, live.

Runs the ISING spin glass under independent checkpointing and crashes it:

* with *aligned* timers, all ranks cut at the same iteration boundary —
  halo-exchange apps are naturally transitless there, so recovery finds a
  recent consistent line;
* with *skewed* timers (more realistic for autonomous clocks), cuts land on
  different iteration boundaries; without message logging no consistent
  transitless line exists above the start and the rollback cascades all
  the way — the domino effect;
* sender-based message logging breaks the cascade: any consistent line is
  recoverable because in-transit messages replay from the logs.

    python examples/domino_effect.py
"""

from repro.apps import Ising
from repro.chklib import CheckpointRuntime, FaultPlan, IndependentScheme
from repro.machine import MachineParams


def run_case(label, scheme, baseline, machine):
    report = CheckpointRuntime(
        Ising(n=128, iters=400),
        scheme=scheme,
        machine=machine,
        seed=3,
        fault_plan=FaultPlan.single(0.9 * baseline.sim_time),
    ).run()
    rec = report.recoveries[0]
    restored = sorted(rec.line_indices.values())
    print(
        f"{label:<28} restored checkpoints {restored}  "
        f"domino extent {rec.domino_extent:4.0%}  "
        f"lost {max(rec.lost_time.values()):6.1f} s  "
        f"exact={report.result['magnetisation'] == baseline.result['magnetisation']}"
    )


def main() -> None:
    machine = MachineParams.xplorer8()
    baseline = CheckpointRuntime(
        Ising(n=128, iters=400), machine=machine, seed=3
    ).run()
    print(f"baseline run: {baseline.sim_time:.1f} s\n")

    interval = baseline.sim_time / 4.5
    times = [interval * (i + 1) for i in range(3)]

    run_case(
        "aligned timers, no logs",
        IndependentScheme.IndepM(times, skew=interval / 1000),
        baseline,
        machine,
    )
    run_case(
        "skewed timers, no logs",
        IndependentScheme.IndepM(times, skew=interval / 2),
        baseline,
        machine,
    )
    run_case(
        "skewed timers + logging",
        IndependentScheme.IndepM(times, skew=interval / 2, logging=True),
        baseline,
        machine,
    )


if __name__ == "__main__":
    main()
