#!/usr/bin/env python
"""Fault injection v2: faulty stable storage and self-healing recovery.

The paper's model assumes stable storage never fails. This example drops
that assumption and walks through the defensive machinery:

1. transient write faults absorbed by bounded retry-with-backoff;
2. an unretryable write failure — coordinated aborts the 2PC round
   cleanly, independent drops the local checkpoint and carries on;
3. silent corruption of a committed checkpoint, detected by checksum at
   recovery time, quarantined, with fallback to an older committed line;
4. a per-node crash under two-level storage: the failed node's private
   local disk dies with it, so only checkpoints already trickled to the
   global server survive for that rank.

Every run still produces the exact fault-free answer — the machinery
degrades performance, never correctness.

    python examples/fault_injection.py
"""

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, IndependentScheme
from repro.fault import FaultModel, RetryPolicy, StorageFaultSpec
from repro.machine import MachineParams

MACHINE = MachineParams(n_nodes=4)
SEED = 4


def make_app():
    app = SOR(n=26, iters=10, flops_per_cell=3000.0)
    app.image_bytes = 32 * 1024
    return app


def run(scheme, model):
    return CheckpointRuntime(
        make_app(), scheme=scheme, machine=MACHINE, seed=SEED, fault_model=model
    ).run()


def show(label, report, expected):
    ev = report.recoveries[0] if report.recoveries else None
    line = sorted(set(ev.line_indices.values())) if ev else "-"
    print(
        f"{label:<26} time={report.sim_time:8.1f}s  "
        f"faults w/r={report.storage_write_faults}/{report.storage_read_faults}  "
        f"retries={report.storage_write_retries + report.storage_read_retries}  "
        f"aborted={report.rounds_aborted}  "
        f"quarantined={report.checkpoints_quarantined}  "
        f"line={line}  "
        f"exact={'yes' if report.result['sum'] == expected else 'NO'}"
    )


def main() -> None:
    baseline = CheckpointRuntime(make_app(), machine=MACHINE, seed=SEED).run()
    T = baseline.sim_time
    expected = baseline.result["sum"]
    times = [T / 4, T / 2]
    print(f"SOR baseline: {T:.1f} s fault-free; checkpoints at T/4 and T/2\n")

    # 1. probabilistic storage faults, absorbed by retries
    flaky = FaultModel.machine_crash(
        0.8 * T,
        storage=StorageFaultSpec(write_fail_p=0.30, read_fail_p=0.15),
        retry=RetryPolicy(max_retries=4, backoff_base=0.05),
    )
    show("flaky storage + crash", run(CoordinatedScheme.NBM(times), flaky), expected)

    # 2. unretryable write failure: abort vs. local drop
    hard_fail = FaultModel.machine_crash(
        0.8 * T,
        storage=StorageFaultSpec(fail_writes_at=(2,)),
        retry=RetryPolicy(max_retries=0),
    )
    show("write fails -> 2PC abort", run(CoordinatedScheme.NBM(times), hard_fail), expected)
    show(
        "write fails -> local drop",
        run(IndependentScheme.IndepM(times, skew=T / 50, logging=True), hard_fail),
        expected,
    )

    # 3. silent corruption: quarantine + fallback to an older line
    rot = FaultModel.machine_crash(
        0.9 * T, storage=StorageFaultSpec(corrupt_ckpts=((1, 2),))
    )
    show(
        "rank 1 ckpt #2 corrupted",
        run(IndependentScheme.IndepM(times, skew=T / 50, logging=True), rot),
        expected,
    )

    # 4. per-node crash: rank 1's local disk dies with it
    node_down = FaultModel.node_crash(1, 0.8 * T)
    show(
        "node 1 dies (two-level)",
        run(CoordinatedScheme.NBMS(times, two_level=True), node_down),
        expected,
    )


if __name__ == "__main__":
    main()
