#!/usr/bin/env python
"""Recovery cost anatomy: what a crash actually costs under each scheme.

Crashes the ASP benchmark at several points in its run under coordinated
and independent (logging) checkpointing, and reports for each: the restore
line, work lost, recovery I/O time, replayed channel messages, and whether
the final answer survived intact.

    python examples/failure_recovery.py
"""

from repro.apps import ASP
from repro.chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
)
from repro.machine import MachineParams


def main() -> None:
    machine = MachineParams.xplorer8()
    make_app = lambda: ASP(n=288, flops_per_cell=24.0)
    baseline = CheckpointRuntime(make_app(), machine=machine, seed=4).run()
    T = baseline.sim_time
    times = [T * f for f in (0.2, 0.4, 0.6)]
    print(f"ASP n=288: baseline {T:.1f} s, checkpoints at "
          f"{[f'{t:.0f}s' for t in times]}\n")

    header = (
        f"{'scheme':<14} {'crash@':>7} {'line':>6} {'lost(s)':>8} "
        f"{'recovery(s)':>12} {'replayed':>9} {'exact':>6}"
    )
    print(header)
    print("-" * len(header))
    for crash_frac in (0.3, 0.55, 0.9):
        for name, scheme_factory in (
            ("coord_nbms", lambda: CoordinatedScheme.NBMS(times)),
            (
                "indep_m+log",
                lambda: IndependentScheme.IndepM(
                    times, skew=T / 40, logging=True
                ),
            ),
        ):
            report = CheckpointRuntime(
                make_app(),
                scheme=scheme_factory(),
                machine=machine,
                seed=4,
                fault_plan=FaultPlan.single(crash_frac * T),
            ).run()
            rec = report.recoveries[0]
            line = sorted(set(rec.line_indices.values()))
            exact = report.result["distsum"] == baseline.result["distsum"]
            print(
                f"{name:<14} {crash_frac * T:>6.0f}s {str(line):>6} "
                f"{max(rec.lost_time.values()):>8.1f} "
                f"{rec.duration:>12.3f} {rec.replayed_messages:>9} "
                f"{'yes' if exact else 'NO':>6}"
            )


if __name__ == "__main__":
    main()
