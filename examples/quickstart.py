#!/usr/bin/env python
"""Quickstart: run a parallel application under coordinated checkpointing,
crash the machine, and watch it recover to the exact same answer.

    python examples/quickstart.py
"""

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan
from repro.machine import MachineParams


def main() -> None:
    machine = MachineParams.xplorer8()  # 8 transputers, shared stable storage

    # 1. Uncheckpointed baseline: red-black SOR on a 256x256 grid.
    app = SOR(n=256, iters=200, flops_per_cell=40.0)
    baseline = CheckpointRuntime(app, machine=machine, seed=42).run()
    print(f"baseline:   {baseline.sim_time:8.2f} s   sum={baseline.result['sum']:.6f}")

    # 2. Same run under Coord_NBMS (main-memory checkpointing + staggered
    #    background writes), three checkpoints.
    times = [baseline.sim_time * f for f in (0.22, 0.44, 0.66)]
    ckpt = CheckpointRuntime(
        SOR(n=256, iters=200, flops_per_cell=40.0),
        scheme=CoordinatedScheme.NBMS(times),
        machine=machine,
        seed=42,
    ).run()
    overhead = 100 * (ckpt.sim_time - baseline.sim_time) / baseline.sim_time
    print(
        f"checkpointed: {ckpt.sim_time:6.2f} s   overhead={overhead:.2f} %   "
        f"({ckpt.checkpoints_committed} checkpoints committed)"
    )

    # 3. Crash at 80% of the run: everyone rolls back to the last committed
    #    global checkpoint, channel state replays, execution resumes.
    crashed = CheckpointRuntime(
        SOR(n=256, iters=200, flops_per_cell=40.0),
        scheme=CoordinatedScheme.NBMS(times),
        machine=machine,
        seed=42,
        fault_plan=FaultPlan.single(0.8 * baseline.sim_time),
    ).run()
    rec = crashed.recoveries[0]
    print(
        f"crashed run:  {crashed.sim_time:6.2f} s   "
        f"rolled back to checkpoint {max(rec.line_indices.values())}, "
        f"lost {max(rec.lost_time.values()):.1f} s of work"
    )
    print(
        "recovered result identical:",
        crashed.result["sum"] == baseline.result["sum"],
    )


if __name__ == "__main__":
    main()
