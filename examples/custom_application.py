#!/usr/bin/env python
"""Writing your own application against the CHK-LIB API.

A miniature parallel histogram equalisation: every rank owns a shard of
data, computes local histograms, allreduces them, then remaps its shard.
Demonstrates the full SPMD contract:

* all state (including the RNG) in one dict, resumable at ``iter``;
* one ``checkpoint_point()`` per outer iteration;
* collectives and point-to-point from :mod:`repro.net`;
* transparent checkpointing + crash recovery with zero app changes.

    python examples/custom_application.py
"""

import numpy as np

from repro.apps.base import Application
from repro.chklib import CheckpointRuntime, CoordinatedScheme, FaultPlan
from repro.core.rng import derive_seed
from repro.machine import MachineParams
from repro.net.collectives import allreduce


class ParallelHistogram(Application):
    """Iteratively sharpen a shared histogram over ranked data shards."""

    name = "histogram"

    def __init__(self, shard: int = 50_000, bins: int = 64, iters: int = 40):
        self.shard = shard
        self.bins = bins
        self.iters = iters

    def make_state(self, rank, size, seed):
        rng = np.random.default_rng(derive_seed(seed, f"hist.r{rank}"))
        return {
            "iter": 0,
            "data": rng.normal(0.0, 1.0, size=self.shard),
            "rng": rng,
        }

    def run(self, ctx, state):
        flops_per_pass = 20.0 * self.shard
        while state["iter"] < self.iters:
            data = state["data"]
            local, edges = np.histogram(data, bins=self.bins, range=(-4, 4))
            total = yield from allreduce(ctx.comm, local, np.add)
            # push samples toward under-populated bins (toy equalisation)
            weights = 1.0 / (1.0 + total)
            centres = (edges[:-1] + edges[1:]) / 2
            target = centres[np.argmax(weights)]
            data += 0.05 * (target - data) * state["rng"].random(data.size)
            yield from ctx.compute(flops_per_pass)
            state["iter"] += 1
            yield from ctx.checkpoint_point()
        final = np.histogram(state["data"], bins=self.bins, range=(-4, 4))[0]
        grand = yield from allreduce(ctx.comm, final, np.add)
        if ctx.rank == 0:
            return {"spread": float(grand.std()), "total": int(grand.sum())}
        return None

    def serial_result(self, size, seed):  # pragma: no cover - illustrative
        raise NotImplementedError("left as an exercise")


def main() -> None:
    machine = MachineParams.xplorer8()
    baseline = CheckpointRuntime(ParallelHistogram(), machine=machine, seed=9).run()
    print(f"baseline: {baseline.sim_time:.2f} s  result={baseline.result}")

    times = [baseline.sim_time * f for f in (0.3, 0.6)]
    crashed = CheckpointRuntime(
        ParallelHistogram(),
        scheme=CoordinatedScheme.NBMS(times),
        machine=machine,
        seed=9,
        fault_plan=FaultPlan.single(0.85 * baseline.sim_time),
    ).run()
    print(
        f"with crash+recovery: {crashed.sim_time:.2f} s  "
        f"result={crashed.result}  identical="
        f"{crashed.result == baseline.result}"
    )


if __name__ == "__main__":
    main()
