"""E3 extension: two-level stable storage (the authors' follow-up work).

Shapes asserted: the blocking cost of Coord_NB collapses when the capture
write goes to the node's private local disk; recovery restores from the
local disks in parallel (order-of-magnitude faster); the global server
still receives every byte via the background trickle.
"""

from repro.experiments.twolevel import run_two_level


def test_two_level(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_two_level(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("extension_twolevel", table)

    shapes = result.shape_holds()
    assert shapes["nb_overhead_collapses"]
    assert shapes["recovery_faster"]
    assert shapes["global_still_receives_everything"]
