"""A3 sweeps: storage contention as the mechanism behind Coord_NB's cost.

S1: the per-checkpoint cost of Coord_NB grows superlinearly with the
number of simultaneous writers (queueing + thrash at the single server).

S2: overhead falls as the storage path speeds up, and staggering's
advantage is largest when storage is slow.
"""

from repro.experiments import run_bandwidth_sweep, run_writer_sweep


def test_writer_sweep(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_writer_sweep(node_counts=(2, 4, 8), seed=bench_seed, executor=grid_executor),
        rounds=1,
        iterations=1,
    )
    table = result.render()
    print("\n" + table)
    save_result("sweep_writers", table)

    shapes = result.shape_holds()
    assert shapes["cost_grows_with_writers"]
    assert shapes["superlinear_in_volume"]


def test_bandwidth_sweep(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_bandwidth_sweep(seed=bench_seed, executor=grid_executor),
        rounds=1,
        iterations=1,
    )
    table = result.render()
    print("\n" + table)
    save_result("sweep_storage", table)

    shapes = result.shape_holds()
    assert shapes["overhead_falls_with_bandwidth"]
    assert shapes["staggering_matters_most_when_slow"]
