"""R3: resilience under faulty stable storage.

The fault-injection subsystem's end-to-end claims: transient storage
faults are absorbed by bounded retries, an unretryable write failure
aborts the coordinated round (or drops the independent local checkpoint),
silent corruption is quarantined at recovery with fallback to an older
committed line — and through all of it every scheme still reproduces the
undisturbed application result exactly.
"""

from repro.experiments import run_resilience


def test_resilience(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_resilience(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("resilience", table)

    shapes = result.shape_holds()
    assert shapes["all_results_exact"]
    assert shapes["all_recoveries_sound"]
    assert shapes["fault_free_is_clean"]
    assert shapes["faults_injected"]
    assert shapes["retries_absorb_faults"]
    assert shapes["coordinated_aborts_cleanly"]
    assert shapes["independent_drops_locally"]
    assert shapes["mlog_degrades_to_optimistic"]
    assert shapes["corruption_quarantined"]
