"""Regenerate Table 3: overhead percentages and the paper's reduction claim.

Shapes asserted:
  * NB -> NBMS overhead reduction is large (paper: a factor of 4 to 17);
  * Coord_NBMS <= Indep_M overall;
  * loosely-coupled apps (TSP, NQUEENS) end below 1% under NBMS;
  * tightly-coupled apps carry the biggest NB overheads.
"""

from repro.experiments import run_table23, table23_workloads


def test_table3(benchmark, bench_scale, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_table23(
            workloads=table23_workloads(bench_scale), seed=bench_seed, executor=grid_executor
        ),
        rounds=1,
        iterations=1,
    )
    table = result.render("table3")
    summary = result.summary()
    print("\n" + table + "\n\n" + summary)
    save_result("table3", table, summary)

    shapes = result.shape_holds()
    assert shapes["nbms_reduction_large"], summary
    assert shapes["nb_beats_indep_overall"], summary
    assert shapes["nbms_beats_indep_m_overall"], summary
    assert shapes["loose_apps_sub_percent"], summary
    assert shapes["tight_apps_heavier"], summary
