"""A2 ablation: synchronisation cost vs checkpoint-saving cost.

Paper claim: "the overhead of synchronizing the checkpoints is negligible
and presents a minor contribution to the overall performance cost"; the
saving of local checkpoints to stable storage dominates.
"""

from repro.experiments import run_sync_cost, table23_workloads


def test_sync_cost(benchmark, bench_scale, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_sync_cost(
            workloads=table23_workloads(bench_scale)[:5], seed=bench_seed, executor=grid_executor
        ),
        rounds=1,
        iterations=1,
    )
    table = result.render()
    print("\n" + table)
    save_result("ablation_synccost", table)

    shapes = result.shape_holds()
    assert shapes["sync_cost_negligible"]
    assert shapes["saving_dominates"]
