"""E1/E2 extension experiments.

E1 — capture-mode x incremental ablation: copy-on-write and dirty-page
incremental checkpointing (the techniques the paper's related work credits
to Elnozahy et al. [13]) layered on the reproduced schemes.

E2 — behaviour under failures: completion time vs failure rate (graceful
for recovering schemes, catastrophic for the domino case) and the
checkpoint-interval optimum vs Young's formula.
"""

from repro.experiments.capture import run_capture_ablation
from repro.experiments.faults import run_failure_rates, run_interval_sweep


def test_capture_ablation(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_capture_ablation(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("extension_capture", table)

    shapes = result.shape_holds()
    assert shapes["incremental_writes_less"]
    assert shapes["incremental_big_win_on_ising"]
    assert shapes["incremental_small_win_on_sor"]
    assert shapes["incremental_overhead_not_worse"]


def test_failure_rates(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_failure_rates(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("extension_failure_rates", table)

    shapes = result.shape_holds()
    assert shapes["monotone_in_failure_rate"]
    assert shapes["coordinated_graceful"]
    assert shapes["domino_catastrophic"]


def test_interval_sweep_vs_young(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_interval_sweep(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("extension_interval_sweep", table)

    shapes = result.shape_holds()
    assert shapes["u_shape"]
    assert shapes["young_within_2x"]
