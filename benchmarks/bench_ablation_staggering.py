"""A1 ablation: staggering with and without main-memory checkpointing.

Paper claim: "checkpoint staggering was only an effective solution when
used together with the other optimization technique: main-memory
checkpointing". NBS (staggered blocking writes) serialises the blocked
windows and must not win anywhere; NBMS must be the best variant for most
workloads.
"""

from repro.experiments import run_staggering_ablation, table23_workloads


def test_staggering_ablation(benchmark, bench_scale, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_staggering_ablation(
            workloads=table23_workloads(bench_scale)[:5], seed=bench_seed, executor=grid_executor
        ),
        rounds=1,
        iterations=1,
    )
    table = result.render()
    print("\n" + table)
    save_result("ablation_staggering", table)

    shapes = result.shape_holds()
    assert shapes["nbs_never_best"]
    assert shapes["nbms_best_majority"]
    assert shapes["stagger_helps_with_memory"]
