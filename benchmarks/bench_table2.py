"""Regenerate Table 2: execution times with three checkpoints per run.

Shape: every checkpointed column is slower than NORMAL; both coordinated
schemes sit at or below their independent counterparts in the overall
winner count (the paper: "in the overall both coordinated checkpointing
schemes perform better ... although the difference is not very
significant").
"""

from repro.chklib.schemes import REGISTRY
from repro.experiments import run_table23, table23_workloads


def test_table2(benchmark, bench_scale, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_table23(
            workloads=table23_workloads(bench_scale), seed=bench_seed, executor=grid_executor
        ),
        rounds=1,
        iterations=1,
    )
    table = result.render("table2")
    print("\n" + table)
    save_result("table2", table)

    for res in result.data["results"]:
        for scheme, report in res.reports.items():
            assert report.sim_time >= res.normal_time, (res.label, scheme)
            # every run took and committed its three rounds; the CIC
            # family additionally takes index-induced forced checkpoints
            if REGISTRY.family_of(scheme).name == "cic":
                assert report.checkpoints_taken >= 3 * report.n_nodes, (
                    res.label,
                    scheme,
                )
            else:
                assert report.checkpoints_taken == 3 * report.n_nodes, (
                    res.label,
                    scheme,
                )

    cmps = result.data["comparisons"]
    assert cmps["nb_vs_indep"].a_wins >= cmps["nb_vs_indep"].b_wins
    assert cmps["nbms_vs_indep_m"].a_wins > cmps["nbms_vs_indep_m"].b_wins
