"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables (or a supporting
experiment), asserts the paper's qualitative shape, and writes the rendered
table to ``results/<name>.txt`` so a benchmark run leaves artefacts behind.

Environment:

* ``REPRO_BENCH_SCALE`` — iteration-count scale for the workloads
  (default ``1.0``; e.g. ``0.2`` for a quick smoke pass — checkpoint
  volumes stay full-size, run lengths shrink).
* ``REPRO_BENCH_SEED`` — master seed (default 0).
* ``REPRO_BENCH_JOBS`` — worker processes for the shared grid executor
  (default: all CPU cores; ``1`` forces serial execution).
* ``REPRO_BENCH_CACHE`` — set to ``1`` to let the session's executor
  use the on-disk result cache (off by default: benchmarks measure
  execution time, and cache hits would make a second run meaningless).
"""

import os
import pathlib

import pytest

from repro.experiments import GridExecutor

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def grid_executor() -> GridExecutor:
    """One executor for the whole benchmark session: cells shared between
    experiments (baselines, the table2/table3 grid) run exactly once."""
    jobs = os.environ.get("REPRO_BENCH_JOBS")
    return GridExecutor(
        jobs=int(jobs) if jobs else None,
        use_cache=os.environ.get("REPRO_BENCH_CACHE") == "1",
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Write a rendered experiment artefact to results/<name>.txt."""

    def save(name: str, *chunks: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text("\n\n".join(chunks) + "\n")
        print(f"\n[saved {path}]")

    return save
