"""R1/R2: the recovery-side claims (asserted in prose in the paper).

R1 — rollback behaviour at a crash: coordinated rollback is bounded and
predictable; independent checkpointing with misaligned timers and no
logging suffers the domino effect; every recovery reproduces the
undisturbed result exactly.

R2 — stable-storage overhead: coordinated holds at most two checkpoints
per process; independent accumulates chains, and garbage collection helps
but never reaches the coordinated bound.
"""

from repro.experiments import run_domino, run_storage_overhead


def test_domino(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_domino(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("recovery_domino", table)

    shapes = result.shape_holds()
    assert shapes["all_recoveries_exact"]
    assert shapes["coordinated_bounded_rollback"]
    assert shapes["independent_domino_occurs"]
    # the third family (CIC / message logging) runs with the same
    # misaligned timers as the cascading independent variant, yet never
    # dominoes: forced checkpoints / stable logs bound the rollback
    assert shapes["third_family_no_domino"]


def test_storage_overhead(benchmark, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_storage_overhead(seed=bench_seed, executor=grid_executor), rounds=1, iterations=1
    )
    table = result.render()
    print("\n" + table)
    save_result("recovery_storage", table)

    shapes = result.shape_holds()
    assert shapes["coordinated_bounded"]
    assert shapes["independent_accumulates"]
    assert shapes["gc_without_logs_ineffective"]
    assert shapes["logging_gc_collects"]
