"""Kernel micro-benchmark suite: measure and defend the hot path.

Every table of the reproduction is produced by millions of pops through
``Engine.step``; this suite pins down what one pop, one timeout, one
message round-trip and one full checkpoint round cost, so kernel changes
are measurable (and regressions catchable in CI).

Benchmarks
----------

* ``event_churn``      — succeed/pop cycles of bare ``Event``s (the
  delay-0 fast lane: every ``succeed``, process bootstrap and condition
  trigger takes this path);
* ``timeout_storm``    — many processes sleeping on distinct non-zero
  delays (the future-event heap path);
* ``ping_pong``        — a message round-trip between two ranks through
  the full net stack (mailbox match, transport, link resource);
* ``coord_nbm_round``  — a complete Coord_NBM run of a small SOR grid
  (checkpoint rounds included: 2PC control traffic, storage writes);
* ``indep_run``        — the same workload under independent
  checkpointing with message logging;
* ``scale_512``        — one staggered coordinated round (Coord_NBMS,
  peers-scoped markers) at 512 ranks on the 16-rack hierarchical
  machine: the large-topology path (per-rack link costs, multi-server
  storage plane, per-server staggering rings) under load;
* ``scale_1024``       — the same round at 1024 ranks: the regime the
  batched backend exists for (bigger timestamp cohorts, longer storms);
* ``storm_batch``      — homogeneous timeout storms inserted through
  ``Engine.timeout_batch`` (the vectorised grouped-insert path; waves
  land on a handful of shared timestamps, so the batched calendar
  drains whole cohorts per dispatch step).

Backends: ``--backend {reference,twotier,batched}`` runs the whole
suite under one kernel backend (it sets ``REPRO_KERNEL_BACKEND`` for
every engine the benches build). Per-backend baselines live in the
``backends`` section of BENCH_kernel.json — record one with
``--backend X --update-backend-baseline`` and gate against it with
``--backend X --check BENCH_kernel.json`` (each backend is compared
against its *own* committed numbers; the legacy ``after`` section
gates runs with no backend recorded).

Timing harness: stdlib only — ``time.perf_counter`` around whole
simulation runs, median of ``--repeats`` fresh runs.  Every sample is
paired with an *adjacent* pure-Python calibration spin, and the
``normalised`` score is the median of per-sample ``bench/calibration``
ratios: host-load drift (shared CI runners, noisy containers) hits the
sample and its calibration alike, so the ratio stays comparable across
machines and across differently-loaded runs of the same machine.  The
CI gate (``--check``) compares normalised medians and fails on >25 %
regression against the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py                # table
    PYTHONPATH=src python benchmarks/bench_kernel.py --json out.json
    PYTHONPATH=src python benchmarks/bench_kernel.py \
        --update-baseline after --baseline BENCH_kernel.json
    PYTHONPATH=src python benchmarks/bench_kernel.py \
        --check BENCH_kernel.json                                   # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps import SOR
from repro.chklib import CheckpointRuntime, CoordinatedScheme, IndependentScheme
from repro.core.engine import Engine
from repro.core.kernel import BACKEND_ENV, DEFAULT_BACKEND, available_backends
from repro.core.events import Event
from repro.machine import MachineParams
from repro.machine.cluster import Cluster
from repro.net.api import Comm
from repro.net.transport import Transport

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"

#: benchmarks whose committed before/after speedup the acceptance
#: criteria call out explicitly.
HEADLINE = ("event_churn", "timeout_storm")

#: normalised-median regression tolerance for the CI gate.
TOLERANCE = 1.25


# ---------------------------------------------------------------------------
# micro-benchmarks (each returns the number of kernel "operations" done)


def bench_event_churn(scale: float = 1.0) -> int:
    """Delay-0 event cycles: allocate, succeed, pop, resume."""
    ops = max(1000, int(200_000 * scale))
    eng = Engine()

    def churner():
        for _ in range(ops):
            ev = Event(eng)
            ev.succeed(None)
            yield ev

    eng.process(churner())
    eng.run()
    return ops


def bench_timeout_storm(scale: float = 1.0) -> int:
    """Future-event heap churn: 32 tickers on distinct periods."""
    n_procs = 32
    per = max(100, int(3_000 * scale))
    eng = Engine()

    def ticker(i: int):
        delay = 0.001 + i * 0.000097
        for _ in range(per):
            yield eng.timeout(delay)

    for i in range(n_procs):
        eng.process(ticker(i))
    eng.run()
    return n_procs * per


def bench_storm_batch(scale: float = 1.0) -> int:
    """Homogeneous timeout storms via the vectorised grouped insert.

    Waves of 512 timeouts drawn from 8 distinct delays: each wave lands
    on 8 shared timestamps, so a cohort-draining backend pops 64 events
    per queue operation instead of one.
    """
    n = 512
    waves = max(5, int(150 * scale))
    eng = Engine()
    delays = [0.001 + (i % 8) * 0.00025 for i in range(n)]
    last = delays.index(max(delays))

    def driver():
        for _ in range(waves):
            evs = eng.timeout_batch(delays)
            yield evs[last]  # the rest of the wave fires unobserved

    eng.process(driver())
    eng.run()
    return n * waves


def bench_ping_pong(scale: float = 1.0) -> int:
    """Message round-trips through mailbox + transport + link."""
    rounds = max(200, int(8_000 * scale))
    eng = Engine()
    cluster = Cluster(eng, MachineParams.xplorer(2))
    transport = Transport(cluster)
    c0 = Comm(transport, 0, 2)
    c1 = Comm(transport, 1, 2)

    def ping():
        for i in range(rounds):
            yield from c0.send(1, i)
            yield from c0.recv(source=1)

    def pong():
        for _ in range(rounds):
            msg = yield from c1.recv(source=0)
            yield from c1.send(0, msg.payload)

    eng.process(ping())
    eng.process(pong())
    eng.run()
    return 2 * rounds


def _sor_runtime(scheme_factory, scale: float) -> CheckpointRuntime:
    app = SOR(n=48, iters=max(8, int(30 * scale)))
    machine = MachineParams.xplorer(4)
    # Probe the uncheckpointed duration once so checkpoint times land
    # inside the run regardless of scale (cached across repeats).
    key = scale
    t = _sor_runtime._durations.get(key)
    if t is None:
        probe = CheckpointRuntime(
            SOR(n=48, iters=max(8, int(30 * scale))),
            machine=machine,
            seed=1,
            trace=False,
        ).run()
        t = probe.sim_time
        _sor_runtime._durations[key] = t
    times = [t / 4, t / 2, 3 * t / 4]
    return CheckpointRuntime(
        app, scheme=scheme_factory(times), machine=machine, seed=1, trace=False
    )


_sor_runtime._durations = {}  # type: ignore[attr-defined]


def bench_coord_nbm_round(scale: float = 1.0) -> int:
    """Full Coord_NBM checkpoint rounds on a small SOR grid."""
    rt = _sor_runtime(CoordinatedScheme.NBM, scale)
    report = rt.run()
    return rt.engine._seq  # events processed ≈ kernel ops


def bench_indep_run(scale: float = 1.0) -> int:
    """Independent checkpointing (logged) on the same workload."""
    rt = _sor_runtime(
        lambda times: IndependentScheme.Indep(times, skew=0.05, logging=True),
        scale,
    )
    rt.run()
    return rt.engine._seq


def _bench_scale(n_ranks: int, scale: float) -> int:
    """One staggered Coord_NBMS round at *n_ranks* on the hierarchical
    machine (16 racks at 512, 32 at 1024)."""
    from repro.experiments import scale_workload

    machine = MachineParams.hierarchical(n_ranks)
    iters = max(3, int(8 * scale))

    def build_app():
        app = scale_workload(n_ranks).build()
        app.iters = iters
        return app

    key = (f"scale_{n_ranks}", scale)
    t = _sor_runtime._durations.get(key)
    if t is None:
        t = (
            CheckpointRuntime(build_app(), machine=machine, seed=1, trace=False)
            .run()
            .sim_time
        )
        _sor_runtime._durations[key] = t
    rt = CheckpointRuntime(
        build_app(),
        scheme=CoordinatedScheme.NBMS([t / 2], marker_scope="peers"),
        machine=machine,
        seed=1,
        trace=False,
    )
    rt.run()
    return rt.engine._seq


def bench_scale_512(scale: float = 1.0) -> int:
    """One Coord_NBMS round at 512 ranks on the 16-rack machine."""
    return _bench_scale(512, scale)


def bench_scale_1024(scale: float = 1.0) -> int:
    """The same round at 1024 ranks — the batched backend's regime."""
    return _bench_scale(1024, scale)


#: pure-Python spin length for one calibration sample — deliberately NOT
#: scaled by ``--quick``: a constant yardstick across runs and machines.
_CAL_OPS = 2_000_000


def bench_calibration(scale: float = 1.0) -> int:
    """Fixed pure-Python spin: measures the host interpreter's speed.

    Shown in the table for reference; normalisation itself uses a fresh
    spin adjacent to every sample (see :func:`run_bench`).
    """
    acc = 0
    for i in range(_CAL_OPS):
        acc += i & 7
    return _CAL_OPS


BENCHES: Dict[str, Callable[[float], int]] = {
    "calibration": bench_calibration,
    "event_churn": bench_event_churn,
    "timeout_storm": bench_timeout_storm,
    "storm_batch": bench_storm_batch,
    "ping_pong": bench_ping_pong,
    "coord_nbm_round": bench_coord_nbm_round,
    "indep_run": bench_indep_run,
    "scale_512": bench_scale_512,
    "scale_1024": bench_scale_1024,
}


# ---------------------------------------------------------------------------
# timing harness


def _calibration_sample() -> float:
    """One timed pure-Python spin (the per-sample normalisation yardstick)."""
    t0 = time.perf_counter()
    acc = 0
    for i in range(_CAL_OPS):
        acc += i & 7
    return time.perf_counter() - t0


def run_bench(
    fn: Callable[[float], int], scale: float, repeats: int
) -> Dict[str, float]:
    fn(min(scale, 0.1))  # warm up imports/caches outside the timed region
    samples: List[Tuple[float, int, float]] = []
    for _ in range(repeats):
        cal = _calibration_sample()
        t0 = time.perf_counter()
        ops = fn(scale)
        samples.append((time.perf_counter() - t0, ops, cal))
    median_s = statistics.median(s for s, _, _ in samples)
    # Median of per-sample bench/calibration ratios: load spikes hit a
    # sample and its adjacent spin alike, so the ratio cancels them.
    normalised = statistics.median(s / c for s, _, c in samples if c > 0)
    ops = samples[0][1]
    return {
        "median_s": round(median_s, 6),
        "normalised": round(normalised, 4),
        "ops": ops,
        "ops_per_s": round(ops / median_s, 1) if median_s > 0 else 0.0,
        "repeats": repeats,
    }


def run_all(scale: float, repeats: int, only: Optional[List[str]] = None) -> dict:
    results: Dict[str, Dict[str, float]] = {}
    names = only or list(BENCHES)
    if "calibration" not in names:
        names = ["calibration"] + names
    for name in names:
        results[name] = run_bench(BENCHES[name], scale, repeats)
        print(
            f"  {name:<16} median {results[name]['median_s']*1e3:9.2f} ms   "
            f"normalised {results[name]['normalised']:8.4f}   "
            f"{results[name]['ops_per_s']:>12,.0f} ops/s",
            file=sys.stderr,
        )
    return {
        "python": platform.python_version(),
        "scale": scale,
        "backend": os.environ.get(BACKEND_ENV, "").strip().lower()
        or DEFAULT_BACKEND,
        "benchmarks": results,
    }


# ---------------------------------------------------------------------------
# baseline bookkeeping + CI gate


def load_baseline(path: Path) -> dict:
    if path.exists():
        with open(path) as fh:
            return json.load(fh)
    return {"version": 1}


def update_baseline(path: Path, stage: str, run: dict) -> None:
    base = load_baseline(path)
    base["version"] = 1
    base[stage] = run
    if "before" in base and "after" in base:
        speedup = {}
        raw = {}
        for name, after_row in base["after"]["benchmarks"].items():
            before_row = base["before"]["benchmarks"].get(name)
            if not before_row:
                continue
            # Headline speedup from normalised scores (load-robust);
            # raw wall-clock ratio kept alongside for reference.
            if after_row.get("normalised"):
                speedup[name] = round(
                    before_row["normalised"] / after_row["normalised"], 2
                )
            if after_row["median_s"] > 0:
                raw[name] = round(
                    before_row["median_s"] / after_row["median_s"], 2
                )
        base["speedup"] = speedup
        base["speedup_raw_wallclock"] = raw
    with open(path, "w") as fh:
        json.dump(base, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"[bench] baseline {stage!r} written to {path}", file=sys.stderr)


def update_backend_baseline(path: Path, run: dict) -> None:
    """Record *run* as the committed baseline for its kernel backend."""
    base = load_baseline(path)
    base["version"] = 1
    base.setdefault("backends", {})[run["backend"]] = run
    with open(path, "w") as fh:
        json.dump(base, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(
        f"[bench] backend baseline {run['backend']!r} written to {path}",
        file=sys.stderr,
    )


def check_against_baseline(path: Path, run: dict, tolerance: float) -> int:
    """CI gate: compare this run's *normalised* medians against the
    committed baseline; fail on >(tolerance-1) regression.

    A run made under ``--backend X`` gates against the ``backends.X``
    section when one is committed (each backend defends its own
    numbers); otherwise the legacy ``after`` section is the yardstick.
    """
    base = load_baseline(path)
    section = base.get("backends", {}).get(run.get("backend"))
    if section is None:
        section = base.get("after", {})
    else:
        print(
            f"[bench] gating against backend baseline {run['backend']!r}",
            file=sys.stderr,
        )
    committed = section.get("benchmarks")
    if not committed:
        print(f"[bench] no baseline in {path}; nothing to gate", file=sys.stderr)
        return 1
    scale_matches = run.get("scale") == section.get("scale")
    failures = []
    for name, row in run["benchmarks"].items():
        if name == "calibration":
            continue
        if not scale_matches and name not in HEADLINE + (
            "ping_pong",
            "storm_batch",
        ):
            # the macro benches (full checkpointed runs) carry fixed
            # setup costs, so their per-op cost is only comparable at
            # the baseline's own scale
            continue
        ref = committed.get(name)
        if ref is None or not ref.get("normalised") or not ref.get("ops"):
            continue
        # Compare per-op normalised cost, so a --quick gate run (fewer
        # ops) is still meaningful against a full-scale baseline.
        per_op = row["normalised"] / row["ops"]
        ref_per_op = ref["normalised"] / ref["ops"]
        ratio = per_op / ref_per_op
        status = "ok" if ratio <= tolerance else "REGRESSED"
        print(
            f"  [{status:>9}] {name:<16} "
            f"normalised/op {per_op:.3e} vs baseline {ref_per_op:.3e}  "
            f"(x{ratio:.2f})",
            file=sys.stderr,
        )
        if ratio > tolerance:
            failures.append((name, ratio))
    if failures:
        print(
            "[bench] perf gate FAILED: "
            + ", ".join(f"{n} x{r:.2f}" for n, r in failures),
            file=sys.stderr,
        )
        return 1
    print("[bench] perf gate passed", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--quick", action="store_true", help="~10x fewer ops")
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument(
        "--backend",
        choices=list(available_backends()),
        default=None,
        help="run the whole suite under one kernel backend "
        f"(sets {BACKEND_ENV})",
    )
    parser.add_argument(
        "--only", nargs="*", default=None, choices=list(BENCHES), metavar="NAME"
    )
    parser.add_argument(
        "--update-baseline",
        choices=["before", "after"],
        default=None,
        help="merge this run into the committed baseline file",
    )
    parser.add_argument(
        "--update-backend-baseline",
        action="store_true",
        help="record this run as the committed baseline for its backend",
    )
    parser.add_argument("--baseline", metavar="PATH", default=str(BASELINE_PATH))
    parser.add_argument(
        "--check",
        metavar="PATH",
        default=None,
        help="compare against a committed baseline; exit 1 on regression",
    )
    parser.add_argument("--tolerance", type=float, default=TOLERANCE)
    args = parser.parse_args(argv)

    if args.backend:
        os.environ[BACKEND_ENV] = args.backend
    scale = 0.1 if args.quick else 1.0
    run = run_all(scale, args.repeats, only=args.only)

    if args.json:
        with open(args.json, "w") as fh:
            json.dump(run, fh, indent=2, sort_keys=True)
    if args.update_baseline:
        update_baseline(Path(args.baseline), args.update_baseline, run)
    if args.update_backend_baseline:
        update_backend_baseline(Path(args.baseline), run)
    if args.check:
        return check_against_baseline(Path(args.check), run, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
