"""Regenerate Table 1: overhead per checkpoint, 21 configurations x 5 schemes.

Paper shapes asserted here:
  * Coord_NB beats Indep in the majority of cases (paper: 15/21);
  * Indep_M beats Coord_NBM in the majority (paper: 12/15);
  * Coord_NBMS beats Indep_M in the majority;
  * the loosely-coupled apps (TSP, NQUEENS) are among Indep's wins.
"""

from repro.experiments import run_table1, table1_workloads


def test_table1(benchmark, bench_scale, bench_seed, save_result, grid_executor):
    result = benchmark.pedantic(
        lambda: run_table1(
            workloads=table1_workloads(bench_scale), seed=bench_seed, executor=grid_executor
        ),
        rounds=1,
        iterations=1,
    )
    table = result.render()
    summary = result.summary()
    print("\n" + table + "\n\n" + summary)
    save_result("table1", table, summary)

    shapes = result.shape_holds()
    assert shapes["nb_beats_indep_majority"], summary
    assert shapes["indep_m_beats_nbm_majority"], summary
    assert shapes["nbms_beats_indep_m_majority"], summary

    # the minority where Indep wins must include the loosely-coupled apps
    rows = {
        res.label: row
        for res, row in zip(result.data["results"], result.data["rows"])
    }
    for label in ("tsp-12", "nqueens-12"):
        assert rows[label]["indep"] <= rows[label]["coord_nb"] * 1.05, label
