"""Shared experiment-result container: tables, shapes, summary.

Every experiment used to carry its own result dataclass with bespoke
``render()`` / ``shape_holds()`` / ``summary()`` methods (and the runner
grew ``_T2View``/``_T3View`` adapters on top).  :class:`TableResult`
replaces all of that: an experiment's ``reduce`` step distils its raw
:class:`~repro.chklib.runtime.RunReport`s into one or more named
:class:`TableView`s (rendered tables), a dict of boolean shape checks
(the paper's qualitative claims) and optional summary lines.  Experiment-
specific structured data (per-row measurements, comparisons, raw reports)
rides along in ``data`` for tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from .tables import render_table

__all__ = ["TableView", "TableResult"]


@dataclass
class TableView:
    """One rendered table: headers, rows and an optional number format."""

    name: str
    title: str
    headers: Sequence[str]
    rows: Sequence[Sequence[Any]]
    fmt: Optional[Callable[[Any], str]] = None
    footer: str = ""

    def render(self) -> str:
        text = render_table(
            list(self.headers), list(self.rows), title=self.title, fmt=self.fmt
        )
        if self.footer:
            text += "\n" + self.footer
        return text


@dataclass
class TableResult:
    """An experiment's reduced result: views + shape checks + summary."""

    name: str
    views: List[TableView]
    shapes: Dict[str, bool] = field(default_factory=dict)
    summary_lines: List[str] = field(default_factory=list)
    #: experiment-specific structured payload (rows, reports, comparisons).
    data: Dict[str, Any] = field(default_factory=dict)

    def view(self, name: str) -> TableView:
        for v in self.views:
            if v.name == name:
                return v
        raise KeyError(
            f"{self.name!r} has no view {name!r} "
            f"(have {[v.name for v in self.views]})"
        )

    def render(self, view: Optional[str] = None) -> str:
        """The named view, or every view joined with blank lines."""
        if view is not None:
            return self.view(view).render()
        return "\n\n".join(v.render() for v in self.views)

    def summary(self) -> str:
        return "\n".join(self.summary_lines)

    def shape_holds(self) -> Dict[str, bool]:
        return dict(self.shapes)

    @property
    def all_shapes_hold(self) -> bool:
        return all(self.shapes.values())
