"""Overhead metrics — the quantities the paper's tables report."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from ..chklib.runtime import RunReport

__all__ = [
    "overhead_seconds",
    "overhead_percent",
    "per_checkpoint_overhead",
    "count_wins",
    "reduction_factor",
    "SchemeComparison",
]


def overhead_seconds(report: RunReport, baseline: RunReport) -> float:
    """Extra execution time caused by checkpointing."""
    return report.sim_time - baseline.sim_time


def overhead_percent(report: RunReport, baseline: RunReport) -> float:
    """Overhead as a percentage of the uncheckpointed run (Table 3)."""
    if baseline.sim_time <= 0:
        raise ValueError("baseline run has non-positive duration")
    return 100.0 * overhead_seconds(report, baseline) / baseline.sim_time


def per_checkpoint_overhead(
    report: RunReport, baseline: RunReport, rounds: int
) -> float:
    """Overhead per checkpoint in seconds (Table 1)."""
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    return overhead_seconds(report, baseline) / rounds


def count_wins(
    rows: Iterable[Mapping[str, float]], a: str, b: str, tol: float = 0.0
) -> Tuple[int, int, int]:
    """``(a_wins, b_wins, ties)`` comparing column *a* vs *b* per row
    (lower is better; differences within *tol* are ties)."""
    a_wins = b_wins = ties = 0
    for row in rows:
        da, db = row[a], row[b]
        if abs(da - db) <= tol:
            ties += 1
        elif da < db:
            a_wins += 1
        else:
            b_wins += 1
    return a_wins, b_wins, ties


def reduction_factor(
    rows: Iterable[Mapping[str, float]], frm: str, to: str
) -> Dict[str, float]:
    """Min/max/mean of ``row[frm] / row[to]`` — e.g. the paper's "reduction
    factor of 4 up to 17" from Coord_NB to Coord_NBMS."""
    factors = []
    for row in rows:
        if row[to] > 0:
            factors.append(row[frm] / row[to])
    if not factors:
        return {"min": float("nan"), "max": float("nan"), "mean": float("nan")}
    return {
        "min": min(factors),
        "max": max(factors),
        "mean": sum(factors) / len(factors),
    }


@dataclass
class SchemeComparison:
    """Winner statistics of one scheme pair over a table."""

    a: str
    b: str
    a_wins: int
    b_wins: int
    ties: int

    @classmethod
    def over(
        cls, rows: Iterable[Mapping[str, float]], a: str, b: str, tol: float = 0.0
    ) -> "SchemeComparison":
        wa, wb, t = count_wins(rows, a, b, tol=tol)
        return cls(a=a, b=b, a_wins=wa, b_wins=wb, ties=t)

    def __str__(self) -> str:
        return (
            f"{self.a} better in {self.a_wins}, {self.b} better in "
            f"{self.b_wins}, ties {self.ties}"
        )
