"""ASCII timelines of checkpoint activity.

Renders the tracer's ``ckpt.cut`` and ``storage.write`` spans as a Gantt
strip per rank — the quickest way to *see* the difference between
``Coord_NB`` (one aligned wall of blocked writes), ``Indep`` (a staircase
of autonomous stalls) and ``Coord_NBMS`` (one tiny blip per rank, writes
daisy-chained in the background).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.tracing import Span, Tracer

__all__ = ["render_timeline"]


def _collect(
    tracer: Tracer, name: str, rank_key: str
) -> Dict[int, List[Tuple[float, float]]]:
    spans: Dict[int, List[Tuple[float, float]]] = {}
    for span in tracer.spans_named(name):
        if span.end is None:
            continue
        rank = span.attrs.get(rank_key)
        if rank is None:
            continue
        spans.setdefault(int(rank), []).append((span.start, span.end))
    return spans


def render_timeline(
    tracer: Tracer,
    t_end: float,
    width: int = 72,
    t_start: float = 0.0,
    n_ranks: Optional[int] = None,
) -> str:
    """One strip per rank: ``#`` = app blocked in a cut, ``~`` = its data
    streaming to stable storage, ``.`` = computing."""
    if t_end <= t_start:
        raise ValueError("empty time window")
    cuts = _collect(tracer, "ckpt.cut", "rank")
    writes = _collect(tracer, "storage.write", "node")
    ranks = sorted(set(cuts) | set(writes))
    if n_ranks is not None:
        ranks = list(range(n_ranks))
    scale = width / (t_end - t_start)

    def paint(row: List[str], intervals: List[Tuple[float, float]], ch: str) -> None:
        for a, b in intervals:
            lo = max(0, int((a - t_start) * scale))
            hi = min(width - 1, int((b - t_start) * scale))
            for i in range(lo, hi + 1):
                row[i] = ch

    lines = [f"t = {t_start:.1f} .. {t_end:.1f} s   (# blocked, ~ writing)"]
    for rank in ranks:
        row = ["."] * width
        paint(row, writes.get(rank, []), "~")
        paint(row, cuts.get(rank, []), "#")
        lines.append(f"r{rank:<2} |{''.join(row)}|")
    return "\n".join(lines)
