"""Plain-text table rendering for experiment output.

Produces aligned ASCII tables in the spirit of the paper's Tables 1-3, so
benchmark runs print directly comparable artefacts.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

__all__ = ["render_table", "fmt_seconds", "fmt_percent"]


def fmt_seconds(value: float) -> str:
    """Seconds with sub-second precision where it matters."""
    if value != value:  # NaN
        return "-"
    if abs(value) >= 100:
        return f"{value:.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.2f}"


def fmt_percent(value: float) -> str:
    if value != value:
        return "-"
    return f"{value:.2f} %"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
    fmt: Optional[Callable[[Any], str]] = None,
) -> str:
    """Align *rows* under *headers*; numbers go through *fmt* (or str)."""

    def cell(value: Any) -> str:
        if isinstance(value, str):
            return value
        if value is None:
            return "-"
        if fmt is not None and isinstance(value, (int, float)):
            return fmt(value)
        return str(value)

    text_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, item in enumerate(row):
            widths[i] = max(widths[i], len(item))

    def line(items: Sequence[str]) -> str:
        out = []
        for i, item in enumerate(items):
            out.append(item.ljust(widths[i]) if i == 0 else item.rjust(widths[i]))
        return "  ".join(out).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        parts.append(line(row))
    return "\n".join(parts)
