"""Measurement analysis: overhead metrics and table rendering."""

from .metrics import (
    SchemeComparison,
    count_wins,
    overhead_percent,
    overhead_seconds,
    per_checkpoint_overhead,
    reduction_factor,
)
from .report import build_report
from .result import TableResult, TableView
from .tables import fmt_percent, fmt_seconds, render_table
from .timeline import render_timeline

__all__ = [
    "overhead_seconds",
    "overhead_percent",
    "per_checkpoint_overhead",
    "count_wins",
    "reduction_factor",
    "SchemeComparison",
    "render_table",
    "fmt_seconds",
    "fmt_percent",
    "render_timeline",
    "build_report",
    "TableResult",
    "TableView",
]
