"""Shared resources: capacity-limited servers and message stores.

Two primitives cover everything the machine model needs:

* :class:`Resource` — a FIFO server with integer capacity. Disk, host link
  and per-node DMA engines are ``Resource(capacity=1)``; contention falls
  out of the queue discipline.
* :class:`Store` — an unbounded (or bounded) FIFO buffer of items with
  blocking ``get``. Message channels and mailboxes are Stores.

Both are deliberately strict-FIFO: the paper's contention story (checkpoint
writes queueing at the stable-storage server) depends on arrival order, and
FIFO keeps the simulation deterministic and easy to reason about in tests.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque, Optional

from .errors import SimulationError
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Resource", "Request", "Store", "StoreGet"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot.

    Usable as a context manager so holders cannot forget to release::

        with resource.request() as req:
            yield req
            yield engine.timeout(service_time)
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.engine)
        self.resource = resource

    def cancel(self) -> None:
        """Withdraw the claim (queued or granted)."""
        self.resource._cancel(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.cancel()


class Resource:
    """A server with *capacity* identical slots and a FIFO wait queue."""

    def __init__(self, engine: "Engine", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.capacity = int(capacity)
        self.name = name
        self._users: list[Request] = []
        self._queue: Deque[Request] = deque()
        # occupancy bookkeeping for utilisation metrics
        self._busy_area = 0.0
        self._last_change = engine.now

    # -- claims ---------------------------------------------------------------

    def request(self) -> Request:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._grant(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Release a granted slot and wake the next waiter, if any."""
        if request not in self._users:
            raise SimulationError(
                f"release of a request that does not hold {self.name or 'resource'!r}"
            )
        self._account()  # account busy time *before* dropping the user
        self._users.remove(request)
        self._pump()

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            self.release(request)
            return
        try:
            self._queue.remove(request)
        except ValueError:
            pass  # never queued or already granted+released: no-op

    # -- internals --------------------------------------------------------------

    def _grant(self, req: Request) -> None:
        self._account()
        self._users.append(req)
        req.succeed(self)

    def _pump(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            self._grant(self._queue.popleft())

    def _account(self) -> None:
        now = self.engine.now
        self._busy_area += len(self._users) * (now - self._last_change)
        self._last_change = now

    # -- introspection -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of slots currently granted."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of waiting requests."""
        return len(self._queue)

    def utilisation(self, since: float = 0.0) -> float:
        """Mean busy slots per unit time over ``[since, now]``."""
        self._account()
        span = self.engine.now - since
        return self._busy_area / span if span > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Resource {self.name!r} {len(self._users)}/{self.capacity} "
            f"queued={len(self._queue)}>"
        )


class StoreGet(Event):
    """A pending ``get`` on a :class:`Store`; fires with the item."""

    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        super().__init__(store.engine)
        self.store = store

    def cancel(self) -> None:
        self.store._cancel_get(self)


class Store:
    """FIFO item buffer with blocking ``get`` and (optionally bounded) ``put``.

    ``put`` is immediate for unbounded stores (the common case for message
    channels: flow control is modelled at the link layer, not here).
    """

    def __init__(
        self,
        engine: "Engine",
        capacity: Optional[int] = None,
        name: str = "",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.engine = engine
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[StoreGet] = deque()

    def put(self, item: Any) -> None:
        """Append *item*; wakes the oldest waiting getter immediately."""
        if self.capacity is not None and len(self.items) >= self.capacity:
            raise SimulationError(
                f"store {self.name!r} overflow (capacity={self.capacity})"
            )
        self.items.append(item)
        self._pump()

    def get(self) -> StoreGet:
        """Take the oldest item; the returned event fires with it."""
        ev = StoreGet(self)
        self._getters.append(ev)
        self._pump()
        return ev

    def peek(self) -> Any:
        """The oldest item without removing it (raises if empty)."""
        if not self.items:
            raise SimulationError(f"peek on empty store {self.name!r}")
        return self.items[0]

    def _pump(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())

    def _cancel_get(self, ev: StoreGet) -> None:
        try:
            self._getters.remove(ev)
        except ValueError:
            pass

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Store {self.name!r} items={len(self.items)} "
            f"getters={len(self._getters)}>"
        )
