"""The discrete-event simulation engine.

:class:`Engine` owns the event heap and the simulation clock. It is the only
mutable global of a simulation run; machines, networks and checkpointing
schemes all hang off one engine instance, which makes runs fully
deterministic and lets tests construct tiny worlds cheaply.

Scheduling order: events fire in ``(time, priority, seq)`` order. ``seq`` is
a monotone counter, so same-time same-priority events fire in scheduling
order — this is what makes the whole simulation reproducible without any
real-time dependence.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import Deadlock, InvariantViolation, SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Engine", "URGENT", "NORMAL", "LOW"]

#: Scheduling priorities (lower fires first at equal times).
URGENT = 0
NORMAL = 1
LOW = 2


class Engine:
    """Discrete-event simulation engine with a deterministic event heap."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_processes = 0
        #: optional hook called as ``hook(time, event)`` before callbacks run.
        self.step_hook: Optional[Callable[[float, Event], None]] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the heap ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> Process:
        """Start a new simulation process driving *generator*."""
        return Process(self, generator, name=name)

    # -- run loop -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        time, _prio, _seq, event = heapq.heappop(self._heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event heap yielded a past event")
        self._now = time
        if self.step_hook is not None:
            self.step_hook(time, event)
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks is None:
            raise InvariantViolation(
                "event processed twice (callbacks already consumed)",
                event=repr(event),
                now=self._now,
            )
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            # An un-awaited event failed: surface the error instead of
            # silently swallowing it (a common source of "why did my
            # simulation hang" bugs).
            raise event.value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None``  — run until no events remain; raises
          :class:`Deadlock` if live processes are still blocked.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            if self._active_processes > 0:
                raise Deadlock(self._active_processes, self._now)
            return None

        if isinstance(until, Event):
            target = until
            while not target.processed:
                if not self._heap:
                    raise Deadlock(self._active_processes, self._now)
                self.step()
            if not target.ok:
                target.defused = True
                raise target.value
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Engine t={self._now:.6f} queued={len(self._heap)} "
            f"active={self._active_processes}>"
        )
