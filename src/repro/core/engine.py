"""The discrete-event simulation engine.

:class:`Engine` owns the event queue and the simulation clock. It is the only
mutable global of a simulation run; machines, networks and checkpointing
schemes all hang off one engine instance, which makes runs fully
deterministic and lets tests construct tiny worlds cheaply.

Scheduling order: events fire in ``(time, priority, seq)`` order. ``seq`` is
a monotone counter, so same-time same-priority events fire in scheduling
order — this is what makes the whole simulation reproducible without any
real-time dependence.

Kernel backends
---------------

The queue data structures and the dispatch loop are pluggable (see
:mod:`repro.core.kernel` for the selection rules and the contract).
``Engine(...)`` resolves to one of the registered backend subclasses:

* :class:`ReferenceEngine` — single ``(time, priority, seq)`` heap, the
  certification oracle;
* :class:`TwoTierEngine` — the default: heap plus a FIFO *fast lane* for
  delay-0 ``NORMAL`` events (the dominant traffic), with head-to-head
  arbitration so firing order is unchanged;
* :class:`repro.core.batched.BatchedEngine` — calendar buckets drained as
  whole same-timestamp cohorts, for large-N scale sweeps.

Two-tier queue
--------------

Protocol traffic is dominated by delay-0 ``NORMAL``-priority scheduling:
every ``Event.succeed``/``fail``, process bootstrap and condition trigger
fires "now". Those events go to a plain FIFO deque (the *fast lane*)
instead of the heap; only genuinely future (or non-default-priority)
events pay ``heappush``/``heappop``. The firing order is unchanged:

* fast-lane entries are appended as ``(now, seq, event)``; the clock never
  moves backwards and ``seq`` is monotone, so the lane is always sorted by
  the full ``(time, NORMAL, seq)`` key;
* the dispatch loop fires whichever of (heap head, lane head) has the
  smaller ``(time, priority, seq)`` key.  Sequence numbers are unique, so
  the comparison never ties.

``REPRO_KERNEL_HEAP_ONLY=1`` and ``Engine(fast_lane=...)`` are kept as
deprecated spellings of the backend selector: they map to the
``reference`` and ``twotier`` backends exactly as before.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional, Tuple

from .errors import Deadlock, InvariantViolation, NegativeDelay, SimulationError
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

__all__ = ["Engine", "ReferenceEngine", "TwoTierEngine", "URGENT", "NORMAL", "LOW"]

#: Scheduling priorities (lower fires first at equal times).
URGENT = 0
NORMAL = 1
LOW = 2

#: recycled ``engine.delay()`` events kept per engine (bounds pool memory).
_DELAY_POOL_MAX = 128


class _Delay(Event):
    """A pooled, pre-triggered delay event (see :meth:`Engine.delay`).

    Single-use from the caller's perspective: yield it immediately and do
    not keep a reference — the engine recycles the object after its
    callbacks have run, so composing it into ``AnyOf``/``AllOf`` or
    reading ``value`` later is undefined.
    """

    __slots__ = ()

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = None
        self.defused = False


class Engine:
    """Discrete-event simulation engine with a deterministic event queue.

    ``Engine(...)`` is a factory: construction resolves a kernel backend
    (``backend=`` argument, ``REPRO_KERNEL_BACKEND``, or the deprecated
    ``fast_lane``/``REPRO_KERNEL_HEAP_ONLY`` spellings) and returns an
    instance of the matching subclass. The base class carries the full
    two-tier implementation; backends override the queue surface
    (``_push``/``schedule``/``delay``/``peek``/``queued``/``step``/
    ``_dispatch``) — see :mod:`repro.core.kernel` for the contract.
    """

    #: backend name this class is registered under (subclasses override).
    BACKEND_NAME = "twotier"
    #: whether delay-0 NORMAL events use the FIFO fast lane.
    _HAS_FAST_LANE = True

    __slots__ = (
        "_now",
        "_heap",
        "_lane",
        "_seq",
        "_active_processes",
        "_fast_lane",
        "_delay_pool",
        "step_hook",
    )

    def __new__(
        cls,
        start_time: float = 0.0,
        fast_lane: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> "Engine":
        if cls is Engine:
            from .kernel import backend_class, resolve_backend

            cls = backend_class(resolve_backend(backend, fast_lane))
        return object.__new__(cls)

    def __init__(
        self,
        start_time: float = 0.0,
        fast_lane: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        if backend is not None or fast_lane is not None:
            # Selection already happened in __new__; here we only reject a
            # direct subclass construction that contradicts its own backend.
            from .kernel import resolve_backend

            want = resolve_backend(backend, fast_lane)
            if want != self.BACKEND_NAME:
                raise ValueError(
                    f"{type(self).__name__} is the {self.BACKEND_NAME!r} "
                    f"backend; construction requested {want!r}"
                )
        self._now = float(start_time)
        self._heap: Optional[List[Tuple[float, int, int, Event]]] = []
        #: delay-0 NORMAL-priority FIFO (see module docstring).
        self._lane: Deque[Tuple[float, int, Event]] = deque()
        self._seq = 0
        self._active_processes = 0
        self._fast_lane = self._HAS_FAST_LANE
        self._delay_pool: list[_Delay] = []
        #: optional hook called as ``hook(time, event)`` before callbacks run.
        self.step_hook: Optional[Callable[[float, Event], None]] = None

    # -- backend ----------------------------------------------------------

    @property
    def backend(self) -> str:
        """Name of the kernel backend this engine runs on."""
        return self.BACKEND_NAME

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._lane:
            t = self._lane[0][0]
            if self._heap and self._heap[0][0] < t:
                return self._heap[0][0]
            return t
        return self._heap[0][0] if self._heap else float("inf")

    @property
    def queued(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        return len(self._heap) + len(self._lane)

    # -- scheduling -------------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the queue ``delay`` seconds from now."""
        if delay < 0:
            raise NegativeDelay(delay)
        self._seq += 1
        if delay == 0.0 and priority == NORMAL and self._fast_lane:
            self._lane.append((self._now, self._seq, event))
        else:
            heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def _push(self, time: float, priority: int, seq: int, event: Event) -> None:
        """Cold-path enqueue of an entry whose full key is already assigned.

        ``events.py`` inlines the hot scheduling paths against ``_lane`` and
        ``_heap`` directly; backends that publish no ``_heap`` (it is
        ``None``) receive everything else through this hook instead.
        """
        heappush(self._heap, (time, priority, seq, event))

    # -- event factories ----------------------------------------------------

    def event(self) -> Event:
        """A fresh pending event to be triggered manually."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def timeout_batch(self, delays: Iterable[float], value: Any = None) -> List[Timeout]:
        """One timeout per element of *delays*, scheduled in iteration order.

        Semantically identical to ``[engine.timeout(d, value) for d in
        delays]`` (sequence numbers are assigned in iteration order, so the
        firing order is byte-identical); backends may vectorise the insert.

        All-or-nothing: delays are validated up front, so a negative entry
        schedules *no* events and consumes no sequence numbers — the same
        contract the vectorised backends give for free.
        """
        ds = [float(d) for d in delays]
        if ds:
            lo = min(ds)
            if lo < 0:
                raise NegativeDelay(lo)
        return [Timeout(self, d, value) for d in ds]

    def delay(self, delay: float, value: Any = None) -> Event:
        """A lightweight pooled timeout for the ``yield engine.delay(t)``
        idiom on hot paths (wire transfers, service times, backoff naps).

        Unlike :meth:`timeout` the returned event is *recycled* once its
        callbacks have run: yield it immediately, never store it, never
        compose it into ``AnyOf``/``AllOf`` (use :meth:`timeout` there).
        """
        pool = self._delay_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._ok = True
            ev._value = value
            ev.defused = False
        else:
            ev = _Delay(self)
            ev._value = value
        if delay < 0:
            raise NegativeDelay(delay)
        self._seq = seq = self._seq + 1
        if delay == 0.0 and self._fast_lane:
            self._lane.append((self._now, seq, ev))
        else:
            heappush(self._heap, (self._now + delay, 1, seq, ev))
        return ev

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def process(
        self,
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> Process:
        """Start a new simulation process driving *generator*."""
        return Process(self, generator, name=name)

    # -- run loop -----------------------------------------------------------

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        heap = self._heap
        lane = self._lane
        if lane:
            entry = lane[0]
            # heap entries are (time, priority, seq, event); seq is unique,
            # so the 4-tuple < 3-tuple comparison never reaches the event.
            if heap and heap[0] < (entry[0], 1, entry[1]):
                time, _prio, _seq, event = heappop(heap)
            else:
                del lane[0]
                time, event = entry[0], entry[2]
        else:
            time, _prio, _seq, event = heappop(heap)
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded a past event")
        self._now = time
        if self.step_hook is not None:
            self.step_hook(time, event)
        self._fire(event)

    def _fire(self, event: Event) -> None:
        """Run a popped event's callbacks (shared cold-path helper)."""
        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        if callbacks is None:
            raise InvariantViolation(
                "event processed twice (callbacks already consumed)",
                event=repr(event),
                now=self._now,
            )
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            # An un-awaited event failed: surface the error instead of
            # silently swallowing it (a common source of "why did my
            # simulation hang" bugs).
            raise event.value
        if (
            event.__class__ is _Delay
            and self.step_hook is None  # hooks may retain event references
            and len(self._delay_pool) < _DELAY_POOL_MAX
        ):
            self._delay_pool.append(event)

    def _dispatch(self, target: Optional[Event]) -> bool:
        """The fused dispatch loop: pop-and-fire with everything hot in
        locals. Returns True once *target* is processed, False when the
        queue drains first (``target=None`` always drains to False)."""
        heap = self._heap
        lane = self._lane
        popleft = lane.popleft
        pool = self._delay_pool
        pop = heappop
        delay_cls = _Delay
        now = self._now
        while True:
            if target is not None and target.callbacks is None:
                return True
            if lane:
                if heap:
                    entry = lane[0]
                    if heap[0] < (entry[0], 1, entry[1]):
                        item = pop(heap)
                        time, event = item[0], item[3]
                    else:
                        popleft()
                        time, event = entry[0], entry[2]
                else:
                    entry = popleft()
                    time, event = entry[0], entry[2]
            elif heap:
                item = pop(heap)
                time, event = item[0], item[3]
            else:
                return False
            if time != now:
                self._now = now = time
            hook = self.step_hook
            if hook is not None:
                hook(time, event)
            callbacks = event.callbacks
            event.callbacks = None  # mark processed
            if callbacks is None:
                raise InvariantViolation(
                    "event processed twice (callbacks already consumed)",
                    event=repr(event),
                    now=time,
                )
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event.value
            if (
                event.__class__ is delay_cls
                and hook is None  # hooks may retain event references
                and len(pool) < _DELAY_POOL_MAX
            ):
                pool.append(event)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        * ``until=None``  — run until no events remain; raises
          :class:`Deadlock` if live processes are still blocked.
        * ``until=<float>`` — run until the clock reaches that time.
        * ``until=<Event>`` — run until that event has been processed and
          return its value (raising if it failed).
        """
        if until is None:
            self._dispatch(None)
            if self._active_processes > 0:
                raise Deadlock(self._active_processes, self._now)
            return None

        if isinstance(until, Event):
            target = until
            if not self._dispatch(target):
                raise Deadlock(self._active_processes, self._now)
            if not target.ok:
                target.defused = True
                raise target.value
            return target.value

        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} t={self._now:.6f} queued={self.queued} "
            f"active={self._active_processes}>"
        )


class TwoTierEngine(Engine):
    """The default backend: fast lane + heap (the base implementation)."""

    BACKEND_NAME = "twotier"
    _HAS_FAST_LANE = True

    __slots__ = ()


class ReferenceEngine(Engine):
    """The heap-only oracle backend: every event through one heap.

    With ``_fast_lane`` off, the inlined scheduling paths in ``events.py``
    and the base dispatch loop never touch the lane, so this is exactly
    the legacy single-heap kernel kept for determinism certification.
    """

    BACKEND_NAME = "reference"
    _HAS_FAST_LANE = False

    __slots__ = ()
