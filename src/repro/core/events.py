"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event/process co-routine design (as in SimPy):

* an :class:`Event` is a one-shot occurrence with a value (or an exception);
  callbacks run when the engine pops it off the event heap;
* a process (:class:`repro.core.process.Process`) is a generator that yields
  events; the engine resumes it with the event's value when the event fires.

Events are deliberately tiny: the hot loop of a simulation run touches these
objects millions of times, so attribute access is kept flat and ``__slots__``
is used throughout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from heapq import heappush

from .errors import EventAlreadyTriggered, NegativeDelay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "PENDING"]


class _PendingType:
    """Sentinel for "event has no value yet"."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _PendingType()


class Event:
    """A one-shot occurrence in simulated time.

    Lifecycle::

        pending --succeed/fail--> triggered --engine pops--> processed

    ``callbacks`` is a list while the event is pending or triggered and
    ``None`` once processed; this doubles as the "already processed" flag,
    mirroring the convention used by SimPy so that process resumption can
    cheaply detect late subscriptions.
    """

    __slots__ = ("engine", "callbacks", "_value", "_ok", "defused")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: failed events whose exception was never retrieved re-raise at the
        #: end of the run unless defused (a process waiting on them defuses).
        self.defused = False

    # -- state ------------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once the engine has run the callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise AttributeError(f"{self!r} has not been triggered yet")
        return self._value

    # -- triggering -------------------------------------------------------

    def succeed(self, value: Any = None, priority: int = 1) -> "Event":
        """Trigger the event successfully and schedule its callbacks *now*.

        The delay-0 scheduling is inlined (this is the single hottest
        call in the kernel): default-priority triggers append to the
        engine's FIFO fast lane, others go through the heap.
        """
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        if priority == 1 and engine._fast_lane:
            engine._lane.append((engine._now, seq, self))
        else:
            heap = engine._heap
            if heap is not None:
                heappush(heap, (engine._now, priority, seq, self))
            else:  # backends without a heap (e.g. batched) take the hook
                engine._push(engine._now, priority, seq, self)
        return self

    def fail(self, exception: BaseException, priority: int = 1) -> "Event":
        """Trigger the event with an exception; waiters see it raised."""
        if self._value is not PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        engine = self.engine
        engine._seq = seq = engine._seq + 1
        if priority == 1 and engine._fast_lane:
            engine._lane.append((engine._now, seq, self))
        else:
            heap = engine._heap
            if heap is not None:
                heappush(heap, (engine._now, priority, seq, self))
            else:  # backends without a heap (e.g. batched) take the hook
                engine._push(engine._now, priority, seq, self)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror another event's outcome into this one (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # -- composition ------------------------------------------------------

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.engine, [self, other])

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.engine, [self, other])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else ("triggered" if self.triggered else "pending")
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Born triggered; negative delays raise
    :class:`repro.core.errors.NegativeDelay` (the single validation point
    shared with :meth:`Engine.schedule`).
    """

    __slots__ = ("delay",)

    def __init__(self, engine: "Engine", delay: float, value: Any = None) -> None:
        # Event.__init__ and the scheduling are inlined — Timeouts are
        # allocated on the hot path of every wire transfer and nap.
        self.engine = engine
        self.callbacks = []
        self._ok = True
        self._value = value
        self.defused = False
        self.delay = delay = float(delay)
        if delay < 0:
            raise NegativeDelay(delay)
        engine._seq = seq = engine._seq + 1
        if delay == 0.0 and engine._fast_lane:
            engine._lane.append((engine._now, seq, self))
        else:
            heap = engine._heap
            if heap is not None:
                heappush(heap, (engine._now + delay, 1, seq, self))
            else:  # backends without a heap (e.g. batched) take the hook
                engine._push(engine._now + delay, 1, seq, self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Timeout delay={self.delay!r}>"


class _Condition(Event):
    """Base for AnyOf/AllOf: fires when enough member events have fired."""

    __slots__ = ("events", "_count")

    def __init__(self, engine: "Engine", events: Iterable[Event]) -> None:
        super().__init__(engine)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        if any(ev.engine is not engine for ev in self.events):
            raise ValueError("condition mixes events from different engines")
        if not self.events:
            # Vacuous truth: an empty condition is immediately satisfied.
            self.succeed(self._collect())
            return
        for ev in self.events:
            if ev.callbacks is None:  # already processed
                self._check(ev)
            else:
                ev.callbacks.append(self._check)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        # Only *processed* events count: a Timeout is born triggered but has
        # not "happened" until the engine pops it off the heap.
        return {ev: ev._value for ev in self.events if ev.callbacks is None}

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires when the first member event fires."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires when every member event has fired."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)
