"""Generator-driven simulation processes.

A :class:`Process` wraps a Python generator. The generator yields
:class:`~repro.core.events.Event` objects; when a yielded event fires the
engine resumes the generator with the event's value (or throws the event's
exception into it). The process itself *is* an event that triggers when the
generator returns, so processes can wait on each other (``yield other``)
and be composed with ``AnyOf``/``AllOf``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .errors import Interrupt, SimulationError, StopProcess
from .events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Process"]


class Process(Event):
    """A running co-routine inside the simulation.

    Attributes
    ----------
    name:
        Diagnostic label (shows up in deadlock and crash reports).
    target:
        The event the process is currently waiting on (``None`` if it is
        being resumed right now or has finished).
    """

    __slots__ = (
        "name",
        "_generator",
        "target",
        "_alive",
        "_pending_interrupt",
        "_resume_cb",
    )

    def __init__(
        self,
        engine: "Engine",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process needs a generator, got {generator!r}")
        super().__init__(engine)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.target: Optional[Event] = None
        self._alive = True
        self._pending_interrupt: Optional[Interrupt] = None
        #: the one bound-method object used for every callback
        #: subscription — binding ``self._resume`` allocates, and it
        #: happens once per yield, so cache it for the process's lifetime
        #: (this also makes ``callbacks.remove`` in :meth:`interrupt`
        #: match by identity).
        self._resume_cb = self._resume
        engine._active_processes += 1
        # Bootstrap: resume once at the current time. The pooled delay(0)
        # event takes the engine's delay-0 fast lane and is recycled after
        # the bootstrap fires — no Event allocation per process start.
        engine.delay(0.0).callbacks.append(self._resume_cb)  # type: ignore[union-attr]

    # -- public API ---------------------------------------------------------

    @property
    def is_alive(self) -> bool:
        """True while the generator has not returned or raised."""
        return self._alive

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield.

        Interrupting a finished process is a silent no-op (the usual race:
        a canceller fires in the same timestep the victim finishes).
        """
        if not self._alive:
            return
        if self.target is None:
            # Not parked on an event: either the bootstrap resume has not
            # run yet (process created this very timestep) or we are being
            # interrupted from within a callback while mid-resume. Defer:
            # the interrupt is delivered at the next resume.
            self._pending_interrupt = Interrupt(cause)
            return
        # Detach from the current target; it may still fire but must not
        # resume us (we are resumed by the interrupt instead).
        interrupt_event = Event(self.engine)
        interrupt_event.callbacks.append(self._resume_cb)  # type: ignore[union-attr]
        interrupt_event.fail(Interrupt(cause), priority=0)
        interrupt_event.defused = True
        target = self.target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:  # pragma: no cover - already detached
                pass
        self.target = None

    # -- engine plumbing ------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Advance the generator with *event*'s outcome.

        This is the kernel's innermost loop (one iteration per ``yield`` of
        every process): the yielded object is classified by reading its
        ``callbacks`` slot directly — ``AttributeError`` (not an event) is
        the cold path, handled out of line in :meth:`_bad_yield`.
        """
        self.target = None
        if self._pending_interrupt is not None:
            event = _InterruptSurrogate(self._pending_interrupt)
            self._pending_interrupt = None
        gen = self._generator
        while True:
            try:
                if event._ok:
                    next_event = gen.send(event._value)
                else:
                    event.defused = True
                    next_event = gen.throw(event._value)
            except StopIteration as exc:
                self._finish(True, exc.value)
                return
            except StopProcess as exc:
                self._finish(True, exc.value)
                return
            except BaseException as exc:
                self._finish(False, exc)
                return

            try:
                callbacks = next_event.callbacks
            except AttributeError:
                if not self._bad_yield(next_event):
                    return
                continue  # generator handled the error; resume it as before

            if callbacks is not None:
                # Pending or triggered-but-unprocessed: subscribe and stop.
                callbacks.append(self._resume_cb)
                self.target = next_event
                return
            # Already processed: loop and feed its value straight back in.
            event = next_event

    def _bad_yield(self, obj: Any) -> bool:
        """Throw the yielded-a-non-event error into the generator (cold
        path). True if the generator survived and the loop should go on."""
        exc = SimulationError(
            f"process {self.name!r} yielded {obj!r}; processes "
            f"must yield Event instances"
        )
        try:
            self._generator.throw(exc)
        except BaseException as raised:
            self._finish(False, raised)
            return False
        return True

    def _finish(self, ok: bool, value: Any) -> None:
        self._alive = False
        self._generator = None  # type: ignore[assignment] # break ref cycle
        self.engine._active_processes -= 1
        if ok:
            self.succeed(value)
        else:
            if isinstance(value, BaseException):
                self.fail(value)
            else:  # pragma: no cover - defensive
                self.fail(SimulationError(repr(value)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self._alive else "done"
        return f"<Process {self.name!r} {state}>"


class _InterruptSurrogate:
    """Minimal failed-event stand-in used to deliver deferred interrupts."""

    __slots__ = ("_ok", "_value", "defused")

    def __init__(self, exc: Interrupt) -> None:
        self._ok = False
        self._value = exc
        self.defused = False
