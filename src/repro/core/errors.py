"""Exception hierarchy for the simulation kernel.

Every error raised by :mod:`repro.core` derives from :class:`SimulationError`
so callers can catch kernel problems without masking application bugs.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "SimulationError",
    "Deadlock",
    "Interrupt",
    "NegativeDelay",
    "StopProcess",
    "StorageFault",
    "ResumeError",
    "EventAlreadyTriggered",
    "InvariantViolation",
    "VerificationError",
    "ensure_delay",
]


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class NegativeDelay(SimulationError, ValueError):
    """A scheduling delay was negative (events cannot fire in the past).

    Subclasses :class:`ValueError` for backwards compatibility: callers
    have always been able to catch a bad ``timeout``/``schedule`` delay
    as a ``ValueError``. This class is the single source of truth for the
    error's type and message; the hot scheduling paths
    (:meth:`Engine.schedule`, :meth:`Engine.delay`, ``Timeout.__init__``)
    inline the ``delay < 0`` comparison and raise it directly, while cold
    paths may use :func:`ensure_delay`.
    """

    def __init__(self, delay: Any) -> None:
        super().__init__(f"cannot schedule into the past (delay={delay!r})")
        self.delay = delay


def ensure_delay(delay: float) -> float:
    """Validate a scheduling delay, raising :class:`NegativeDelay`."""
    if delay < 0:
        raise NegativeDelay(delay)
    return delay


class Deadlock(SimulationError):
    """Raised by :meth:`repro.core.engine.Engine.run` when processes remain
    but no future event exists (every live process waits forever)."""

    def __init__(self, waiting: int, now: float) -> None:
        super().__init__(
            f"deadlock at t={now:.6f}: {waiting} process(es) blocked with an "
            f"empty event queue"
        )
        self.waiting = waiting
        self.now = now


class Interrupt(SimulationError):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process receives this exception at its current ``yield``
    and may handle it (e.g. a checkpointer thread told to abort a write).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(f"interrupted: {cause!r}")
        self.cause = cause


class StopProcess(SimulationError):
    """Raised inside a process generator to terminate it early with a value.

    Equivalent to ``return value`` but usable from helper sub-generators
    without threading the return through every level.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__("process stopped")
        self.value = value


class StorageFault(SimulationError):
    """A stable-storage operation failed transiently (injected fault).

    Raised out of :meth:`repro.machine.storage.StableStorage.write` /
    ``read`` when the fault injector decides the operation fails. Callers
    (schemes, the recovery path) are expected to retry with backoff and to
    degrade cleanly when retries are exhausted.
    """

    def __init__(self, op: str, tag: str = "", partial_bytes: float = 0.0) -> None:
        super().__init__(
            f"storage {op} fault"
            + (f" [{tag}]" if tag else "")
            + f" after {partial_bytes:.0f}B"
        )
        self.op = op
        self.tag = tag
        self.partial_bytes = partial_bytes


class ResumeError(SimulationError):
    """A durable recovery line could not be loaded or applied.

    Raised when restarting from a serialised line fails: the file is
    missing, torn, or corrupted (framing/CRC validation), the payload does
    not unpickle, or the line belongs to a different run configuration
    (rank count, seed, scheme or application mismatch). Also raised when a
    run is asked to halt in a configuration that cannot produce a durable
    line (no checkpointing scheme installed)."""


class EventAlreadyTriggered(SimulationError):
    """An event was succeeded or failed twice."""


class InvariantViolation(SimulationError):
    """An internal correctness invariant did not hold at runtime.

    Used instead of bare ``assert`` for runtime validation in simulation
    code: unlike ``assert``, these checks survive ``python -O`` and carry a
    structured description of what was violated. The sim-hygiene lint
    (:mod:`repro.verify.lint`) forbids bare non-``isinstance`` asserts in
    :mod:`repro` precisely so correctness checks end up here.
    """

    def __init__(self, what: str, **context: Any) -> None:
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(context.items()))
        super().__init__(what + (f" [{detail}]" if detail else ""))
        self.what = what
        self.context = context


class VerificationError(SimulationError):
    """The protocol verification subsystem found a violated invariant.

    Raised by the trace invariant engine (when post-run verification is
    enabled) and by the model-checker CLI when exploration surfaces a
    counterexample. Carries the individual violations for reporting.
    """

    def __init__(self, summary: str, violations: Any = ()) -> None:
        super().__init__(summary)
        self.violations = list(violations)
