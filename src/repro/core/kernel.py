"""Kernel backend selection: the pluggable event-queue contract.

The simulation kernel is split from the :class:`~repro.core.engine.Engine`
API behind a small family of *backends*. A backend is an Engine subclass
that owns the event-queue data structures and the dispatch loop; the
event/process co-routine machinery (``events.py``/``process.py``) is
shared. Three backends ship in-tree:

``reference``
    The canonical single-heap kernel: every event goes through one
    ``(time, priority, seq)`` heap, popped one at a time. Slowest,
    simplest, and the certification oracle — any other backend must
    produce byte-identical firing order (and therefore byte-identical
    tables, traces and recovery lines) against it.

``twotier``
    The default production kernel (PR 4): delay-0 ``NORMAL`` events on a
    FIFO fast lane, future/priority events on the heap, head-to-head
    ``(time, priority, seq)`` arbitration.

``batched``
    The accelerated kernel (see :mod:`repro.core.batched`): an
    array-backed calendar of exact-timestamp buckets drained as whole
    cohorts per dispatch step, with a numpy lane for batching
    homogeneous timeout storms into grouped inserts.

Selection
---------

* ``Engine(backend="batched")`` — explicit, wins over everything;
* ``REPRO_KERNEL_BACKEND={reference,twotier,batched}`` — per-run env
  override, inherited by experiment worker processes;
* ``Engine(fast_lane=False)`` / ``REPRO_KERNEL_HEAP_ONLY=1`` — the
  deprecated PR 4 spellings, kept as shims: they map to ``reference``
  and ``twotier`` exactly as before;
* default: ``twotier``.

The backend contract (what a new backend must implement)
--------------------------------------------------------

A backend subclasses ``Engine`` and overrides the queue surface:

* ``_push(time, priority, seq, event)`` — enqueue a triggered event at
  an absolute time (the cold path used by ``events.py`` when the
  engine publishes no ``_heap``);
* ``schedule``/``timeout``/``delay`` — the event factories (may reuse
  the base implementations when the layout allows);
* ``step``/``_dispatch``/``peek``/``queued`` — the dispatch loop.

Hard rules, enforced by the parity suite (``tests/core/test_backends.py``)
and the static analyzer's backend-purity pass:

1. events fire in exactly ``(time, priority, seq)`` order — ``seq`` is
   the engine-wide monotone counter and must tick once per scheduled
   event, so traces and RNG draws replay identically;
2. a backend module may not import ``repro.chklib``/``repro.experiments``
   (layering: protocols sit above the kernel) and may not touch
   wall-clock time or the global RNG (no hidden nondeterminism);
3. ``step_hook`` observes every fired event with its firing time, and
   event-object recycling (the ``_Delay`` pool) is disabled while a
   hook is installed.

Certifying a new backend = adding it to ``BACKENDS`` and getting the
parity suite plus ``benchmarks/bench_kernel.py --check`` green for it.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple, Type

__all__ = [
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "KERNEL_BACKENDS",
    "available_backends",
    "backend_class",
    "resolve_backend",
]

#: environment variable naming the backend for new engines.
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: the PR 4 heap-only switch, honoured as a deprecation shim.
_HEAP_ONLY_ENV = "REPRO_KERNEL_HEAP_ONLY"

DEFAULT_BACKEND = "twotier"

#: the in-tree backends (name -> "module:ClassName", imported lazily to
#: keep engine.py free of a circular import).
KERNEL_BACKENDS: Dict[str, Tuple[str, str]] = {
    "reference": ("repro.core.engine", "ReferenceEngine"),
    "twotier": ("repro.core.engine", "TwoTierEngine"),
    "batched": ("repro.core.batched", "BatchedEngine"),
}


def available_backends() -> Tuple[str, ...]:
    """The selectable backend names, reference first."""
    return tuple(KERNEL_BACKENDS)


def resolve_backend(
    backend: Optional[str] = None, fast_lane: Optional[bool] = None
) -> str:
    """The backend name an ``Engine(...)`` call selects.

    Precedence: explicit ``backend`` arg > deprecated ``fast_lane`` arg
    > ``REPRO_KERNEL_BACKEND`` > deprecated ``REPRO_KERNEL_HEAP_ONLY``
    > the ``twotier`` default.
    """
    if backend is not None and fast_lane is not None:
        raise ValueError(
            "pass backend=... or the deprecated fast_lane=..., not both"
        )
    if backend is not None:
        name = str(backend).strip().lower()
        if name not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {backend!r}; "
                f"available: {', '.join(KERNEL_BACKENDS)}"
            )
        return name
    if fast_lane is not None:
        return "twotier" if fast_lane else "reference"
    name = os.environ.get(BACKEND_ENV, "").strip().lower()
    if name:
        if name not in KERNEL_BACKENDS:
            raise ValueError(
                f"{BACKEND_ENV}={name!r} names no kernel backend; "
                f"available: {', '.join(KERNEL_BACKENDS)}"
            )
        return name
    if os.environ.get(_HEAP_ONLY_ENV, "") in ("1", "true"):
        return "reference"
    return DEFAULT_BACKEND


def backend_class(name: str) -> Type:
    """The Engine subclass registered under *name* (lazy import)."""
    try:
        module_name, class_name = KERNEL_BACKENDS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel backend {name!r}; "
            f"available: {', '.join(KERNEL_BACKENDS)}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), class_name)
