"""Lightweight metric and trace collection.

A :class:`Tracer` is attached to a run and accumulates:

* **counters** — monotone named totals (bytes written, protocol messages…);
* **timelines** — (time, value) samples for plotting/sweeps;
* **spans** — named intervals (checkpoint N on node R took [t0, t1]);
* **events** — structured protocol events (vote/commit/abort/token-pass,
  cuts, writes, message sends/deliveries, recoveries, GC) consumed by the
  trace invariant engine (:mod:`repro.verify.trace_check`).

Recording is cheap (dict/list appends) and can be disabled wholesale:
:class:`NullTracer` implements the same interface with true no-op method
bodies, so the hot path of big sweeps pays only the call. Events and spans
are additionally indexed per kind/name at record time, so the verify
engine's :meth:`Tracer.events_named`/:meth:`Tracer.spans_named` lookups
are O(matches) instead of O(total recorded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = [
    "EVENT_KINDS",
    "Tracer",
    "NullTracer",
    "make_tracer",
    "Span",
    "TraceEvent",
]

#: The closed vocabulary of trace-event kinds. Every ``tracer.event(...)``
#: emission site must use a name from this set, and every invariant
#: checker's subscription must resolve against it — the static analyzer's
#: trace-conformance pass enforces both directions, so a typo'd name can
#: no longer make an invariant pass vacuously.
EVENT_KINDS = frozenset(
    {
        # protocol rounds (coordinated 2PC + markers, independent cuts)
        "proto.request",
        "proto.cut",
        "proto.ack",
        "proto.commit",
        "proto.commit_apply",
        "proto.commit_on_recovery",
        "proto.abort_report",
        "proto.abort",
        "proto.abort_apply",
        "proto.token_pass",
        "proto.write_begin",
        "proto.write_end",
        "proto.local_commit",
        # communication-induced checkpointing (index rule)
        "proto.cic.forced",
        "proto.cic.promote",
        # sender-based pessimistic message logging
        "proto.mlog.logged",
        # channel traffic
        "msg.send",
        "msg.deliver",
        # failure / recovery machinery
        "recover.crash",
        "recover.quarantine",
        "recover.line",
        "recover.replay",
        # checkpoint garbage collection
        "gc.run",
        "gc.discard",
        # checkpoint-interval policies
        "policy.decide",
        "policy.adapt",
        # durable halt/resume
        "resume.halt",
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event at a point in simulated time.

    ``kind`` is a dotted name (``proto.commit``, ``msg.deliver``,
    ``recover.line``, ``gc.discard``…); ``fields`` hold the event's
    payload (round number, rank, channel, sequence number, …). The full
    vocabulary is documented in :mod:`repro.verify.invariants`.
    """

    time: float
    kind: str
    fields: Dict[str, object]

    def __getitem__(self, key: str) -> object:
        return self.fields[key]

    def get(self, key: str, default: object = None) -> object:
        return self.fields.get(key, default)


@dataclass
class Span:
    """A named interval of simulated time with free-form attributes."""

    name: str
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start


class Tracer:
    """Accumulates counters, timelines and spans for one simulation run."""

    def __init__(self, engine: "Engine", enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.timelines: Dict[str, List[Tuple[float, float]]] = {}
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        # per-kind/name indexes kept in sync by event()/open_span(), so
        # events_named()/spans_named() never scan the full record.
        self._events_by_kind: Dict[str, List[TraceEvent]] = {}
        self._spans_by_name: Dict[str, List[Span]] = {}

    # -- counters ------------------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        if not self.enabled:
            return
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def get(self, counter: str, default: float = 0.0) -> float:
        return self.counters.get(counter, default)

    # -- events ----------------------------------------------------------------

    def event(self, kind: str, **fields: object) -> None:
        """Record a structured protocol event at the current time."""
        if not self.enabled:
            return
        ev = TraceEvent(self.engine.now, kind, fields)
        self.events.append(ev)
        bucket = self._events_by_kind.get(kind)
        if bucket is None:
            self._events_by_kind[kind] = [ev]
        else:
            bucket.append(ev)

    def events_named(self, kind: str) -> List[TraceEvent]:
        """All recorded events of *kind*, oldest first (a fresh list)."""
        return list(self._events_by_kind.get(kind, ()))

    # -- timelines -------------------------------------------------------------

    def sample(self, timeline: str, value: float) -> None:
        """Record ``(now, value)`` on a named timeline."""
        if not self.enabled:
            return
        self.timelines.setdefault(timeline, []).append((self.engine.now, value))

    # -- spans -----------------------------------------------------------------

    def open_span(self, name: str, **attrs: object) -> Span:
        """Open an interval starting now; close with :meth:`close_span`.

        ``attrs`` is already a fresh dict owned by this call, so it is
        stored as-is — no defensive copy (and none at all when disabled).
        """
        span = Span(name=name, start=self.engine.now, attrs=attrs)
        if self.enabled:
            self.spans.append(span)
            bucket = self._spans_by_name.get(name)
            if bucket is None:
                self._spans_by_name[name] = [span]
            else:
                bucket.append(span)
        return span

    def close_span(self, span: Span, **attrs: object) -> Span:
        span.end = self.engine.now
        if attrs:
            span.attrs.update(attrs)
        return span

    def spans_named(self, name: str) -> List[Span]:
        """All recorded spans named *name*, oldest first (a fresh list)."""
        return list(self._spans_by_name.get(name, ()))

    # -- durable-line support --------------------------------------------------

    def export_state(self) -> dict:
        """Serialisable snapshot of counters, events and timelines.

        Spans are intentionally excluded: a halted run can hold open spans
        whose closing side lives in interrupted coroutines, so they cannot
        be resumed faithfully — and no report or invariant depends on spans
        surviving a restart.
        """
        if not self.enabled:
            return {}
        return {
            "counters": dict(self.counters),
            "events": [(ev.time, ev.kind, dict(ev.fields)) for ev in self.events],
            "timelines": {k: list(v) for k, v in self.timelines.items()},
        }

    def restore_state(self, state: dict) -> None:
        """Load a snapshot from :meth:`export_state` (no-op when disabled)."""
        if not self.enabled or not state:
            return
        self.counters = dict(state.get("counters", {}))
        self.events = [
            TraceEvent(t, kind, dict(fields))
            for t, kind, fields in state.get("events", ())
        ]
        self._events_by_kind = {}
        for ev in self.events:
            self._events_by_kind.setdefault(ev.kind, []).append(ev)
        self.timelines = {
            k: [tuple(s) for s in v] for k, v in state.get("timelines", {}).items()
        }

    def total_span_time(self, name: str) -> float:
        """Sum of closed-span durations for *name* (open spans skipped)."""
        return sum(
            s.end - s.start
            for s in self._spans_by_name.get(name, ())
            if s.end is not None
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tracer counters={len(self.counters)} "
            f"timelines={len(self.timelines)} spans={len(self.spans)} "
            f"events={len(self.events)}>"
        )


class NullTracer(Tracer):
    """Zero-overhead tracer: every recording method body is a true no-op.

    Selected by :func:`make_tracer` (and
    :class:`~repro.chklib.runtime.CheckpointRuntime` with ``trace=False``)
    so untraced sweeps pay nothing per protocol message beyond the call
    itself — no ``TraceEvent`` construction, no appends, no ``Span``
    allocation. Read accessors still answer (with empties/zeros), so all
    reporting code works unchanged.
    """

    def __init__(self, engine: "Engine") -> None:
        super().__init__(engine, enabled=False)

    def add(self, counter: str, amount: float = 1.0) -> None:
        pass

    def event(self, kind: str, **fields: object) -> None:
        pass

    def sample(self, timeline: str, value: float) -> None:
        pass

    def open_span(self, name: str, **attrs: object) -> Span:
        return _NULL_SPAN

    def close_span(self, span: Span, **attrs: object) -> Span:
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<NullTracer>"


#: the shared dummy span handed out by a disabled tracer; closed at birth
#: so accidental ``duration`` reads stay well-defined (always 0.0).
_NULL_SPAN = Span(name="<null>", start=0.0, end=0.0)


def make_tracer(engine: "Engine", enabled: bool = True) -> Tracer:
    """The run's tracer: a recording :class:`Tracer`, or the no-op
    :class:`NullTracer` when tracing is off."""
    return Tracer(engine) if enabled else NullTracer(engine)
