"""Lightweight metric and trace collection.

A :class:`Tracer` is attached to a run and accumulates:

* **counters** — monotone named totals (bytes written, protocol messages…);
* **timelines** — (time, value) samples for plotting/sweeps;
* **spans** — named intervals (checkpoint N on node R took [t0, t1]);
* **events** — structured protocol events (vote/commit/abort/token-pass,
  cuts, writes, message sends/deliveries, recoveries, GC) consumed by the
  trace invariant engine (:mod:`repro.verify.trace_check`).

Recording is cheap (dict/list appends) and can be disabled wholesale, so the
hot path of big sweeps pays almost nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import Engine

__all__ = ["Tracer", "Span", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured protocol event at a point in simulated time.

    ``kind`` is a dotted name (``proto.commit``, ``msg.deliver``,
    ``recover.line``, ``gc.discard``…); ``fields`` hold the event's
    payload (round number, rank, channel, sequence number, …). The full
    vocabulary is documented in :mod:`repro.verify.invariants`.
    """

    time: float
    kind: str
    fields: Dict[str, object]

    def __getitem__(self, key: str) -> object:
        return self.fields[key]

    def get(self, key: str, default: object = None) -> object:
        return self.fields.get(key, default)


@dataclass
class Span:
    """A named interval of simulated time with free-form attributes."""

    name: str
    start: float
    end: Optional[float] = None
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end - self.start


class Tracer:
    """Accumulates counters, timelines and spans for one simulation run."""

    def __init__(self, engine: "Engine", enabled: bool = True) -> None:
        self.engine = engine
        self.enabled = enabled
        self.counters: Dict[str, float] = {}
        self.timelines: Dict[str, List[Tuple[float, float]]] = {}
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []

    # -- counters ------------------------------------------------------------

    def add(self, counter: str, amount: float = 1.0) -> None:
        """Increment a named counter."""
        if not self.enabled:
            return
        self.counters[counter] = self.counters.get(counter, 0.0) + amount

    def get(self, counter: str, default: float = 0.0) -> float:
        return self.counters.get(counter, default)

    # -- events ----------------------------------------------------------------

    def event(self, kind: str, **fields: object) -> None:
        """Record a structured protocol event at the current time."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(self.engine.now, kind, fields))

    def events_named(self, kind: str) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    # -- timelines -------------------------------------------------------------

    def sample(self, timeline: str, value: float) -> None:
        """Record ``(now, value)`` on a named timeline."""
        if not self.enabled:
            return
        self.timelines.setdefault(timeline, []).append((self.engine.now, value))

    # -- spans -----------------------------------------------------------------

    def open_span(self, name: str, **attrs: object) -> Span:
        """Open an interval starting now; close with :meth:`close_span`."""
        span = Span(name=name, start=self.engine.now, attrs=dict(attrs))
        if self.enabled:
            self.spans.append(span)
        return span

    def close_span(self, span: Span, **attrs: object) -> Span:
        span.end = self.engine.now
        span.attrs.update(attrs)
        return span

    def spans_named(self, name: str) -> List[Span]:
        return [s for s in self.spans if s.name == name]

    def total_span_time(self, name: str) -> float:
        """Sum of closed-span durations for *name*."""
        return sum(s.duration for s in self.spans_named(name) if s.end is not None)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Tracer counters={len(self.counters)} "
            f"timelines={len(self.timelines)} spans={len(self.spans)} "
            f"events={len(self.events)}>"
        )
