"""Deterministic named random streams.

Every stochastic element of a run (application data, checkpoint timer skew,
fault times) draws from its own named substream derived from one master
seed, so adding a new consumer never perturbs existing ones and any single
component can be re-seeded in isolation for tests.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "derive_seed"]


def derive_seed(master_seed: int, name: str) -> int:
    """A stable 64-bit seed for substream *name* under *master_seed*."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Factory and cache of named :class:`numpy.random.Generator` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """The generator for *name* (created on first use, then cached)."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """A brand-new generator for *name*, bypassing (and resetting) the cache.

        Used when re-executing an application after rollback: the replayed
        process must see the same stream from the start.
        """
        gen = np.random.default_rng(derive_seed(self.master_seed, name))
        self._streams[name] = gen
        return gen

    # -- durable-line support --------------------------------------------------

    def export_state(self) -> Dict[str, dict]:
        """Exact positions of every materialised stream (for durable lines)."""
        return {
            name: gen.bit_generator.state for name, gen in self._streams.items()
        }

    def restore_state(self, states: Dict[str, dict]) -> None:
        """Re-position streams exactly where :meth:`export_state` left them.

        Streams are (re)created on demand, so a restored run's first draw
        from any stream continues the original sequence bit-for-bit.
        """
        for name, state in states.items():
            self.get(name).bit_generator.state = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RngStreams seed={self.master_seed} streams={len(self._streams)}>"
