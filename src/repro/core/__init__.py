"""Discrete-event simulation kernel (events, processes, resources, tracing).

This is a self-contained mini event-driven simulator in the style of SimPy,
specialised for deterministic reproduction runs: strict ``(time, priority,
sequence)`` ordering, FIFO resources and named random substreams.
"""

from .engine import LOW, NORMAL, URGENT, Engine, ReferenceEngine, TwoTierEngine
from .errors import (
    Deadlock,
    EventAlreadyTriggered,
    Interrupt,
    NegativeDelay,
    SimulationError,
    StopProcess,
)
from .events import AllOf, AnyOf, Event, Timeout
from .kernel import (
    BACKEND_ENV,
    DEFAULT_BACKEND,
    available_backends,
    backend_class,
    resolve_backend,
)
from .process import Process
from .resources import Request, Resource, Store, StoreGet
from .rng import RngStreams, derive_seed
from .tracing import NullTracer, Span, Tracer, make_tracer

__all__ = [
    "Engine",
    "ReferenceEngine",
    "TwoTierEngine",
    "BACKEND_ENV",
    "DEFAULT_BACKEND",
    "available_backends",
    "backend_class",
    "resolve_backend",
    "URGENT",
    "NORMAL",
    "LOW",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Resource",
    "Request",
    "Store",
    "StoreGet",
    "RngStreams",
    "derive_seed",
    "Tracer",
    "NullTracer",
    "make_tracer",
    "Span",
    "SimulationError",
    "Deadlock",
    "Interrupt",
    "NegativeDelay",
    "StopProcess",
    "EventAlreadyTriggered",
]
