"""The batched kernel backend: a calendar of timestamp cohorts.

:class:`BatchedEngine` replaces the heap of the two-tier engine with a
*calendar*: a dict of exact-fire-time buckets plus a small heap of the
distinct bucket times. Scale workloads (the NBS/NBMS write-slot and
staggering storms measured by ``benchmarks/bench_kernel.py scale_512``)
pile hundreds of timeouts onto the *same* timestamp, so the calendar
turns O(log n) ``heappush``/``heappop`` tuple comparisons per event into
an O(1) dict append on insert and a straight list walk — a *cohort
drain* — on dispatch. A bucket holding a single entry is stored as the
bare ``(priority, seq, event)`` tuple (no list allocation, no cohort
bookkeeping): sparse workloads with all-distinct fire times degrade to
a float-keyed heap instead of paying the cohort machinery. A numpy lane
(:meth:`BatchedEngine.timeout_batch`) vectorises homogeneous timeout
storms into one grouped insert.

Why the firing order is byte-identical
--------------------------------------

Events fire in ``(time, priority, seq)`` order; the proof obligations:

* **clean cohorts** (the common case): a bucket that only ever received
  ``NORMAL``-priority entries is sorted by construction — ``seq`` is
  monotone in push order, so appends arrive in increasing ``seq``. While
  a clean cohort at time ``T`` drains, any fast-lane append happens at
  clock ``T`` and therefore carries a *larger* ``seq`` than every frozen
  cohort entry; any lane entry that existed before the cohort started
  has time ``> T`` (else the lane would have drained first). Hence the
  whole clean cohort fires back-to-back with no per-event arbitration.
* **singleton buckets**: fire alone whenever their time is strictly
  ahead of the lane head (time dominates the key for any priority); at
  equal times they become a dirty cohort of one and are arbitrated.
* **dirty cohorts**: a bucket that received ``URGENT``/``LOW`` entries
  (tracked in ``_dirtyt``) is sorted by ``(priority, seq)`` once at
  drain start, then arbitrated per-event against the lane head on the
  full ``(time, priority, seq)`` key — exactly the two-tier rule.
* **preemption**: any ``_push`` at ``time <= now`` (an urgent trigger, a
  same-timestamp denormal timeout) sets ``_preempt``; the dispatch loop
  folds the new entries into the remaining cohort, re-sorts, and falls
  back to per-event arbitration. Order reduces to the two-tier rule
  again, so correctness never depends on the fast path's assumptions.
* the clock only advances (pushes into the past are impossible — negative
  delays raise at creation), and bucket times are unique in the times
  heap (a time is pushed only when its bucket is created), so there are
  no tie-breaks the ``(time, priority, seq)`` key does not already
  decide.

The backend-parity suite (``tests/core/test_backends.py``) enforces this
equivalence on random workloads, every scheme, and crash/resume runs.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from .engine import _DELAY_POOL_MAX, NORMAL, Engine, _Delay
from .errors import InvariantViolation, NegativeDelay, SimulationError
from .events import Event, Timeout

__all__ = ["BatchedEngine"]

#: a bucket: one bare entry, or a list of entries in push order.
_Entry = Tuple[int, int, Event]
_Bucket = Union[_Entry, List[_Entry]]

#: when one grouped insert brings this many new distinct times, rebuilding
#: the times heap beats pushing them one by one.
_HEAPIFY_CUTOVER = 8


class BatchedEngine(Engine):
    """Calendar/cohort kernel backend (see module docstring)."""

    BACKEND_NAME = "batched"
    _HAS_FAST_LANE = True

    __slots__ = (
        "_buckets",
        "_times",
        "_dirtyt",
        "_cohort",
        "_ci",
        "_ctime",
        "_cdirty",
        "_preempt",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        fast_lane: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        super().__init__(start_time, fast_lane, backend)
        #: publishing no heap routes events.py's cold paths through _push.
        self._heap = None
        #: exact fire time -> bucket (bare entry or list in push order).
        self._buckets: dict[float, _Bucket] = {}
        #: min-heap of the distinct bucket times (no duplicates).
        self._times: List[float] = []
        #: bucket times that received a non-NORMAL priority entry.
        self._dirtyt: Set[float] = set()
        #: the cohort currently draining: entries, cursor, time, mode.
        self._cohort: List[_Entry] = []
        self._ci = 0
        self._ctime = self._now
        self._cdirty = False
        #: set by _push on any same-or-earlier-time insert mid-drain.
        self._preempt = False

    # -- scheduling -------------------------------------------------------

    def _push(self, time: float, priority: int, seq: int, event: Event) -> None:
        buckets = self._buckets
        b = buckets.get(time)
        if b is None:
            buckets[time] = (priority, seq, event)
            heappush(self._times, time)
        elif type(b) is list:
            b.append((priority, seq, event))
        else:
            buckets[time] = [b, (priority, seq, event)]
        if priority != NORMAL:
            self._dirtyt.add(time)
        if time <= self._now:
            self._preempt = True

    def schedule(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Put a triggered event on the calendar ``delay`` seconds from now."""
        if delay < 0:
            raise NegativeDelay(delay)
        self._seq += 1
        if delay == 0.0 and priority == NORMAL:
            self._lane.append((self._now, self._seq, event))
        else:
            self._push(self._now + delay, priority, self._seq, event)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now.

        The calendar insert is inlined (timeouts are the hot allocation of
        every wire transfer and nap, and a ``_push`` method call per event
        is measurable at scale).
        """
        ev = Timeout.__new__(Timeout)
        ev.engine = self
        ev.callbacks = []
        ev._ok = True
        ev._value = value
        ev.defused = False
        ev.delay = delay = float(delay)
        if delay < 0:
            raise NegativeDelay(delay)
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._lane.append((self._now, seq, ev))
        else:
            time = self._now + delay
            buckets = self._buckets
            b = buckets.get(time)
            if b is None:
                buckets[time] = (1, seq, ev)
                heappush(self._times, time)
            elif type(b) is list:
                b.append((1, seq, ev))
            else:
                buckets[time] = [b, (1, seq, ev)]
            if time <= self._now:  # denormal-tiny delay collapsed onto "now"
                self._preempt = True
        return ev

    def delay(self, delay: float, value: Any = None) -> Event:
        """Pooled single-use timeout (see :meth:`Engine.delay`)."""
        pool = self._delay_pool
        if pool:
            ev = pool.pop()
            ev.callbacks = []
            ev._ok = True
            ev._value = value
            ev.defused = False
        else:
            ev = _Delay(self)
            ev._value = value
        if delay < 0:
            raise NegativeDelay(delay)
        self._seq = seq = self._seq + 1
        if delay == 0.0:
            self._lane.append((self._now, seq, ev))
        else:
            time = self._now + delay
            buckets = self._buckets
            b = buckets.get(time)
            if b is None:
                buckets[time] = (1, seq, ev)
                heappush(self._times, time)
            elif type(b) is list:
                b.append((1, seq, ev))
            else:
                buckets[time] = [b, (1, seq, ev)]
            if time <= self._now:
                self._preempt = True
        return ev

    def timeout_batch(self, delays: Iterable[float], value: Any = None) -> List[Timeout]:
        """Vectorised storm insert: one grouped calendar write per call.

        Assigns sequence numbers in iteration order, so the firing order
        is byte-identical to the equivalent ``timeout()`` loop.
        """
        arr = np.asarray(delays, dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("timeout_batch expects a 1-D vector of delays")
        if arr.size == 0:
            return []
        lo = float(arr.min())
        if lo < 0:
            raise NegativeDelay(lo)
        now = self._now
        times = (now + arr).tolist()
        dlist = arr.tolist()
        seq = self._seq
        lane = self._lane
        buckets = self._buckets
        new_times: List[float] = []
        events: List[Timeout] = []
        append = events.append
        preempt = False
        for t, d in zip(times, dlist):
            ev = Timeout.__new__(Timeout)
            ev.engine = self
            ev.callbacks = []
            ev._ok = True
            ev._value = value
            ev.defused = False
            ev.delay = d
            seq += 1
            if d == 0.0:
                lane.append((now, seq, ev))
            else:
                b = buckets.get(t)
                if b is None:
                    buckets[t] = (1, seq, ev)
                    new_times.append(t)
                elif type(b) is list:
                    b.append((1, seq, ev))
                else:
                    buckets[t] = [b, (1, seq, ev)]
                if t <= now:  # denormal-tiny delay collapsed onto "now"
                    preempt = True
            append(ev)
        self._seq = seq
        if preempt:
            self._preempt = True
        if new_times:
            times_heap = self._times
            if (
                len(new_times) > _HEAPIFY_CUTOVER
                and len(new_times) * 4 > len(times_heap)
            ):
                times_heap.extend(new_times)
                heapify(times_heap)
            else:
                for t in new_times:
                    heappush(times_heap, t)
        return events

    # -- clock / introspection --------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        t = self._ctime if self._ci < len(self._cohort) else float("inf")
        if self._lane:
            lt = self._lane[0][0]
            if lt < t:
                t = lt
        if self._times and self._times[0] < t:
            t = self._times[0]
        return t

    @property
    def queued(self) -> int:
        """Number of scheduled-but-unprocessed events."""
        pending = len(self._lane) + (len(self._cohort) - self._ci)
        for b in self._buckets.values():
            pending += len(b) if type(b) is list else 1
        return pending

    # -- cohort machinery -------------------------------------------------

    def _start_cohort(self, time: float, force_dirty: bool) -> None:
        """Begin draining the bucket at *time* (already popped off _times)."""
        bucket = self._buckets.pop(time)
        if type(bucket) is not list:
            bucket = [bucket]
        dirtyt = self._dirtyt
        if time in dirtyt:
            dirtyt.discard(time)
            bucket.sort(key=_entry_key)
            self._cdirty = True
        else:
            # clean buckets are (1, seq)-sorted by construction
            self._cdirty = force_dirty
        self._cohort = bucket
        self._ci = 0
        self._ctime = time
        self._preempt = False

    def _repair_cohort(self) -> None:
        """Fold same-time pushes (the _preempt flag) into the live cohort
        and drop to per-event arbitration — the universally-correct path."""
        self._preempt = False
        time = self._ctime
        rest = self._cohort[self._ci :]
        b = self._buckets.pop(time, None)
        if b is not None:
            times = self._times
            if times and times[0] == time:
                heappop(times)
            else:  # pragma: no cover - defensive (push is always >= now)
                times.remove(time)
                heapify(times)
            self._dirtyt.discard(time)
            if type(b) is list:
                rest.extend(b)
            else:
                rest.append(b)
        rest.sort(key=_entry_key)
        self._cohort = rest
        self._ci = 0
        self._cdirty = True

    # -- run loop ---------------------------------------------------------

    def _pop_next(self) -> Tuple[float, Event]:
        """Select the next event in (time, priority, seq) order (step path)."""
        lane = self._lane
        times = self._times
        while True:
            cohort = self._cohort
            ci = self._ci
            if ci < len(cohort):
                if self._preempt:
                    self._repair_cohort()
                    continue
                time = self._ctime
                if self._cdirty:
                    p, s, event = cohort[ci]
                    if lane:
                        entry = lane[0]
                        if (entry[0], 1, entry[1]) < (time, p, s):
                            del lane[0]
                            return entry[0], entry[2]
                    self._ci = ci + 1
                    return time, event
                entry = cohort[ci]
                self._ci = ci + 1
                return time, entry[2]
            if lane:
                lt = lane[0][0]
                if times:
                    bt = times[0]
                    if bt <= lt:
                        self._start_cohort(heappop(times), bt == lt)
                        continue
                entry = lane[0]
                del lane[0]
                return entry[0], entry[2]
            if times:
                self._start_cohort(heappop(times), False)
                continue
            raise IndexError("pop from an empty event queue")

    def step(self) -> None:
        """Process exactly one event (advance the clock to it)."""
        time, event = self._pop_next()
        if time < self._now:  # pragma: no cover - defensive
            raise SimulationError("event queue yielded a past event")
        self._now = time
        if self.step_hook is not None:
            self.step_hook(time, event)
        self._fire(event)

    def _dispatch(self, target: Optional[Event]) -> bool:
        """Cohort-draining dispatch loop (see base class for the contract)."""
        lane = self._lane
        popleft = lane.popleft
        times = self._times
        buckets = self._buckets
        dirtyt = self._dirtyt
        pool = self._delay_pool
        pop = heappop
        delay_cls = _Delay
        list_cls = list
        now = self._now
        cohort = self._cohort
        ci = self._ci
        ctime = self._ctime
        cdirty = self._cdirty
        try:
            while True:
                if target is not None and target.callbacks is None:
                    return True
                if ci < len(cohort):
                    if self._preempt:
                        self._ci = ci
                        self._repair_cohort()
                        cohort = self._cohort
                        ci = 0
                        cdirty = True
                        continue
                    if cdirty:
                        item = cohort[ci]
                        if lane:
                            entry = lane[0]
                            if (entry[0], 1, entry[1]) < (ctime, item[0], item[1]):
                                popleft()
                                time, event = entry[0], entry[2]
                            else:
                                ci += 1
                                time, event = ctime, item[2]
                        else:
                            ci += 1
                            time, event = ctime, item[2]
                    else:
                        # clean cohort: fires back-to-back (module docstring)
                        time, event = ctime, cohort[ci][2]
                        ci += 1
                elif lane:
                    entry = lane[0]
                    lt = entry[0]
                    if not times or times[0] > lt:
                        popleft()
                        time, event = lt, entry[2]
                    else:
                        bt = pop(times)
                        bucket = buckets.pop(bt)
                        if type(bucket) is not list_cls:
                            if bt < lt:
                                # singleton strictly ahead of the lane head:
                                # fires alone, no cohort bookkeeping
                                if dirtyt:
                                    dirtyt.discard(bt)
                                time, event = bt, bucket[2]
                            else:
                                # same-time: dirty cohort of one, arbitrated
                                if dirtyt:
                                    dirtyt.discard(bt)
                                cohort = [bucket]
                                ci = 0
                                ctime = bt
                                cdirty = True
                                self._cohort = cohort
                                self._ci = 0
                                self._ctime = bt
                                self._cdirty = True
                                self._preempt = False
                                continue
                        else:
                            if bt in dirtyt:
                                dirtyt.discard(bt)
                                bucket.sort(key=_entry_key)
                                cdirty = True
                            else:
                                # a bucket filled at the current clock can
                                # interleave with same-time lane entries
                                cdirty = bt == lt
                            cohort = bucket
                            ci = 0
                            ctime = bt
                            self._cohort = cohort
                            self._ci = 0
                            self._ctime = bt
                            self._cdirty = cdirty
                            self._preempt = False
                            continue
                elif times:
                    bt = pop(times)
                    bucket = buckets.pop(bt)
                    if type(bucket) is not list_cls:
                        # singleton, empty lane: fire directly (storm shape)
                        if dirtyt:
                            dirtyt.discard(bt)
                        time, event = bt, bucket[2]
                    else:
                        if bt in dirtyt:
                            dirtyt.discard(bt)
                            bucket.sort(key=_entry_key)
                            cdirty = True
                        else:
                            cdirty = False
                        cohort = bucket
                        ci = 0
                        ctime = bt
                        self._cohort = cohort
                        self._ci = 0
                        self._ctime = bt
                        self._cdirty = cdirty
                        self._preempt = False
                        continue
                else:
                    return False
                if time != now:
                    self._now = now = time
                hook = self.step_hook
                if hook is not None:
                    hook(time, event)
                callbacks = event.callbacks
                event.callbacks = None  # mark processed
                if callbacks is None:
                    raise InvariantViolation(
                        "event processed twice (callbacks already consumed)",
                        event=repr(event),
                        now=time,
                    )
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event.value
                if (
                    event.__class__ is delay_cls
                    and hook is None  # hooks may retain event references
                    and len(pool) < _DELAY_POOL_MAX
                ):
                    pool.append(event)
        finally:
            # persist cohort progress so a raising callback (or run(until=ev))
            # leaves the queue resumable mid-cohort
            self._cohort = cohort
            self._ci = ci


def _entry_key(entry: _Entry) -> Tuple[int, int]:
    """Sort key for cohort entries — never compares the event objects."""
    return (entry[0], entry[1])
