"""The stable-storage plane: S parallel servers + optional burst buffers.

The paper's machine funnels every checkpoint into one host file system;
modern machines spread the fan-in over S parallel storage servers, often
fronted by a fast rack-local burst-buffer tier. The plane generalises the
single :class:`~repro.machine.storage.StableStorage` to that shape while
keeping S=1 / no-buffers *bit-identical* to the old single server — the
same object graph, the same event order, the same floats.

Routing (all through the :class:`~repro.machine.topology.Topology`):

* ``server_for(rank)`` — the shard server a rank's checkpoints live on
  (contiguous block sharding, ``r * S // N``);
* ``write_target(rank)`` — where a capture write physically lands: the
  rank's rack burst buffer when the tier is enabled, else the shard
  server. Restores read back from the same place;
* ``drain(...)`` — the background stream that empties a burst buffer onto
  the rank's shard server (spawned by the scheme after a buffered write,
  generation-scoped so a crash kills in-flight drains on both the
  restart and the in-process paths identically).

Accounting: the plane presents the same counter surface as one
StableStorage (``bytes_written``, ``write_faults``, ...) by summing the
tiers — drains move already-counted bytes, so they keep their own
``drained_bytes`` counter instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ..core.events import Event
from .params import MachineParams, StorageParams
from .storage import StableStorage
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.tracing import Tracer
    from ..fault.injection import StorageFaultInjector
    from .node import Node

__all__ = ["StoragePlane"]


class StoragePlane:
    """S shard servers plus an optional per-rack burst-buffer tier.

    Capture manifest (see :mod:`repro.chklib.resume`): the drain counters
    are plane-level state; the per-tier counters travel through
    :meth:`export_state`, which the runtime's component capture prefers
    over the field manifest.
    """

    RESUME_FIELDS = ("drained_bytes", "drain_ops")
    VOLATILE_FIELDS = (
        "engine",
        "machine_params",
        "topology",
        "tracer",
        "servers",
        "burst_buffers",
        "fault_injector",
        "n_servers",
        # derived stream counter; rebuilt at 0 with fresh (empty) servers
        "_active_streams",
    )

    def __init__(
        self,
        engine: "Engine",
        params: MachineParams,
        topology: Topology,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.machine_params = params
        self.topology = topology
        self.tracer = tracer
        self.n_servers = params.plane.servers
        self.servers: List[StableStorage] = [
            StableStorage(
                engine,
                params.storage,
                tracer=tracer,
                # keep the legacy server name when the plane is the old
                # single server; shard names otherwise.
                name=(
                    "stable-storage"
                    if self.n_servers == 1
                    else f"stable-storage:{i}"
                ),
            )
            for i in range(self.n_servers)
        ]
        self.burst_buffers: List[StableStorage] = []
        if params.plane.burst_buffers:
            bb = StorageParams(
                op_latency=params.plane.bb_op_latency,
                bandwidth=params.plane.bb_bandwidth,
                thrash=params.plane.bb_thrash,
                # rack-local: application traffic on the interconnect
                # towards the host does not slow the buffer down.
                app_traffic_penalty=0.0,
            )
            self.burst_buffers = [
                StableStorage(engine, bb, tracer=tracer, name=f"burst-buffer:{r}")
                for r in range(topology.n_racks)
            ]
        #: fault oracle (mirrors StableStorage's surface); installed on the
        #: shard servers — the durable tier the paper's faults model. The
        #: burst-buffer tier is flash behind the same blast radius as the
        #: node and stays reliable, like the two-level local disks.
        self.fault_injector: Optional["StorageFaultInjector"] = None
        self.drained_bytes = 0.0
        self.drain_ops = 0
        # Exact incremental mirror of sum(srv.active_streams): pressure is
        # read once per message transfer, which dwarfs job-set changes.
        self._active_streams = 0
        for srv in self.servers:
            srv.server.on_jobs_delta = self._on_stream_delta

    # -- routing ------------------------------------------------------------

    @property
    def has_burst_buffers(self) -> bool:
        return bool(self.burst_buffers)

    def server_index(self, rank: int) -> int:
        """Which shard serves *rank* (contiguous blocks via the topology)."""
        return self.topology.server_of(rank, self.n_servers)

    def server_for(self, rank: int) -> StableStorage:
        """The shard server holding *rank*'s durable checkpoints."""
        return self.servers[self.server_index(rank)]

    def write_target(self, rank: int) -> StableStorage:
        """Where *rank*'s capture writes land (and restores read from):
        the rack's burst buffer when the tier is enabled, else the shard
        server."""
        if self.burst_buffers:
            return self.burst_buffers[self.topology.rack_of(rank)]
        return self.servers[self.server_index(rank)]

    # -- the single-server surface (legacy compatibility) --------------------

    @property
    def params(self) -> StorageParams:
        """The shard servers' storage parameters (the legacy
        ``StableStorage.params`` surface; all shards share them)."""
        return self.machine_params.storage

    @property
    def server(self):
        """The sole server's fluid engine — only meaningful for the flat
        single-server plane (the paper's machine)."""
        if self.n_servers != 1:
            raise ValueError(
                f"plane has {self.n_servers} servers; address them via "
                "server_for(rank)/servers[i]"
            )
        return self.servers[0].server

    def set_fault_injector(self, injector: Optional["StorageFaultInjector"]) -> None:
        """Install (or clear) the fault oracle on every shard server."""
        self.fault_injector = injector
        for srv in self.servers:
            srv.set_fault_injector(injector)

    def apply_rate_factor(self, factor: float) -> None:
        """Application-traffic slowdown on the shared path — every shard
        crosses the interconnect, so all of them feel it; burst buffers
        are rack-local and do not."""
        for srv in self.servers:
            srv.server.set_rate_factor(factor)

    def _on_stream_delta(self, delta: int) -> None:
        self._active_streams += delta

    @property
    def active_streams(self) -> int:
        """Concurrent transfers crossing the interconnect towards the
        storage plane (network-pressure input). Burst-buffer traffic is
        rack-local and exerts no pressure; drains do, via the servers.

        Maintained incrementally via the servers' ``on_jobs_delta`` hook;
        always equal to ``sum(srv.active_streams for srv in self.servers)``.
        """
        return self._active_streams

    def write(
        self, node: "Node", nbytes: float, tag: str = "", background: bool = False
    ) -> Generator[Event, Any, None]:
        """Stream a capture write from *node* to its write target. Returns
        the target's generator directly — zero extra frames, so the S=1
        plane is event-for-event the old single server."""
        return self.write_target(node.id).write(node, nbytes, tag, background)

    def read(
        self, node: "Node", nbytes: float, tag: str = ""
    ) -> Generator[Event, Any, None]:
        """Stream a restore read back from *node*'s write target."""
        return self.write_target(node.id).read(node, nbytes, tag)

    def single_stream_time(self, nbytes: float) -> float:
        """Uncontended service time of one write at the write target
        (planning helper; uniform across ranks by construction)."""
        target = self.write_target(0)
        return target.single_stream_time(nbytes)

    # -- burst-buffer drain ---------------------------------------------------

    def drain(
        self, node: "Node", nbytes: float, tag: str = ""
    ) -> Generator[Event, Any, None]:
        """Stream *nbytes* from *node*'s rack buffer to its shard server.

        Raw fluid transfer on the shard server (the bytes were already
        counted when they hit the buffer); fan-in contention and network
        pressure apply exactly as for direct writes. Safe to interrupt:
        a crash mid-drain frees the server.
        """
        server = self.server_for(node.id)
        yield self.engine.delay(server.params.op_latency)  # pooled
        job = server.server.transfer(nbytes, tag=tag or f"drain:n{node.id}")
        try:
            yield job.done
        finally:
            if not job.done.triggered:
                server.server.cancel(job)
        self.drained_bytes += nbytes
        self.drain_ops += 1
        if self.tracer:
            self.tracer.add("storage.drained_bytes", nbytes)
            self.tracer.add("storage.drain_ops")

    # -- aggregate accounting (the RunReport surface) -------------------------

    def _sum(self, field: str) -> Any:
        return sum(getattr(s, field) for s in self.servers) + sum(
            getattr(b, field) for b in self.burst_buffers
        )

    @property
    def bytes_written(self) -> float:
        return self._sum("bytes_written")

    @property
    def bytes_read(self) -> float:
        return self._sum("bytes_read")

    @property
    def write_ops(self) -> int:
        return self._sum("write_ops")

    @property
    def read_ops(self) -> int:
        return self._sum("read_ops")

    @property
    def write_faults(self) -> int:
        return self._sum("write_faults")

    @property
    def read_faults(self) -> int:
        return self._sum("read_faults")

    # -- durable-line capture -------------------------------------------------

    def export_state(self) -> Dict[str, Any]:
        """Counters of every tier, for the runtime's component capture."""

        def fields(st: StableStorage) -> Dict[str, Any]:
            return {f: getattr(st, f) for f in StableStorage.RESUME_FIELDS}

        return {
            "drained_bytes": self.drained_bytes,
            "drain_ops": self.drain_ops,
            "servers": [fields(s) for s in self.servers],
            "burst_buffers": [fields(b) for b in self.burst_buffers],
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Mirror of :meth:`export_state` (restart path)."""
        self.drained_bytes = state["drained_bytes"]
        self.drain_ops = state["drain_ops"]
        for tier, saved in (
            (self.servers, state["servers"]),
            (self.burst_buffers, state["burst_buffers"]),
        ):
            if len(tier) != len(saved):
                raise ValueError(
                    f"storage plane shape changed across the halt: "
                    f"{len(saved)} captured tiers vs {len(tier)} rebuilt"
                )
            for st, snap in zip(tier, saved):
                for f, v in snap.items():
                    setattr(st, f, v)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StoragePlane servers={self.n_servers} "
            f"bb={len(self.burst_buffers)} written={self.bytes_written:.0f}B>"
        )
