"""The stable-storage server.

All checkpoint data of all nodes funnels into one storage path (host link +
host file system in the paper's testbed). Concurrent writes share the path
(processor sharing) and pay a thrash penalty — this contention is the single
most important mechanism behind the paper's results.

Writes and reads are generator helpers meant for ``yield from`` inside
simulation processes; they mark the owning node as "streaming" for the
duration so the node's compute interference model can react.

Fault injection: an optional injector (see
:mod:`repro.fault.injection`) is consulted before every operation; a
failing operation completes a deterministic fraction of the transfer (a
torn write costs real time) and then raises
:class:`~repro.core.errors.StorageFault`. Callers retry with backoff.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..core.errors import StorageFault
from ..core.events import Event
from .params import StorageParams
from .shared_server import SharedServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.tracing import Tracer
    from ..fault.injection import StorageFaultInjector
    from .node import Node

__all__ = ["StableStorage"]


class StableStorage:
    """Shared stable-storage server with per-request latency and PS service."""

    #: Capture manifest (see :mod:`repro.chklib.resume`): the accounting
    #: counters travel in a durable line; the server/engine handles and
    #: the fault oracle are rebuilt by the restarted runtime.
    RESUME_FIELDS = (
        "bytes_written",
        "bytes_read",
        "write_ops",
        "read_ops",
        "write_faults",
        "read_faults",
    )
    VOLATILE_FIELDS = ("engine", "params", "tracer", "server", "fault_injector")

    def __init__(
        self,
        engine: "Engine",
        params: StorageParams,
        tracer: Optional["Tracer"] = None,
        name: str = "stable-storage",
    ) -> None:
        self.engine = engine
        self.params = params
        self.tracer = tracer
        self.server = SharedServer(
            engine,
            bandwidth=params.bandwidth,
            thrash=params.thrash,
            name=name,
        )
        self.bytes_written = 0.0
        self.bytes_read = 0.0
        self.write_ops = 0
        self.read_ops = 0
        #: injected transient failures observed (successful ops excluded).
        self.write_faults = 0
        self.read_faults = 0
        #: optional fault oracle (duck-typed; see repro.fault.injection).
        self.fault_injector: Optional["StorageFaultInjector"] = None

    def set_fault_injector(self, injector: Optional["StorageFaultInjector"]) -> None:
        """Install (or clear) the fault oracle consulted per operation."""
        self.fault_injector = injector

    # -- service ------------------------------------------------------------

    @property
    def active_streams(self) -> int:
        """Concurrent transfers in flight (network-pressure input)."""
        return self.server.active_jobs

    def write(
        self,
        node: "Node",
        nbytes: float,
        tag: str = "",
        background: bool = False,
    ) -> Generator[Event, Any, None]:
        """Stream *nbytes* from *node* to stable storage.

        ``background=True`` marks the node as interference-generating for the
        duration (checkpointer-thread writes); foreground writes block the
        caller anyway, so they do not additionally slow the (idle) CPU.

        Raises :class:`StorageFault` when the fault injector fails the
        operation (after the torn transfer's partial service time).
        """
        if nbytes < 0:
            raise ValueError(f"negative write size: {nbytes}")
        verdict = (
            self.fault_injector.on_write(tag) if self.fault_injector else None
        )
        span = (
            self.tracer.open_span("storage.write", node=node.id, bytes=nbytes, tag=tag)
            if self.tracer
            else None
        )
        if background:
            node.bg_stream_started()
        job = None
        try:
            yield self.engine.delay(self.params.op_latency)  # pooled
            if verdict is not None and verdict.fail:
                partial = nbytes * verdict.fraction
                if partial > 0:
                    job = self.server.transfer(partial, tag=tag or f"write:n{node.id}")
                    yield job.done
                    job = None
                self.write_faults += 1
                if self.tracer:
                    self.tracer.add("storage.write_faults")
                raise StorageFault("write", tag=tag, partial_bytes=partial)
            job = self.server.transfer(nbytes, tag=tag or f"write:n{node.id}")
            yield job.done
        finally:
            if background:
                node.bg_stream_stopped()
            if job is not None and not job.done.triggered:
                # interrupted mid-transfer (crash): free the server
                self.server.cancel(job)
            if self.tracer and span is not None:
                # close in all cases — a crash or injected fault must not
                # leak an open span (satellite fix: span leak on interrupt)
                self.tracer.close_span(span)
        self.bytes_written += nbytes
        self.write_ops += 1
        if self.tracer:
            self.tracer.add("storage.bytes_written", nbytes)
            self.tracer.add("storage.write_ops")

    def read(
        self, node: "Node", nbytes: float, tag: str = ""
    ) -> Generator[Event, Any, None]:
        """Stream *nbytes* from stable storage to *node* (recovery path).

        Raises :class:`StorageFault` when the fault injector fails the
        operation.
        """
        if nbytes < 0:
            raise ValueError(f"negative read size: {nbytes}")
        verdict = (
            self.fault_injector.on_read(tag) if self.fault_injector else None
        )
        span = (
            self.tracer.open_span("storage.read", node=node.id, bytes=nbytes, tag=tag)
            if self.tracer
            else None
        )
        job = None
        try:
            yield self.engine.delay(self.params.op_latency)  # pooled
            if verdict is not None and verdict.fail:
                partial = nbytes * verdict.fraction
                if partial > 0:
                    job = self.server.transfer(partial, tag=tag or f"read:n{node.id}")
                    yield job.done
                    job = None
                self.read_faults += 1
                if self.tracer:
                    self.tracer.add("storage.read_faults")
                raise StorageFault("read", tag=tag, partial_bytes=partial)
            job = self.server.transfer(nbytes, tag=tag or f"read:n{node.id}")
            yield job.done
        finally:
            if job is not None and not job.done.triggered:
                self.server.cancel(job)
            if self.tracer and span is not None:
                self.tracer.close_span(span)
        self.bytes_read += nbytes
        self.read_ops += 1
        if self.tracer:
            self.tracer.add("storage.bytes_read", nbytes)
            self.tracer.add("storage.read_ops")

    def single_stream_time(self, nbytes: float) -> float:
        """Uncontended service time for one write (planning helper)."""
        return self.params.op_latency + nbytes / self.params.bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StableStorage streams={self.active_streams} "
            f"written={self.bytes_written:.0f}B>"
        )
