"""Hierarchical machine topology: racks, uplinks and storage sharding.

A :class:`Topology` is a pure function of :class:`TopologyParams` — it
owns no simulation state (nothing to capture in a durable line) and is
rebuilt from the machine parameters on every (re)start. It answers three
questions for the rest of the system:

* *distance*: how many inter-rack hops separate two nodes, and what the
  effective link cost (latency, bandwidth) of that route is — consumed by
  :meth:`repro.machine.cluster.Cluster.message_time` per message;
* *locality*: which rack a node lives in — consumed by the burst-buffer
  tier of the storage plane;
* *sharding*: which stable-storage server a rank writes to
  (``server_of(r) = r * S // N``, contiguous blocks aligned with racks) —
  consumed by the storage plane, recovery, and the per-server staggering
  rings in :mod:`repro.chklib.schemes.coordinated`.

The flat topology (the paper's machine) is the degenerate case: one rack,
zero hops everywhere, every rank on server 0 — the exact same code path
computes the exact same floats as the pre-topology machine.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .params import LinkParams, TopologyParams

__all__ = ["Topology"]


class Topology:
    """Node → rack layout plus the inter-rack link cost model.

    Capture manifests (see :mod:`repro.chklib.resume`): a topology is
    stateless — everything here is derived from frozen parameters, so
    nothing travels in a durable line and every attribute is volatile.
    """

    RESUME_FIELDS: tuple = ()
    VOLATILE_FIELDS = ("params", "n_nodes", "n_racks", "is_flat", "_cost_cache")

    def __init__(self, n_nodes: int, params: TopologyParams | None = None) -> None:
        self.params = params or TopologyParams()
        self.n_nodes = int(n_nodes)
        self.is_flat = self.params.kind == "flat"
        if self.is_flat:
            self.n_racks = 1
        else:
            per = self.params.nodes_per_rack
            self.n_racks = (self.n_nodes + per - 1) // per
        #: hop count -> (latency, bandwidth) of the route, memoised.
        self._cost_cache: Dict[Tuple[float, float, int], Tuple[float, float]] = {}

    # -- locality -----------------------------------------------------------

    def rack_of(self, node_id: int) -> int:
        """The rack holding *node_id* (0 for the flat topology)."""
        if self.is_flat:
            return 0
        return node_id // self.params.nodes_per_rack

    def rack_members(self, rack: int) -> range:
        """The node ids in *rack* (contiguous by construction)."""
        if self.is_flat:
            return range(self.n_nodes)
        per = self.params.nodes_per_rack
        return range(rack * per, min((rack + 1) * per, self.n_nodes))

    # -- distance -----------------------------------------------------------

    def hops(self, src: int, dst: int) -> int:
        """Inter-rack uplink hops between two nodes (0 = same rack)."""
        r1, r2 = self.rack_of(src), self.rack_of(dst)
        if r1 == r2:
            return 0
        model = self.params.link_model
        if model == "uniform":
            return 1
        if model == "fat-tree":
            return 2  # up to the spine, back down
        # torus: racks on a ring, route the short way round
        d = abs(r1 - r2)
        return min(d, self.n_racks - d)

    def link_cost(self, link: LinkParams, src: int, dst: int) -> Tuple[float, float]:
        """Effective (latency, bandwidth) of the src→dst route.

        Intra-rack (and all flat) traffic uses the base link unchanged;
        each uplink hop adds ``uplink_latency``, and hops beyond the first
        taper the bandwidth (torus routes through intermediate racks).
        """
        h = self.hops(src, dst)
        if h == 0:
            return (link.latency, link.bandwidth)
        key = (link.latency, link.bandwidth, h)
        cost = self._cost_cache.get(key)
        if cost is None:
            cost = (
                link.latency + h * self.params.uplink_latency,
                link.bandwidth / (1.0 + self.params.uplink_taper * (h - 1)),
            )
            self._cost_cache[key] = cost
        return cost

    # -- storage sharding ---------------------------------------------------

    def server_of(self, rank: int, n_servers: int) -> int:
        """The stable-storage shard serving *rank*: contiguous blocks
        (``r * S // N``), aligned with the rack order. S=1 → always 0."""
        return rank * n_servers // self.n_nodes

    def server_group(self, server: int, n_servers: int) -> range:
        """All ranks sharded onto *server* (inverse of :meth:`server_of`)."""
        n = self.n_nodes
        lo = -(-server * n // n_servers)  # ceil division
        hi = -(-(server + 1) * n // n_servers)
        return range(lo, hi)

    def server_groups(self, n_servers: int) -> List[range]:
        """Rank blocks per server, in server order."""
        return [self.server_group(s, n_servers) for s in range(n_servers)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_flat:
            return f"<Topology flat n={self.n_nodes}>"
        return (
            f"<Topology {self.params.link_model} n={self.n_nodes} "
            f"racks={self.n_racks}x{self.params.nodes_per_rack}>"
        )
