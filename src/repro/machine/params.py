"""Hardware parameter sets.

The default preset (:func:`MachineParams.xplorer8`) approximates the paper's
testbed: a Parsytec Xplorer with 8 T805 transputers (4 MB each), 20 Mbit/s
links, and stable storage on the host workstation's file system reached
through a single host interface.

Absolute magnitudes are calibration, not gospel — the reproduction targets
the *shape* of the results (who wins, by what factor, where the crossovers
are), which is governed by the ratios between compute rate, link bandwidth,
memory-copy bandwidth and stable-storage bandwidth.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

__all__ = [
    "NodeParams",
    "LinkParams",
    "StorageParams",
    "LocalDiskParams",
    "TopologyParams",
    "StoragePlaneParams",
    "MachineParams",
]


@dataclass(frozen=True)
class NodeParams:
    """One processing element (a transputer in the paper's testbed)."""

    #: sustained floating-point rate used to convert work to time (flop/s).
    cpu_flops: float = 1.5e6
    #: main-memory copy bandwidth for checkpoint buffering (bytes/s).
    mem_copy_bw: float = 20e6
    #: fractional compute slowdown while this node's checkpointer thread is
    #: streaming a buffer to stable storage (CPU/DMA interference).
    bg_write_interference: float = 0.30
    #: main memory per node (bytes); checkpoint buffers must fit.
    memory_bytes: int = 4 * 1024 * 1024
    #: copy-on-write capture: cost of write-protecting one page at the cut.
    cow_mark_cost: float = 2e-6
    #: extra compute slowdown from copy-on-write page faults while the
    #: protected window is open (on top of ``bg_write_interference``).
    cow_fault_interference: float = 0.15


@dataclass(frozen=True)
class LinkParams:
    """Inter-node communication links."""

    #: one-way software + wire latency per message (s).
    latency: float = 250e-6
    #: effective payload bandwidth (bytes/s). T805 links are 20 Mbit/s raw;
    #: usable payload rate after protocol overhead is ~1.5 MB/s.
    bandwidth: float = 1.5e6
    #: fractional slowdown of a message per concurrent checkpoint stream
    #: crossing the interconnect towards the host (network pressure).
    storage_pressure: float = 0.25


@dataclass(frozen=True)
class StorageParams:
    """The stable-storage server (host file system behind the host link)."""

    #: fixed per-request cost: host round-trip, file open, seek (s).
    op_latency: float = 0.015
    #: streaming bandwidth of the storage path for a single writer (bytes/s).
    bandwidth: float = 1.2e6
    #: thrash penalty: with k concurrent transfers the aggregate bandwidth is
    #: ``bandwidth / (1 + thrash * (k - 1))`` (interleaved writes defeat
    #: sequential disk/file-server behaviour).
    thrash: float = 0.05
    #: slowdown of the storage path from competing application traffic:
    #: effective bandwidth is divided by ``1 + app_traffic_penalty * f``
    #: where f is the fraction of ranks still computing (not blocked in a
    #: checkpoint). A globally-quiescent write (Coord_NB) gets the full
    #: path; writes racing the application (Indep, all background writers)
    #: do not — the paper's own explanation of the NB-vs-Indep outcome.
    app_traffic_penalty: float = 1.0


@dataclass(frozen=True)
class LocalDiskParams:
    """Per-node local disk (the two-level stable-storage extension).

    Private to its node: no cross-node contention, no interconnect
    traversal (hence no network pressure and no app-traffic penalty).
    """

    op_latency: float = 0.004
    bandwidth: float = 5e6


@dataclass(frozen=True)
class TopologyParams:
    """How the nodes are wired together (see :mod:`repro.machine.topology`).

    The default (``kind="flat"``) is the paper's machine: every pair of
    nodes one link apart, one cost for all messages — the hierarchical
    machinery must reproduce it bit-for-bit, so flat is the degenerate
    special case of the same code path, not a parallel one.
    """

    #: "flat" (paper's single crossbar) or "racks" (nodes grouped into
    #: racks; inter-rack messages traverse uplinks).
    kind: str = "flat"
    #: nodes per rack (required >= 1 for kind="racks"; ignored for flat).
    nodes_per_rack: int = 0
    #: inter-rack cost model: "uniform" (one uplink hop between any two
    #: racks), "fat-tree" (up to the spine and back down: two hops) or
    #: "torus" (racks on a ring; hop count is the ring distance).
    link_model: str = "uniform"
    #: extra one-way latency per inter-rack hop (s).
    uplink_latency: float = 50e-6
    #: bandwidth taper per hop beyond the first: effective bandwidth is
    #: ``link.bandwidth / (1 + uplink_taper * (hops - 1))`` — the first
    #: uplink hop is full-rate, longer torus routes degrade.
    uplink_taper: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ("flat", "racks"):
            raise ValueError(f"unknown topology kind {self.kind!r}")
        if self.link_model not in ("uniform", "fat-tree", "torus"):
            raise ValueError(f"unknown link model {self.link_model!r}")
        if self.kind == "racks" and self.nodes_per_rack < 1:
            raise ValueError(
                f"racks topology needs nodes_per_rack >= 1, "
                f"got {self.nodes_per_rack}"
            )


@dataclass(frozen=True)
class StoragePlaneParams:
    """The stable-storage plane: S parallel servers, optional burst buffers.

    ``servers=1`` (default) is the paper's single host file system. With
    S > 1 the ranks shard onto the servers in contiguous blocks
    (``server_of(r) = r * S // N``), so storage fan-in per server is N/S.
    ``burst_buffers=True`` fronts each *rack* with a fast rack-local tier:
    checkpoint writes land on the rack's buffer and a background drain
    streams them to the rank's shard server afterwards.
    """

    #: number of parallel stable-storage servers (each a fluid
    #: :class:`~repro.machine.shared_server.SharedServer` with the
    #: machine's ``storage`` parameters).
    servers: int = 1
    #: front each rack with a burst-buffer tier (racks topology only).
    burst_buffers: bool = False
    #: burst-buffer per-request cost (NVMe-class, not host-FS-class).
    bb_op_latency: float = 0.002
    #: burst-buffer streaming bandwidth for a single writer (bytes/s).
    bb_bandwidth: float = 8e6
    #: burst-buffer thrash penalty (flash: none by default).
    bb_thrash: float = 0.0

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError(f"need at least one storage server, got {self.servers}")


@dataclass(frozen=True)
class MachineParams:
    """A full machine: nodes + interconnect + stable storage."""

    n_nodes: int = 8
    node: NodeParams = dataclasses.field(default_factory=NodeParams)
    link: LinkParams = dataclasses.field(default_factory=LinkParams)
    storage: StorageParams = dataclasses.field(default_factory=StorageParams)
    local_disk: LocalDiskParams = dataclasses.field(default_factory=LocalDiskParams)
    topology: TopologyParams = dataclasses.field(default_factory=TopologyParams)
    plane: StoragePlaneParams = dataclasses.field(default_factory=StoragePlaneParams)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"need at least one node, got {self.n_nodes}")
        if self.plane.servers > self.n_nodes:
            raise ValueError(
                f"more storage servers ({self.plane.servers}) than "
                f"nodes ({self.n_nodes})"
            )
        if self.plane.burst_buffers and self.topology.kind != "racks":
            raise ValueError("burst buffers need a racks topology")

    # -- presets ------------------------------------------------------------

    @staticmethod
    def xplorer8() -> "MachineParams":
        """The paper's testbed: Parsytec Xplorer, 8 × T805."""
        return MachineParams(n_nodes=8)

    @staticmethod
    def xplorer(n_nodes: int) -> "MachineParams":
        """An Xplorer-like machine with a different node count (sweeps)."""
        return MachineParams(n_nodes=n_nodes)

    @staticmethod
    def hierarchical(
        n_nodes: int,
        nodes_per_rack: int = 32,
        servers: int | None = None,
        burst_buffers: bool = False,
        link_model: str = "uniform",
    ) -> "MachineParams":
        """A racks × nodes machine with a multi-server storage plane.

        ``servers`` defaults to ``max(1, isqrt(N) // 4)`` so per-server
        fan-in N/S *grows* with N — the regime where staggering's
        serialisation win compounds. Per-server storage is parallel-FS
        class (10x the paper's host link) so absolute checkpoint times
        stay in the same regime as the 8-node testbed; the ratios, not
        the magnitudes, carry the results.
        """
        if servers is None:
            servers = max(1, math.isqrt(n_nodes) // 4)
        return MachineParams(
            n_nodes=n_nodes,
            storage=StorageParams(op_latency=0.005, bandwidth=12e6),
            topology=TopologyParams(
                kind="racks",
                nodes_per_rack=min(nodes_per_rack, n_nodes),
                link_model=link_model,
            ),
            plane=StoragePlaneParams(servers=servers, burst_buffers=burst_buffers),
        )

    #: topology preset names accepted by the runner's ``--topology`` flag.
    TOPOLOGY_PRESETS = ("flat", "racks", "racks-bb", "fat-tree", "torus")

    @staticmethod
    def preset(name: str, n_nodes: int) -> "MachineParams":
        """Build a named machine preset at *n_nodes* (runner ``--topology``)."""
        if name == "flat":
            return MachineParams.xplorer(n_nodes)
        if name == "racks":
            return MachineParams.hierarchical(n_nodes)
        if name == "racks-bb":
            return MachineParams.hierarchical(n_nodes, burst_buffers=True)
        if name == "fat-tree":
            return MachineParams.hierarchical(n_nodes, link_model="fat-tree")
        if name == "torus":
            return MachineParams.hierarchical(n_nodes, link_model="torus")
        raise ValueError(
            f"unknown topology preset {name!r} "
            f"(choose from {MachineParams.TOPOLOGY_PRESETS})"
        )

    # -- modified copies ---------------------------------------------------

    def with_storage(self, **changes: float) -> "MachineParams":
        """Copy with storage parameters overridden (bandwidth sweeps)."""
        return dataclasses.replace(
            self, storage=dataclasses.replace(self.storage, **changes)
        )

    def with_node(self, **changes: float) -> "MachineParams":
        """Copy with node parameters overridden (interference ablations)."""
        return dataclasses.replace(
            self, node=dataclasses.replace(self.node, **changes)
        )

    def with_link(self, **changes: float) -> "MachineParams":
        """Copy with link parameters overridden."""
        return dataclasses.replace(
            self, link=dataclasses.replace(self.link, **changes)
        )

    def with_topology(self, **changes) -> "MachineParams":
        """Copy with topology parameters overridden."""
        return dataclasses.replace(
            self, topology=dataclasses.replace(self.topology, **changes)
        )

    def with_plane(self, **changes) -> "MachineParams":
        """Copy with storage-plane parameters overridden."""
        return dataclasses.replace(
            self, plane=dataclasses.replace(self.plane, **changes)
        )
