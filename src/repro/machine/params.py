"""Hardware parameter sets.

The default preset (:func:`MachineParams.xplorer8`) approximates the paper's
testbed: a Parsytec Xplorer with 8 T805 transputers (4 MB each), 20 Mbit/s
links, and stable storage on the host workstation's file system reached
through a single host interface.

Absolute magnitudes are calibration, not gospel — the reproduction targets
the *shape* of the results (who wins, by what factor, where the crossovers
are), which is governed by the ratios between compute rate, link bandwidth,
memory-copy bandwidth and stable-storage bandwidth.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["NodeParams", "LinkParams", "StorageParams", "LocalDiskParams", "MachineParams"]


@dataclass(frozen=True)
class NodeParams:
    """One processing element (a transputer in the paper's testbed)."""

    #: sustained floating-point rate used to convert work to time (flop/s).
    cpu_flops: float = 1.5e6
    #: main-memory copy bandwidth for checkpoint buffering (bytes/s).
    mem_copy_bw: float = 20e6
    #: fractional compute slowdown while this node's checkpointer thread is
    #: streaming a buffer to stable storage (CPU/DMA interference).
    bg_write_interference: float = 0.30
    #: main memory per node (bytes); checkpoint buffers must fit.
    memory_bytes: int = 4 * 1024 * 1024
    #: copy-on-write capture: cost of write-protecting one page at the cut.
    cow_mark_cost: float = 2e-6
    #: extra compute slowdown from copy-on-write page faults while the
    #: protected window is open (on top of ``bg_write_interference``).
    cow_fault_interference: float = 0.15


@dataclass(frozen=True)
class LinkParams:
    """Inter-node communication links."""

    #: one-way software + wire latency per message (s).
    latency: float = 250e-6
    #: effective payload bandwidth (bytes/s). T805 links are 20 Mbit/s raw;
    #: usable payload rate after protocol overhead is ~1.5 MB/s.
    bandwidth: float = 1.5e6
    #: fractional slowdown of a message per concurrent checkpoint stream
    #: crossing the interconnect towards the host (network pressure).
    storage_pressure: float = 0.25


@dataclass(frozen=True)
class StorageParams:
    """The stable-storage server (host file system behind the host link)."""

    #: fixed per-request cost: host round-trip, file open, seek (s).
    op_latency: float = 0.015
    #: streaming bandwidth of the storage path for a single writer (bytes/s).
    bandwidth: float = 1.2e6
    #: thrash penalty: with k concurrent transfers the aggregate bandwidth is
    #: ``bandwidth / (1 + thrash * (k - 1))`` (interleaved writes defeat
    #: sequential disk/file-server behaviour).
    thrash: float = 0.05
    #: slowdown of the storage path from competing application traffic:
    #: effective bandwidth is divided by ``1 + app_traffic_penalty * f``
    #: where f is the fraction of ranks still computing (not blocked in a
    #: checkpoint). A globally-quiescent write (Coord_NB) gets the full
    #: path; writes racing the application (Indep, all background writers)
    #: do not — the paper's own explanation of the NB-vs-Indep outcome.
    app_traffic_penalty: float = 1.0


@dataclass(frozen=True)
class LocalDiskParams:
    """Per-node local disk (the two-level stable-storage extension).

    Private to its node: no cross-node contention, no interconnect
    traversal (hence no network pressure and no app-traffic penalty).
    """

    op_latency: float = 0.004
    bandwidth: float = 5e6


@dataclass(frozen=True)
class MachineParams:
    """A full machine: nodes + interconnect + stable storage."""

    n_nodes: int = 8
    node: NodeParams = dataclasses.field(default_factory=NodeParams)
    link: LinkParams = dataclasses.field(default_factory=LinkParams)
    storage: StorageParams = dataclasses.field(default_factory=StorageParams)
    local_disk: LocalDiskParams = dataclasses.field(default_factory=LocalDiskParams)

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"need at least one node, got {self.n_nodes}")

    # -- presets ------------------------------------------------------------

    @staticmethod
    def xplorer8() -> "MachineParams":
        """The paper's testbed: Parsytec Xplorer, 8 × T805."""
        return MachineParams(n_nodes=8)

    @staticmethod
    def xplorer(n_nodes: int) -> "MachineParams":
        """An Xplorer-like machine with a different node count (sweeps)."""
        return MachineParams(n_nodes=n_nodes)

    # -- modified copies ---------------------------------------------------

    def with_storage(self, **changes: float) -> "MachineParams":
        """Copy with storage parameters overridden (bandwidth sweeps)."""
        return dataclasses.replace(
            self, storage=dataclasses.replace(self.storage, **changes)
        )

    def with_node(self, **changes: float) -> "MachineParams":
        """Copy with node parameters overridden (interference ablations)."""
        return dataclasses.replace(
            self, node=dataclasses.replace(self.node, **changes)
        )

    def with_link(self, **changes: float) -> "MachineParams":
        """Copy with link parameters overridden."""
        return dataclasses.replace(
            self, link=dataclasses.replace(self.link, **changes)
        )
