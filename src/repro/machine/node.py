"""A processing element with interference-aware computation.

A :class:`Node` converts application work (flops) into simulated time. While
the node's checkpointer thread is streaming a buffer to stable storage, the
CPU/DMA interference slows computation by the node's
``bg_write_interference`` fraction. The compute integrator is exact under
piecewise-constant rates: it re-evaluates whenever the interference state
changes, so arbitrarily long compute chunks are handled correctly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator

from ..core.events import Event
from .params import NodeParams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine

__all__ = ["Node"]


class Node:
    """One node: CPU model, memory-copy engine, interference bookkeeping."""

    def __init__(self, engine: "Engine", node_id: int, params: NodeParams) -> None:
        self.engine = engine
        self.id = int(node_id)
        self.params = params
        #: number of background storage streams this node is driving
        #: (0 or 1 in all the paper's schemes, but kept general).
        self.bg_streams = 0
        #: open copy-on-write windows (pages write-protected; application
        #: stores fault and pay a copy).
        self.cow_windows = 0
        self._rate_change = Event(engine)
        # metrics
        self.busy_time = 0.0
        self.flops_done = 0.0

    # -- interference ---------------------------------------------------------

    @property
    def slowdown(self) -> float:
        """Current compute slowdown factor (>= 1)."""
        factor = 1.0
        if self.bg_streams > 0:
            factor += self.params.bg_write_interference
        if self.cow_windows > 0:
            factor += self.params.cow_fault_interference
        return factor

    def bg_stream_started(self) -> None:
        """The node's checkpointer began streaming to stable storage."""
        self.bg_streams += 1
        self._bump_rate()

    def bg_stream_stopped(self) -> None:
        """The node's checkpointer finished (or aborted) its stream."""
        if self.bg_streams <= 0:
            raise RuntimeError(f"node {self.id}: bg stream underflow")
        self.bg_streams -= 1
        self._bump_rate()

    def cow_window_opened(self) -> None:
        """Pages write-protected for a copy-on-write capture."""
        self.cow_windows += 1
        self._bump_rate()

    def cow_window_closed(self) -> None:
        if self.cow_windows <= 0:
            raise RuntimeError(f"node {self.id}: CoW window underflow")
        self.cow_windows -= 1
        self._bump_rate()

    def _bump_rate(self) -> None:
        old, self._rate_change = self._rate_change, Event(self.engine)
        old.defused = True
        old.succeed(None)

    # -- work ------------------------------------------------------------------

    def compute(self, flops: float) -> Generator[Event, Any, None]:
        """Spend CPU time on *flops* of work, tracking interference exactly.

        Usage inside a simulation process: ``yield from node.compute(w)``.
        """
        if flops < 0:
            raise ValueError(f"negative work: {flops}")
        engine = self.engine
        remaining = float(flops)
        while remaining > 1e-9:
            rate = self.params.cpu_flops / self.slowdown
            t0 = engine.now
            finish = engine.timeout(remaining / rate)
            change = self._rate_change
            yield finish | change
            elapsed = engine.now - t0
            done = rate * elapsed
            remaining -= done
            self.busy_time += elapsed
            self.flops_done += done
            if finish.processed:
                break

    def compute_time(self, flops: float) -> float:
        """Uncontended duration of *flops* of work (planning helper)."""
        return flops / self.params.cpu_flops

    def mem_copy(self, nbytes: float) -> Generator[Event, Any, None]:
        """Block for a main-memory copy of *nbytes* (checkpoint buffering)."""
        if nbytes < 0:
            raise ValueError(f"negative copy size: {nbytes}")
        yield self.engine.delay(nbytes / self.params.mem_copy_bw)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Node {self.id} bg_streams={self.bg_streams}>"
