"""A processor-sharing transfer server with a thrash penalty.

This models the stable-storage path (host link + file server + disk) the way
it behaves on real hardware: *k* concurrent transfers each progress at

    rate(k) = bandwidth / (k * (1 + thrash * (k - 1)))

i.e. the server is shared fairly, and interleaving transfers additionally
costs aggregate throughput (``thrash`` per extra stream — seeks, packet
interleaving, file-server context switches). ``thrash=0`` is ideal fair
sharing; a FIFO disk is approximated by ``thrash`` large.

The implementation is an exact fluid simulation: whenever the job set
changes, every job's remaining volume is advanced at the old rate and the
next completion is re-scheduled. Completion times are therefore exact for
piecewise-constant rates, with no per-byte event cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional

from ..core.events import Event

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine

__all__ = ["SharedServer", "TransferJob"]


class TransferJob:
    """One in-flight transfer; ``done`` fires when the last byte moves."""

    __slots__ = ("server", "nbytes", "remaining", "done", "tag")

    def __init__(self, server: "SharedServer", nbytes: float, tag: str) -> None:
        self.server = server
        self.nbytes = float(nbytes)
        self.remaining = float(nbytes)
        self.done = Event(server.engine)
        self.tag = tag

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TransferJob {self.tag!r} {self.remaining:.0f}/{self.nbytes:.0f}B>"


class SharedServer:
    """Fair-shared transfer server with optional thrash penalty."""

    def __init__(
        self,
        engine: "Engine",
        bandwidth: float,
        thrash: float = 0.0,
        name: str = "",
    ) -> None:
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth}")
        if thrash < 0:
            raise ValueError(f"thrash must be >= 0, got {thrash}")
        self.engine = engine
        self.bandwidth = float(bandwidth)
        self.thrash = float(thrash)
        self.name = name
        #: external slowdown (<= 1.0): competing application traffic on the
        #: path to the server (set via :meth:`set_rate_factor`).
        self._rate_factor = 1.0
        self._jobs: List[TransferJob] = []
        self._last_update = engine.now
        self._timer_version = 0
        #: observers called with the new job count on every change
        #: (nodes use this to react to congestion).
        self.on_change: List[Callable[[int], None]] = []
        #: exact-count hook, called with +1/-1 at every ``_jobs`` mutation
        #: (unlike ``on_change``, which only fires on the public-API edges).
        #: The storage plane uses it to keep ``active_streams`` O(1).
        self.on_jobs_delta: Optional[Callable[[int], None]] = None
        # metrics
        self.bytes_completed = 0.0
        self.jobs_completed = 0
        self.peak_concurrency = 0

    # -- public API -----------------------------------------------------------

    @property
    def active_jobs(self) -> int:
        """Number of transfers currently in progress."""
        return len(self._jobs)

    def per_job_rate(self, k: Optional[int] = None) -> float:
        """Bytes/s each of *k* concurrent jobs receives."""
        if k is None:
            k = len(self._jobs)
        if k <= 0:
            return self.bandwidth * self._rate_factor
        return (
            self.bandwidth
            * self._rate_factor
            / (k * (1.0 + self.thrash * (k - 1)))
        )

    def set_rate_factor(self, factor: float) -> None:
        """Change the external slowdown; in-flight jobs re-pace exactly."""
        if factor <= 0:
            raise ValueError(f"rate factor must be positive, got {factor}")
        if factor == self._rate_factor:
            return
        self._advance()
        self._rate_factor = float(factor)
        self._reschedule()

    def transfer(self, nbytes: float, tag: str = "") -> TransferJob:
        """Start a transfer of *nbytes*; returns the job (yield ``job.done``)."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size: {nbytes}")
        job = TransferJob(self, nbytes, tag)
        self._advance()
        if job.remaining <= 0.0:
            # Zero-byte transfer: complete instantly, never enters service.
            self._complete(job)
            return job
        self._jobs.append(job)
        if self.on_jobs_delta is not None:
            self.on_jobs_delta(1)
        self.peak_concurrency = max(self.peak_concurrency, len(self._jobs))
        self._reschedule()
        self._notify()
        return job

    def cancel(self, job: TransferJob) -> None:
        """Abort an in-flight transfer (its ``done`` event never fires)."""
        if job in self._jobs:
            self._advance()
            self._jobs.remove(job)
            if self.on_jobs_delta is not None:
                self.on_jobs_delta(-1)
            self._reschedule()
            self._notify()

    # -- fluid machinery ----------------------------------------------------------

    def _advance(self) -> None:
        """Drain remaining volume at the current rate up to ``now``."""
        now = self.engine.now
        dt = now - self._last_update
        self._last_update = now
        if dt <= 0.0 or not self._jobs:
            return
        rate = self.per_job_rate()
        drained = rate * dt
        finished = []
        for job in self._jobs:
            job.remaining -= drained
            # Tolerance note: a residual below a millibyte is "done". The
            # tolerance must be coarse enough that the implied wake-up delay
            # (remaining / rate) stays above the float ULP of the simulation
            # clock, or the completion timer would re-fire at the *same*
            # timestamp with dt == 0 and spin forever.
            if job.remaining <= 1e-3:
                job.remaining = 0.0
                finished.append(job)
        for job in finished:
            self._jobs.remove(job)
            if self.on_jobs_delta is not None:
                self.on_jobs_delta(-1)
            self._complete(job)

    def _complete(self, job: TransferJob) -> None:
        self.bytes_completed += job.nbytes
        self.jobs_completed += 1
        job.done.succeed(job)

    def _reschedule(self) -> None:
        """Arm a wake-up at the next completion under the new rate."""
        self._timer_version += 1
        # clock-resolution guard: if the next completion is closer than the
        # float ULP of `now`, the timeout could not advance the clock —
        # complete those jobs immediately instead of spinning.
        while self._jobs:
            rate = self.per_job_rate()
            next_remaining = min(job.remaining for job in self._jobs)
            delay = next_remaining / rate
            if self.engine.now + delay > self.engine.now:
                break
            for job in [
                j for j in self._jobs if j.remaining <= next_remaining + 1e-12
            ]:
                self._jobs.remove(job)
                if self.on_jobs_delta is not None:
                    self.on_jobs_delta(-1)
                job.remaining = 0.0
                self._complete(job)
        if not self._jobs:
            return
        version = self._timer_version
        # single-use wake-up, never composed: the pooled delay event avoids
        # one Timeout allocation per job-set change
        wake = self.engine.delay(delay)
        wake.callbacks.append(lambda _ev, v=version: self._on_timer(v))

    def _on_timer(self, version: int) -> None:
        if version != self._timer_version:
            return  # stale timer from before a job-set change
        self._advance()
        self._reschedule()
        self._notify()

    def _notify(self) -> None:
        k = len(self._jobs)
        for observer in self.on_change:
            observer(k)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SharedServer {self.name!r} jobs={len(self._jobs)} "
            f"bw={self.bandwidth:.0f}B/s thrash={self.thrash}>"
        )
