"""The complete machine: nodes + interconnect capacity + stable storage.

A :class:`Cluster` is a passive container — all behaviour lives in the parts
(nodes, storage, and the transport in :mod:`repro.net`). It also provides
the *network pressure* signal: message transfers slow down in proportion to
the number of checkpoint streams crossing the interconnect towards the host.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..core.resources import Resource
from .node import Node
from .params import MachineParams, StorageParams
from .storage import StableStorage
from .storage_plane import StoragePlane
from .topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine
    from ..core.tracing import Tracer

__all__ = ["Cluster"]


class Cluster:
    """An Xplorer-like message-passing machine."""

    def __init__(
        self,
        engine: "Engine",
        params: Optional[MachineParams] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.engine = engine
        self.params = params or MachineParams.xplorer8()
        self.tracer = tracer
        self.topology = Topology(self.params.n_nodes, self.params.topology)
        self.nodes: List[Node] = [
            Node(engine, i, self.params.node) for i in range(self.params.n_nodes)
        ]
        #: the stable-storage plane (S shard servers + optional burst
        #: buffers); with the default flat parameters it is bit-identical
        #: to the old single StableStorage, down to the event order.
        self.storage = StoragePlane(
            engine, self.params, self.topology, tracer=tracer
        )
        #: per-node local disks (two-level stable storage): private, fast,
        #: outside the interconnect -> no contention with anything.
        disk = self.params.local_disk
        self.local_disks: List[StableStorage] = [
            StableStorage(
                engine,
                StorageParams(
                    op_latency=disk.op_latency,
                    bandwidth=disk.bandwidth,
                    thrash=0.0,
                    app_traffic_penalty=0.0,
                ),
            )
            for _ in range(self.params.n_nodes)
        ]
        #: one outbound link engine per node (transputer link DMA): messages
        #: from the same sender serialise; different senders proceed in
        #: parallel. Receive side is delivery into a mailbox (no resource).
        self.tx_links: List[Resource] = [
            Resource(engine, capacity=1, name=f"tx-link:{i}")
            for i in range(self.params.n_nodes)
        ]
        #: ranks currently blocked inside a checkpoint operation (no
        #: application traffic from them); drives the storage rate factor.
        self._blocked_ranks: set[int] = set()
        #: whole-machine quiescence (recovery restore window). Overrides the
        #: per-rank signal: interrupted writers of the dead generation still
        #: run their cleanup (``set_rank_blocked(rank, False)``) *after*
        #: recovery declares quiescence, and must not re-apply the
        #: application-traffic penalty to the restore reads.
        self._quiesced = False
        self._apply_storage_rate()

    def set_rank_blocked(self, rank: int, blocked: bool) -> None:
        """Schemes report blocking capture windows here; the storage path
        speeds up as application traffic quiesces."""
        before = len(self._blocked_ranks)
        if blocked:
            self._blocked_ranks.add(rank)
        else:
            self._blocked_ranks.discard(rank)
        if len(self._blocked_ranks) != before:
            self._apply_storage_rate()

    def set_all_blocked(self, blocked: bool) -> None:
        """Whole-machine quiescence (e.g. during recovery restore reads)."""
        self._quiesced = blocked
        if not blocked:
            self._blocked_ranks = set()
        self._apply_storage_rate()

    def _apply_storage_rate(self) -> None:
        if self._quiesced:
            active_fraction = 0.0
        else:
            active_fraction = 1.0 - len(self._blocked_ranks) / self.n_nodes
        penalty = self.params.storage.app_traffic_penalty
        self.storage.apply_rate_factor(1.0 / (1.0 + penalty * active_fraction))

    @property
    def n_nodes(self) -> int:
        return self.params.n_nodes

    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def local_disk(self, node_id: int) -> StableStorage:
        return self.local_disks[node_id]

    def network_pressure(self) -> float:
        """Slowdown factor (>= 1) applied to message transfers right now.

        Each concurrent checkpoint stream crossing the interconnect adds
        ``link.storage_pressure`` of delay to application messages.
        """
        streams = self.storage.active_streams
        return 1.0 + self.params.link.storage_pressure * streams

    @property
    def plane(self) -> "StoragePlane":
        """Alias for the storage plane (``storage`` keeps the legacy name)."""
        return self.storage

    def message_time(
        self, nbytes: float, src: Optional[int] = None, dst: Optional[int] = None
    ) -> float:
        """Uncontended wire time of a message of *nbytes* (pressure applied
        separately by the transport at send time). With endpoints given,
        the topology's distance-dependent link cost applies; intra-rack
        and flat traffic computes the identical base expression."""
        link = self.params.link
        if src is None or dst is None or self.topology.is_flat:
            return link.latency + nbytes / link.bandwidth
        latency, bandwidth = self.topology.link_cost(link, src, dst)
        return latency + nbytes / bandwidth

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Cluster n={self.n_nodes}>"
