"""Hardware model: nodes, shared stable storage, cluster presets.

Approximates the paper's Parsytec Xplorer (8 × T805, host file system as
stable storage) as a deterministic discrete-event model. See ``DESIGN.md``
§2 for the substitution rationale.
"""

from .cluster import Cluster
from .node import Node
from .params import LinkParams, LocalDiskParams, MachineParams, NodeParams, StorageParams
from .shared_server import SharedServer, TransferJob
from .storage import StableStorage

__all__ = [
    "Cluster",
    "Node",
    "MachineParams",
    "NodeParams",
    "LinkParams",
    "LocalDiskParams",
    "StorageParams",
    "SharedServer",
    "TransferJob",
    "StableStorage",
]
