"""Hardware model: nodes, topology, stable-storage plane, cluster presets.

Approximates the paper's Parsytec Xplorer (8 × T805, host file system as
stable storage) as a deterministic discrete-event model, generalised to
parameterised hierarchical topologies (racks × nodes, fat-tree/torus link
cost) with a multi-server storage plane and optional rack-local burst
buffers. The flat 8-node default remains bit-identical to the paper's
machine. See ``DESIGN.md`` §2 and §11.
"""

from .cluster import Cluster
from .node import Node
from .params import (
    LinkParams,
    LocalDiskParams,
    MachineParams,
    NodeParams,
    StoragePlaneParams,
    StorageParams,
    TopologyParams,
)
from .shared_server import SharedServer, TransferJob
from .storage import StableStorage
from .storage_plane import StoragePlane
from .topology import Topology

__all__ = [
    "Cluster",
    "Node",
    "MachineParams",
    "NodeParams",
    "LinkParams",
    "LocalDiskParams",
    "StorageParams",
    "TopologyParams",
    "StoragePlaneParams",
    "SharedServer",
    "TransferJob",
    "StableStorage",
    "StoragePlane",
    "Topology",
]
