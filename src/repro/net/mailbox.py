"""Receive-side message matching.

A :class:`Mailbox` holds delivered-but-unconsumed messages and pending
receives. Matching is MPI-like: a receive names ``(source, tag)`` with
wildcards; it matches the *oldest* delivered message that satisfies both.
Within one channel (fixed ``src``) consumption is therefore FIFO as long as
the application does not use tag-selective receives to jump the queue — the
checkpointing layer's per-channel accounting relies on in-order consumption
and enforces it (see :class:`repro.net.api.Comm`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from ..core.events import Event
from .message import ANY_SOURCE, ANY_TAG, Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import Engine

__all__ = ["Mailbox", "RecvRequest"]


class RecvRequest(Event):
    """A pending receive; fires with the matched :class:`Message`."""

    __slots__ = ("source", "tag")

    def __init__(self, engine: "Engine", source: int, tag: int) -> None:
        super().__init__(engine)
        self.source = source
        self.tag = tag

    def matches(self, msg: Message) -> bool:
        return (self.source == ANY_SOURCE or self.source == msg.src) and (
            self.tag == ANY_TAG or self.tag == msg.tag
        )


class Mailbox:
    """Delivered-message buffer with wildcard matching."""

    def __init__(self, engine: "Engine", rank: int) -> None:
        self.engine = engine
        self.rank = rank
        self.pending: List[Message] = []
        self._waiters: List[RecvRequest] = []
        #: called with each message the moment a receive consumes it
        #: (the checkpoint agent's accounting hook).
        self.on_consume: Optional[Callable[[Message], None]] = None

    # -- delivery ----------------------------------------------------------

    def deliver(self, msg: Message) -> None:
        """A message arrived from the transport; match or buffer it."""
        for i, waiter in enumerate(self._waiters):
            if waiter.matches(msg):
                del self._waiters[i]
                self._consume(msg, waiter)
                return
        self.pending.append(msg)

    # -- consumption ---------------------------------------------------------

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Consume the oldest matching message (event fires with it)."""
        req = RecvRequest(self.engine, source, tag)
        for i, msg in enumerate(self.pending):
            if req.matches(msg):
                del self.pending[i]
                self._consume(msg, req)
                return req
        self._waiters.append(req)
        return req

    def _consume(self, msg: Message, req: RecvRequest) -> None:
        if self.on_consume is not None:
            self.on_consume(msg)
        req.succeed(msg)

    # -- introspection ------------------------------------------------------

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Oldest matching buffered message, without consuming it."""
        for msg in self.pending:
            if (source == ANY_SOURCE or source == msg.src) and (
                tag == ANY_TAG or tag == msg.tag
            ):
                return msg
        return None

    def drain(self) -> List[Message]:
        """Remove and return all buffered messages (rollback support)."""
        msgs, self.pending = self.pending, []
        return msgs

    def cancel_waiters(self) -> List[Tuple[int, int]]:
        """Drop all pending receives (rollback support); returns their specs."""
        specs = [(w.source, w.tag) for w in self._waiters]
        self._waiters.clear()
        return specs

    def __len__(self) -> int:
        return len(self.pending)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Mailbox r{self.rank} pending={len(self.pending)} "
            f"waiters={len(self._waiters)}>"
        )
