"""Collective operations built on the point-to-point layer.

The paper's applications use barrier/broadcast/reduce-style exchanges; we
implement the standard binomial-tree and dissemination algorithms so the
simulated communication cost scales as on the real machine (log p rounds,
serialised at each sender's link).

Tag discipline: every collective call consumes one slot of the per-rank
``coll_counter`` (which advances identically on all ranks under SPMD usage
and is checkpointed with the process state), and derives its wire tags from
that slot in a reserved tag space well above application tags.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from ..core.events import Event
from .api import Comm

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "alltoall",
    "COLL_TAG_BASE",
]

#: application tags must stay below this.
COLL_TAG_BASE = 1 << 20
#: minimum tags per collective slot (round/peer sub-tags). The effective
#: stride grows with the communicator so per-peer sub-tags (alltoall's
#: ``step`` reaches p-1) never overflow a slot at large p: it is the next
#: power of two >= p, floored at 64 so every communicator with p <= 64
#: derives the exact tags it always did.
_SLOT_STRIDE = 64


def _stride(comm: Comm) -> int:
    """Tag-space width of one collective slot for *comm* (power of two,
    >= max(64, comm.size)); identical on all ranks of the communicator."""
    p = comm.size
    if p <= _SLOT_STRIDE:
        return _SLOT_STRIDE
    return 1 << (p - 1).bit_length()


def _slot_tag(comm: Comm, offset: int) -> int:
    """Wire tag for sub-operation *offset* of the current collective slot."""
    stride = _stride(comm)
    if offset >= stride:
        raise ValueError(f"collective sub-tag overflow: {offset}")
    return COLL_TAG_BASE + comm.coll_counter * stride + offset


def _take_slot(comm: Comm) -> int:
    slot = comm.coll_counter
    comm.coll_counter += 1
    return slot


def barrier(comm: Comm) -> Generator[Event, Any, None]:
    """Dissemination barrier: ceil(log2 p) rounds, no central bottleneck."""
    _take_slot(comm)
    p = comm.size
    if p == 1:
        return
    round_no = 0
    dist = 1
    while dist < p:
        dst = (comm.rank + dist) % p
        src = (comm.rank - dist) % p
        yield from comm.send(dst, None, tag=_slot_tag_prev(comm, round_no))
        yield from comm.recv(source=src, tag=_slot_tag_prev(comm, round_no))
        dist *= 2
        round_no += 1


def _slot_tag_prev(comm: Comm, offset: int) -> int:
    """Tag helper for the slot just consumed by ``_take_slot``."""
    stride = _stride(comm)
    if offset >= stride:
        raise ValueError(f"collective sub-tag overflow: {offset}")
    return COLL_TAG_BASE + (comm.coll_counter - 1) * stride + offset


def bcast(comm: Comm, value: Any = None, root: int = 0) -> Generator[Event, Any, Any]:
    """Binomial-tree broadcast; returns the broadcast value on every rank."""
    _take_slot(comm)
    p = comm.size
    if p == 1:
        return value
    vrank = (comm.rank - root) % p
    # receive from parent (unless root): the parent is vrank minus its
    # highest set bit.
    highest = 0
    if vrank != 0:
        highest = 1
        while (highest << 1) <= vrank:
            highest <<= 1
        parent = ((vrank - highest) + root) % p
        msg = yield from comm.recv(source=parent, tag=_slot_tag_prev(comm, 0))
        value = msg.payload
    # forward to children: vrank + 2^k for every 2^k above vrank's highest
    # set bit (all powers for the root).
    mask = highest << 1 if vrank != 0 else 1
    while mask < p:
        child_v = vrank + mask
        if child_v < p:
            child = (child_v + root) % p
            yield from comm.send(child, value, tag=_slot_tag_prev(comm, 0))
        mask <<= 1
    return value


def reduce(
    comm: Comm,
    value: Any,
    op: Callable[[Any, Any], Any],
    root: int = 0,
) -> Generator[Event, Any, Optional[Any]]:
    """Binomial-tree reduction; returns the result at *root*, None elsewhere."""
    _take_slot(comm)
    p = comm.size
    vrank = (comm.rank - root) % p
    acc = value
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            yield from comm.send(parent, acc, tag=_slot_tag_prev(comm, 0))
            return None
        peer_v = vrank + mask
        if peer_v < p:
            child = (peer_v + root) % p
            msg = yield from comm.recv(source=child, tag=_slot_tag_prev(comm, 0))
            acc = op(acc, msg.payload)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(
    comm: Comm, value: Any, op: Callable[[Any, Any], Any]
) -> Generator[Event, Any, Any]:
    """Reduce to rank 0, then broadcast the result."""
    partial = yield from reduce(comm, value, op, root=0)
    result = yield from bcast(comm, partial, root=0)
    return result


def gather(
    comm: Comm, value: Any, root: int = 0
) -> Generator[Event, Any, Optional[List[Any]]]:
    """Gather one value per rank at *root* (returned as a rank-ordered list)."""
    _take_slot(comm)
    if comm.rank == root:
        out: List[Any] = [None] * comm.size
        out[root] = value
        for src in range(comm.size):
            if src == root:
                continue
            msg = yield from comm.recv(source=src, tag=_slot_tag_prev(comm, 0))
            out[src] = msg.payload
        return out
    yield from comm.send(root, value, tag=_slot_tag_prev(comm, 0))
    return None


def scatter(
    comm: Comm, values: Optional[List[Any]] = None, root: int = 0
) -> Generator[Event, Any, Any]:
    """Scatter ``values[i]`` to rank ``i`` from *root*; returns the local one."""
    _take_slot(comm)
    if comm.rank == root:
        if values is None or len(values) != comm.size:
            raise ValueError(
                f"scatter at root needs exactly {comm.size} values, "
                f"got {None if values is None else len(values)}"
            )
        for dst in range(comm.size):
            if dst == root:
                continue
            yield from comm.send(dst, values[dst], tag=_slot_tag_prev(comm, 0))
        return values[root]
    msg = yield from comm.recv(source=root, tag=_slot_tag_prev(comm, 0))
    return msg.payload


def alltoall(comm: Comm, values: List[Any]) -> Generator[Event, Any, List[Any]]:
    """Personalised all-to-all; ``values[i]`` goes to rank ``i``."""
    _take_slot(comm)
    if len(values) != comm.size:
        raise ValueError(f"alltoall needs {comm.size} values, got {len(values)}")
    out: List[Any] = [None] * comm.size
    out[comm.rank] = values[comm.rank]
    # pairwise-exchange schedule: at step s exchange with rank ^ s where
    # that is valid; for non-power-of-two sizes fall back to a shifted ring.
    p = comm.size
    for step in range(1, p):
        peer = (comm.rank + step) % p
        source = (comm.rank - step) % p
        yield from comm.send(peer, values[peer], tag=_slot_tag_prev(comm, step))
        msg = yield from comm.recv(
            source=source, tag=_slot_tag_prev(comm, step)
        )
        out[source] = msg.payload
    return out
