"""The MPI-like communication API of the reproduced CHK-LIB.

One :class:`Comm` per rank. Point-to-point semantics:

* ``send`` is *eager*: it occupies the sender for the wire time and never
  waits for the receiver (messages buffer at the destination mailbox). This
  matters for the paper's results — a process blocked inside a checkpoint
  stalls only the processes that *receive from* it, which is exactly the
  stall-propagation mechanism that penalises independent checkpointing in
  tightly-coupled applications.
* ``recv`` blocks until a matching message was consumed.
* per-``(src, dst)`` channels are reliable and FIFO; consumption within a
  channel is enforced to be in sequence order (the checkpoint layer's
  dependency accounting is prefix-based).

A checkpointing scheme attaches a :class:`CommAgent` to intercept sends
(epoch piggybacking), deliveries (channel-state recording, duplicate
suppression, control routing) and consumptions (dependency counting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional

from ..core.errors import SimulationError
from ..core.events import Event
from ..core.process import Process
from .mailbox import Mailbox
from .message import ANY_SOURCE, ANY_TAG, KIND_APP, Message
from .transport import Transport

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["Comm", "CommAgent"]


class CommAgent:
    """Interception points for a checkpointing scheme (default: no-ops).

    Subclassed by :mod:`repro.chklib.schemes`; kept here so the network
    layer has no dependency on the checkpointing layer.
    """

    def on_send(self, msg: Message) -> None:
        """Called just before *msg* enters the wire (stamp epoch, log it)."""

    def on_deliver(self, msg: Message) -> bool:
        """Called when *msg* arrives at the destination endpoint.

        Return ``False`` to drop it (duplicate suppression after rollback);
        ``True`` to proceed. Channel-state recording happens here.
        """
        return True

    def on_control(self, msg: Message) -> None:
        """Called for non-app messages (markers, protocol control)."""

    def on_consume(self, msg: Message) -> None:
        """Called when the application consumes *msg* from the mailbox."""

    def send_extra(self, msg: Message):
        """Optional generator of extra blocking work charged to the sender
        before the wire transfer (e.g. a pessimistic message-log flush).
        Return ``None`` for no extra work."""
        return None


class Comm:
    """Rank-local communicator with MPI-like point-to-point operations."""

    def __init__(
        self,
        transport: Transport,
        rank: int,
        size: int,
        agent: Optional[CommAgent] = None,
    ) -> None:
        if not (0 <= rank < size):
            raise ValueError(f"rank {rank} out of range for size {size}")
        self.transport = transport
        self.engine = transport.engine
        self.rank = rank
        self.size = size
        self.agent = agent
        self.mailbox = Mailbox(self.engine, rank)
        self.mailbox.on_consume = self._on_consume
        #: app messages sent per destination rank (channel send counts).
        self.sent_counts: Dict[int, int] = {}
        #: app messages consumed per source rank (channel receive counts).
        self.consumed_counts: Dict[int, int] = {}
        #: collective-operation counter (must advance identically on every
        #: rank; checkpointed and restored with the process state).
        self.coll_counter = 0
        transport.register(rank, self._deliver)

    # -- delivery path -----------------------------------------------------

    def _deliver(self, msg: Message) -> None:
        if self.agent is not None:
            if not self.agent.on_deliver(msg):
                return  # suppressed duplicate
            if msg.kind != KIND_APP:
                self.agent.on_control(msg)
                return
        elif msg.kind != KIND_APP:
            raise SimulationError(
                f"rank {self.rank} got control message {msg!r} without an agent"
            )
        self.mailbox.deliver(msg)

    def _on_consume(self, msg: Message) -> None:
        expected = self.consumed_counts.get(msg.src, 0) + 1
        if msg.seq != expected:
            raise SimulationError(
                f"rank {self.rank} consumed message {msg!r} out of order "
                f"(expected seq {expected}); per-channel consumption must be "
                f"FIFO for checkpoint dependency accounting"
            )
        self.consumed_counts[msg.src] = msg.seq
        if self.agent is not None:
            self.agent.on_consume(msg)

    # -- point-to-point -----------------------------------------------------------

    def send(
        self, dst: int, payload: Any, tag: int = 0
    ) -> Generator[Event, Any, None]:
        """Eager send; returns after the wire time."""
        msg = self._make_app_message(dst, payload, tag)
        extra = self.agent.send_extra(msg) if self.agent is not None else None
        if extra is not None:
            msg.finalize_size()
            yield from extra
        yield from self.transport.send(msg)

    def isend(self, dst: int, payload: Any, tag: int = 0) -> Process:
        """Non-blocking send; returns a process event to optionally wait on.

        The message (and its sequence number) is created *now*, so the send
        order is fixed at call time even though the wire transfer proceeds
        in the background.
        """
        msg = self._make_app_message(dst, payload, tag)
        extra = self.agent.send_extra(msg) if self.agent is not None else None
        if extra is None:
            body = self.transport.send(msg)
        else:
            msg.finalize_size()
            body = self._isend_with_extra(extra, msg)
        proc = self.engine.process(body, name=f"isend:{self.rank}->{dst}")
        proc.defused = True  # failure surfaces via transport invariants
        return proc

    def _isend_with_extra(self, extra, msg: Message):
        yield from extra
        yield from self.transport.send(msg)

    def _make_app_message(self, dst: int, payload: Any, tag: int) -> Message:
        if dst == self.rank:
            raise ValueError(f"rank {self.rank}: self-send not supported")
        if not (0 <= dst < self.size):
            raise ValueError(f"destination {dst} out of range")
        if tag < 0:
            raise ValueError(f"negative tags are reserved, got {tag}")
        msg = Message(
            src=self.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            seq=self.transport.next_seq(self.rank, dst),
            kind=KIND_APP,
        )
        self.sent_counts[dst] = self.sent_counts.get(dst, 0) + 1
        if self.agent is not None:
            self.agent.on_send(msg)
        return msg

    def recv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Event, Any, Message]:
        """Blocking receive; returns the matched :class:`Message`."""
        msg = yield self.mailbox.recv(source, tag)
        return msg

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Oldest matching buffered message without consuming it, else None."""
        return self.mailbox.probe(source, tag)

    # -- control-plane sends (used by checkpointing schemes) ------------------

    def send_control(
        self, dst: int, kind: str, payload: Any = None, tag: int = 0, **meta: Any
    ) -> Generator[Event, Any, None]:
        """Send a protocol message (no channel sequence number, bypasses the
        application mailbox at the destination)."""
        msg = Message(
            src=self.rank,
            dst=dst,
            tag=tag,
            payload=payload,
            seq=0,
            kind=kind,
            meta=dict(meta),
        )
        if self.agent is not None:
            self.agent.on_send(msg)
        yield from self.transport.send(msg)

    # -- checkpoint/rollback support -----------------------------------------

    def channel_meta(self) -> dict:
        """Snapshot of the communication counters (goes into checkpoints)."""
        return {
            "sent": dict(self.sent_counts),
            "consumed": dict(self.consumed_counts),
            "coll_counter": self.coll_counter,
        }

    def restore_meta(self, meta: dict) -> None:
        """Restore counters from a checkpoint and rewind send sequences so
        re-executed sends reuse their original sequence numbers."""
        self.sent_counts = dict(meta["sent"])
        self.consumed_counts = dict(meta["consumed"])
        self.coll_counter = int(meta["coll_counter"])
        for dst in range(self.size):
            if dst != self.rank:
                self.transport.rewind_seq(
                    self.rank, dst, self.sent_counts.get(dst, 0)
                )

    def reset_mailbox(self) -> None:
        """Drop all buffered messages and pending receives (rollback)."""
        self.mailbox.drain()
        self.mailbox.cancel_waiters()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Comm rank={self.rank}/{self.size}>"
