"""Messages of the CHK-LIB communication layer.

Every message carries, besides payload and MPI-style ``(src, dst, tag)``
addressing:

* ``seq`` — the per-``(src, dst)`` channel sequence number. Channels are
  reliable and FIFO (as in the paper's CHK-LIB); sequence numbers make
  duplicate suppression after a rollback trivial.
* ``epoch`` — the sender's checkpoint epoch, piggybacked on every message.
  The coordinated protocols use it to classify messages as pre-/post-cut
  (Chandy–Lamport marker semantics without extra payload bytes).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = [
    "Message",
    "payload_nbytes",
    "KIND_APP",
    "KIND_MARKER",
    "KIND_CONTROL",
    "HEADER_BYTES",
    "ANY_SOURCE",
    "ANY_TAG",
]

#: message kinds
KIND_APP = "app"
KIND_MARKER = "marker"
KIND_CONTROL = "control"

#: fixed per-message header cost on the wire (addressing, seq, epoch, tag).
HEADER_BYTES = 32

#: wildcards for :meth:`repro.net.api.Comm.recv`
ANY_SOURCE = -1
ANY_TAG = -1


def payload_nbytes(payload: Any) -> int:
    """Wire size of a payload in bytes.

    NumPy arrays are costed at their buffer size (CHK-LIB shipped raw
    buffers); everything else at its pickled size. Small scalars get a
    floor of 8 bytes.
    """
    if payload is None:
        return 0
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bool, int, float)):
        return 8
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, tuple) and all(
        isinstance(p, (np.ndarray, int, float, bool, type(None))) for p in payload
    ):
        return sum(payload_nbytes(p) for p in payload)
    return len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))


@dataclass
class Message:
    """One message on the wire (or recorded into a checkpoint)."""

    src: int
    dst: int
    tag: int
    payload: Any
    seq: int = 0
    epoch: int = 0
    kind: str = KIND_APP
    #: wire size; computed at send time if left at 0.
    size: int = 0
    #: free-form protocol fields (checkpoint number, token hop, ...).
    meta: dict = field(default_factory=dict)

    def finalize_size(self) -> None:
        if self.size == 0:
            self.size = HEADER_BYTES + payload_nbytes(self.payload)

    @property
    def channel(self) -> tuple[int, int]:
        return (self.src, self.dst)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Msg {self.kind} {self.src}->{self.dst} tag={self.tag} "
            f"seq={self.seq} epoch={self.epoch} size={self.size}>"
        )
