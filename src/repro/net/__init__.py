"""Reliable FIFO message passing with an MPI-like interface (CHK-LIB layer).

Point-to-point sends occupy the sender's link engine; deliveries land in
per-rank mailboxes with MPI-style ``(source, tag)`` matching; collectives
use binomial-tree / dissemination algorithms. Checkpointing schemes attach
a :class:`CommAgent` to intercept sends, deliveries and consumptions.
"""

from .api import Comm, CommAgent
from .collectives import (
    COLL_TAG_BASE,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    scatter,
)
from .mailbox import Mailbox, RecvRequest
from .message import (
    ANY_SOURCE,
    ANY_TAG,
    HEADER_BYTES,
    KIND_APP,
    KIND_CONTROL,
    KIND_MARKER,
    Message,
    payload_nbytes,
)
from .transport import Transport

__all__ = [
    "Comm",
    "CommAgent",
    "Transport",
    "Mailbox",
    "RecvRequest",
    "Message",
    "payload_nbytes",
    "ANY_SOURCE",
    "ANY_TAG",
    "KIND_APP",
    "KIND_MARKER",
    "KIND_CONTROL",
    "HEADER_BYTES",
    "COLL_TAG_BASE",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "alltoall",
]
