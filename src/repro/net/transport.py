"""The wire: maps messages onto the machine's links.

Sending occupies the sender's outbound link engine for the transfer time
(latency + size/bandwidth, inflated by the current network pressure from
checkpoint streams crossing the interconnect), then delivers to the
destination endpoint. Per-sender FIFO falls out of the link being a
capacity-1 FIFO resource — which is exactly the ordering guarantee the
marker protocol needs (a marker sent after a cut arrives after all pre-cut
messages from that sender).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, Generator, List

from ..core.events import Event
from .message import Message

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tracing import Tracer
    from ..machine.cluster import Cluster

__all__ = ["Transport"]


class Transport:
    """Routes messages between ranks over the cluster's links."""

    #: Capture manifest (see :mod:`repro.chklib.resume`): only the wire
    #: accounting travels in a durable line. Endpoints and sequence
    #: counters are volatile — restart re-registers comms and the
    #: recovery path rewinds per-channel counters from checkpoint state.
    RESUME_FIELDS = (
        "messages_sent",
        "bytes_sent",
        "control_messages",
        "control_bytes",
    )
    VOLATILE_FIELDS = ("cluster", "engine", "tracer", "endpoints", "_next_seq")

    def __init__(self, cluster: "Cluster", tracer: "Tracer | None" = None) -> None:
        self.cluster = cluster
        self.engine = cluster.engine
        self.tracer = tracer
        #: per-rank delivery targets, registered by Comm instances.
        self.endpoints: Dict[int, Callable[[Message], None]] = {}
        #: per-(src, dst) next sequence number.
        self._next_seq: Dict[tuple[int, int], int] = {}
        # metrics
        self.messages_sent = 0
        self.bytes_sent = 0
        self.control_messages = 0
        self.control_bytes = 0

    # -- registration --------------------------------------------------------

    def register(self, rank: int, deliver: Callable[[Message], None]) -> None:
        if rank in self.endpoints:
            raise ValueError(f"rank {rank} already registered")
        self.endpoints[rank] = deliver

    # -- sequence numbers -------------------------------------------------------

    def next_seq(self, src: int, dst: int) -> int:
        """Allocate the next per-channel sequence number (1-based)."""
        key = (src, dst)
        seq = self._next_seq.get(key, 0) + 1
        self._next_seq[key] = seq
        return seq

    def rewind_seq(self, src: int, dst: int, to: int) -> None:
        """Reset a channel's send counter after a rollback, so replayed
        sends reuse the original sequence numbers (duplicate suppression)."""
        self._next_seq[(src, dst)] = int(to)

    def seq_state(self) -> Dict[tuple[int, int], int]:
        """Snapshot of all channel send counters (for checkpoint metadata)."""
        return dict(self._next_seq)

    # -- the wire -----------------------------------------------------------------

    def send(self, msg: Message) -> Generator[Event, Any, None]:
        """Transfer *msg*; blocks the calling process for the wire time.

        The sender's link slot is *claimed at call time* (not at first
        iteration of the returned generator), so a mix of ``isend`` and
        ``send`` from one rank transfers in call order — the FIFO guarantee
        the marker protocol depends on.
        """
        if msg.dst not in self.endpoints:
            raise KeyError(f"no endpoint registered for rank {msg.dst}")
        if msg.src == msg.dst:
            raise ValueError(f"self-send not allowed: {msg!r}")
        msg.finalize_size()
        link = self.cluster.tx_links[msg.src]
        req = link.request()
        return self._transfer(msg, req)

    def _transfer(self, msg: Message, req: Any) -> Generator[Event, Any, None]:
        try:
            yield req
            pressure = self.cluster.network_pressure()
            # pooled delay: one per message, recycled by the engine; the
            # (src, dst) pair routes through the topology's link cost
            yield self.engine.delay(
                self.cluster.message_time(msg.size, msg.src, msg.dst) * pressure
            )
        finally:
            req.cancel()
        self._account(msg)
        self.endpoints[msg.dst](msg)

    def _account(self, msg: Message) -> None:
        if msg.kind == "app":
            self.messages_sent += 1
            self.bytes_sent += msg.size
            if self.tracer:
                self.tracer.add("net.app_messages")
                self.tracer.add("net.app_bytes", msg.size)
        else:
            self.control_messages += 1
            self.control_bytes += msg.size
            if self.tracer:
                self.tracer.add("net.control_messages")
                self.tracer.add("net.control_bytes", msg.size)

    def deliver_local(self, msg: Message) -> None:
        """Inject a message directly into an endpoint without wire time
        (recovery re-injection of recorded channel state)."""
        if msg.dst not in self.endpoints:
            raise KeyError(f"no endpoint registered for rank {msg.dst}")
        self.endpoints[msg.dst](msg)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Transport ranks={len(self.endpoints)} "
            f"app_msgs={self.messages_sent} ctl_msgs={self.control_messages}>"
        )
