"""ASP: all-pairs shortest paths by Floyd's algorithm.

The distance matrix is row-block partitioned; iteration *k* broadcasts
pivot row *k* from its owner to everyone (a rotating one-to-all pattern,
unlike the neighbour exchanges of SOR/ISING), then every rank relaxes its
rows. Integer weights keep all results exactly comparable.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..core.rng import derive_seed
from ..net.collectives import bcast, reduce
from .base import Application

__all__ = ["ASP"]

#: "no edge" distance — big but far from overflow under repeated addition.
_INF = np.int64(1) << 40


def _partition(n: int, size: int) -> List[Tuple[int, int]]:
    base, extra = divmod(n, size)
    out, lo = [], 0
    for r in range(size):
        cnt = base + (1 if r < extra else 0)
        out.append((lo, lo + cnt))
        lo += cnt
    return out


def _make_graph(n: int, seed: int, density: float) -> np.ndarray:
    """Random directed graph with integer weights (deterministic)."""
    rng = np.random.default_rng(derive_seed(seed, "asp.graph"))
    weights = rng.integers(1, 100, size=(n, n)).astype(np.int64)
    present = rng.random(size=(n, n)) < density
    dist = np.where(present, weights, _INF)
    np.fill_diagonal(dist, 0)
    return dist


def _owner_of(row: int, parts: List[Tuple[int, int]]) -> int:
    for rank, (lo, hi) in enumerate(parts):
        if lo <= row < hi:
            return rank
    raise ValueError(f"row {row} not owned by anyone")


class ASP(Application):
    """Floyd's algorithm on ``n`` nodes (one pivot broadcast per iteration)."""

    name = "asp"

    def __init__(self, n: int = 128, density: float = 0.2,
                 flops_per_cell: float = 3.0) -> None:
        if n < 2:
            raise ValueError(f"graph too small: {n}")
        self.n = int(n)
        self.density = float(density)
        self.flops_per_cell = float(flops_per_cell)

    def describe(self) -> str:
        return f"asp(n={self.n})"

    # -- SPMD -------------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        if self.n < size:
            raise ValueError(f"graph n={self.n} smaller than ranks ({size})")
        parts = _partition(self.n, size)
        lo, hi = parts[rank]
        full = _make_graph(self.n, seed, self.density)
        return {"iter": 0, "lo": lo, "hi": hi, "rows": full[lo:hi].copy()}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        comm = ctx.comm
        parts = _partition(self.n, ctx.size)
        lo = state["lo"]
        my_rows = state["rows"].shape[0]
        step_flops = self.flops_per_cell * my_rows * self.n

        while state["iter"] < self.n:
            k = state["iter"]
            rows = state["rows"]
            owner = _owner_of(k, parts)
            pivot = rows[k - lo].copy() if owner == ctx.rank else None
            pivot = yield from bcast(comm, pivot, root=owner)
            if my_rows > 0:
                # min-plus relaxation of all local rows through pivot k
                via = rows[:, k][:, None] + pivot[None, :]
                np.minimum(rows, via, out=rows)
            yield from ctx.compute(step_flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        local_sum = int(np.minimum(state["rows"], _INF).sum())
        total = yield from reduce(comm, local_sum, operator.add, root=0)
        if ctx.rank == 0:
            return {"distsum": total, "n": self.n}
        return None

    # -- reference ------------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        dist = _make_graph(self.n, seed, self.density)
        for k in range(self.n):
            via = dist[:, k][:, None] + dist[k][None, :]
            np.minimum(dist, via, out=dist)
        return {"distsum": int(np.minimum(dist, _INF).sum()), "n": self.n}
