"""The paper's seven application benchmarks (SPMD over the CHK-LIB API).

Tightly-coupled: SOR, ISING (halo exchange), GAUSS, ASP (pivot broadcast),
NBODY (ring pipeline). Loosely-coupled: TSP, NQUEENS (static task split,
end-only reduction).
"""

from .asp import ASP
from .base import Application, app_rng
from .gauss import Gauss
from .ising import Ising
from .nbody import NBody
from .nqueens import NQueens
from .sor import SOR
from .tsp import TSP

ALL_APPS = (Ising, SOR, ASP, NBody, Gauss, TSP, NQueens)

__all__ = [
    "Application",
    "app_rng",
    "SOR",
    "Ising",
    "ASP",
    "NBody",
    "Gauss",
    "TSP",
    "NQueens",
    "ALL_APPS",
]
