"""ISING: Metropolis simulation of a 2-D spin glass (Edwards–Anderson).

Random bond couplings (the "glass") live in each rank's state next to the
spins, so the checkpoint size grows with the lattice — matching the paper's
use of ISING at many sizes as the state-size sweep of Table 1.

Checkerboard (two-colour) Metropolis sweeps on a row-block-partitioned
lattice with halo exchange before each half-sweep — the same tightly-coupled
neighbour structure as SOR, plus per-rank random streams that live *in the
checkpointed state* (the piecewise-determinism contract: replay after a
rollback draws the same random numbers).

Spins are integers and acceptance thresholds compare identically under
replay, so the parallel result, the serial reference and any post-recovery
re-execution agree exactly.
"""

from __future__ import annotations

import operator
from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..core.rng import derive_seed
from ..net.collectives import reduce
from .base import Application

__all__ = ["Ising"]

_TAG_UP = 1
_TAG_DOWN = 2


def _partition(rows: int, size: int) -> List[Tuple[int, int]]:
    base, extra = divmod(rows, size)
    out, lo = [], 0
    for r in range(size):
        cnt = base + (1 if r < extra else 0)
        out.append((lo, lo + cnt))
        lo += cnt
    return out


def _couplings(n: int, seed: int) -> Tuple[np.ndarray, np.ndarray]:
    """Full coupling fields: ``jh[i, j]`` bonds (i,j)-(i,j+1 mod n),
    ``jv[i, j]`` bonds (i,j)-(i+1 mod n,j). Gaussian disorder."""
    rng = np.random.default_rng(derive_seed(seed, "ising.bonds"))
    jh = rng.normal(0.0, 1.0, size=(n, n))
    jv = rng.normal(0.0, 1.0, size=(n, n))
    return jh, jv


def _init_spins(rank: int, lo: int, hi: int, n: int, seed: int) -> np.ndarray:
    """This rank's rows plus two halo rows, spins in {-1, +1}."""
    rng = np.random.default_rng(derive_seed(seed, f"ising.init.r{rank}"))
    block = np.empty((hi - lo + 2, n), dtype=np.int8)
    block[1:-1] = rng.choice(np.array([-1, 1], dtype=np.int8), size=(hi - lo, n))
    block[0] = 0  # halos filled by the first exchange
    block[-1] = 0
    return block


def _sweep_colour(
    block: np.ndarray,
    jh_rows: np.ndarray,
    jv_rows: np.ndarray,
    row_offset: int,
    colour: int,
    beta: float,
    rng: np.random.Generator,
) -> None:
    """Metropolis-update all *colour* sites of the interior rows in place.

    ``jh_rows`` covers global rows ``row_offset .. row_offset+m-1``;
    ``jv_rows`` covers ``row_offset-1 .. row_offset+m-1`` (one extra row
    above, for the bond to the upper halo). Same-colour sites share no
    bonds, so the vectorised simultaneous update is an exact sweep.
    """
    m, n = block.shape[0] - 2, block.shape[1]
    if m <= 0:
        return
    interior = block[1:-1]
    up = block[0:-2]
    down = block[2:]
    left = np.roll(interior, 1, axis=1)
    right = np.roll(interior, -1, axis=1)
    j_up = jv_rows[:-1]  # bond to row above
    j_down = jv_rows[1:]  # bond to row below
    j_right = jh_rows  # bond to column j+1
    j_left = np.roll(jh_rows, 1, axis=1)  # bond to column j-1
    field = j_up * up + j_down * down + j_left * left + j_right * right
    d_e = 2.0 * interior * field  # energy cost of flipping
    gi = (row_offset + np.arange(m))[:, None]
    gj = np.arange(n)[None, :]
    mask = (gi + gj) % 2 == colour
    # one uniform draw per lattice site (fixed count -> deterministic
    # stream consumption independent of acceptance)
    u = rng.random(size=interior.shape)
    flip = mask & (u < np.exp(-beta * np.maximum(d_e, 0.0)))
    interior[flip] = -interior[flip]


class Ising(Application):
    """2-D spin glass: ``n x n`` lattice, ``iters`` full Metropolis sweeps."""

    name = "ising"

    def __init__(self, n: int = 256, iters: int = 100, beta: float = 0.8,
                 flops_per_cell: float = 50.0) -> None:
        if n < 2:
            raise ValueError(f"lattice too small: {n}")
        self.n = int(n)
        self.iters = int(iters)
        self.beta = float(beta)
        self.flops_per_cell = float(flops_per_cell)

    def describe(self) -> str:
        return f"ising(n={self.n}, iters={self.iters})"

    # -- SPMD ---------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        if self.n < size:
            raise ValueError(f"lattice n={self.n} smaller than ranks ({size})")
        lo, hi = _partition(self.n, size)[rank]
        jh, jv = _couplings(self.n, seed)
        return {
            "iter": 0,
            "lo": lo,
            "hi": hi,
            "spins": _init_spins(rank, lo, hi, self.n, seed),
            # bond slices this rank needs (periodic row indexing)
            "jh": jh[lo:hi].copy(),
            "jv": jv[np.arange(lo - 1, hi) % self.n].copy(),
            "rng": np.random.default_rng(derive_seed(seed, f"ising.sweep.r{rank}")),
        }

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        comm = ctx.comm
        lo, hi = state["lo"], state["hi"]
        # periodic rows: every rank has both neighbours on the ring
        up = (ctx.rank - 1) % ctx.size
        down = (ctx.rank + 1) % ctx.size
        my_rows = hi - lo
        half_flops = self.flops_per_cell * my_rows * self.n / 2.0

        while state["iter"] < self.iters:
            spins = state["spins"]
            for colour in (0, 1):
                if ctx.size > 1:
                    yield from comm.send(up, spins[1].copy(), tag=_TAG_DOWN)
                    yield from comm.send(down, spins[-2].copy(), tag=_TAG_UP)
                    # consume in send order (matters when size == 2 and
                    # both halos come over the same channel): every rank
                    # sends its DOWN-tagged row first.
                    msg = yield from comm.recv(source=down, tag=_TAG_DOWN)
                    spins[-1, :] = msg.payload
                    msg = yield from comm.recv(source=up, tag=_TAG_UP)
                    spins[0, :] = msg.payload
                else:
                    spins[0, :] = spins[-2]
                    spins[-1, :] = spins[1]
                _sweep_colour(
                    spins, state["jh"], state["jv"], lo, colour,
                    self.beta, state["rng"],
                )
                yield from ctx.compute(half_flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        local_mag = int(state["spins"][1:-1].sum())
        total_mag = yield from reduce(comm, local_mag, operator.add, root=0)
        if ctx.rank == 0:
            return {"magnetisation": total_mag, "n": self.n, "iters": self.iters}
        return None

    # -- reference ------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        """Replays the exact parallel computation sequentially: same block
        decomposition, same per-rank streams, same colour ordering. Blocks
        of one colour are independent given the current lattice, so the
        block-sequential update equals the parallel one bit for bit."""
        parts = _partition(self.n, size)
        jh, jv = _couplings(self.n, seed)
        lattice = np.empty((self.n, self.n), dtype=np.int8)
        rngs = []
        for rank, (lo, hi) in enumerate(parts):
            block = _init_spins(rank, lo, hi, self.n, seed)
            lattice[lo:hi] = block[1:-1]
            rngs.append(
                np.random.default_rng(derive_seed(seed, f"ising.sweep.r{rank}"))
            )
        for _ in range(self.iters):
            for colour in (0, 1):
                # snapshot so every block sees pre-half-sweep halo rows,
                # exactly like the message exchange does
                before = lattice.copy()
                for rank, (lo, hi) in enumerate(parts):
                    if hi == lo:
                        continue
                    block = np.empty((hi - lo + 2, self.n), dtype=np.int8)
                    block[1:-1] = lattice[lo:hi]
                    block[0] = before[(lo - 1) % self.n]
                    block[-1] = before[hi % self.n]
                    _sweep_colour(
                        block,
                        jh[lo:hi],
                        jv[np.arange(lo - 1, hi) % self.n],
                        lo,
                        colour,
                        self.beta,
                        rngs[rank],
                    )
                    lattice[lo:hi] = block[1:-1]
        return {
            "magnetisation": int(lattice.sum()),
            "n": self.n,
            "iters": self.iters,
        }
