"""SOR: red-black successive over-relaxation for Laplace's equation.

The classic tightly-coupled stencil benchmark from the paper: the grid is
row-block partitioned; every iteration does two halo exchanges (one per
colour) with the up/down neighbours, then relaxes the interior. A blocked
neighbour stalls the whole chain within one iteration — the communication
structure that penalises unsynchronised checkpoint blocking.
"""

from __future__ import annotations

import operator
from functools import lru_cache
from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..net.collectives import reduce
from .base import Application

__all__ = ["SOR"]

_TAG_UP = 1  #: row sent to the lower-index neighbour
_TAG_DOWN = 2  #: row sent to the higher-index neighbour


def _boundary_value(i: np.ndarray, j: np.ndarray, n: int) -> np.ndarray:
    """Deterministic Dirichlet boundary (smooth, non-trivial)."""
    return np.sin(2.0 * np.pi * i / n) + np.cos(2.0 * np.pi * j / n)


def _init_block(lo: int, hi: int, n: int) -> np.ndarray:
    """Rows ``lo-1 .. hi`` of the initial grid (halos included).

    Vectorised over rows (the per-row loop cost O(rows) numpy round-trips
    per rank, i.e. O(n) across a build at scale); the elementwise sin/cos
    arithmetic is unchanged, so the floats are bit-identical.
    """
    rows = np.arange(lo - 1, hi + 1)
    block = np.zeros((rows.size, n), dtype=np.float64)
    cols = np.arange(n)
    # fixed boundary: global rows 0 and n-1, columns 0 and n-1
    edge = (rows == 0) | (rows == n - 1)
    if edge.any():
        block[edge] = (
            np.sin(2.0 * np.pi * rows[edge] / n)[:, None]
            + np.cos(2.0 * np.pi * cols / n)[None, :]
        )
    inner = ~edge
    if inner.any():
        s = np.sin(2.0 * np.pi * rows[inner] / n)
        block[inner, 0] = s + np.cos(2.0 * np.pi * cols[0] / n)
        block[inner, -1] = s + np.cos(2.0 * np.pi * cols[n - 1] / n)
    return block


#: per-shape scratch buffers for _sweep (keyed by interior shape).
_SCRATCH: Dict[Tuple[int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _sweep(block: np.ndarray, row_offset: int, omega: float, phase: int) -> None:
    """Relax one colour of the interior of *block* in place.

    ``block`` has one halo row on each side; its row 1 is global row
    ``row_offset``. Same-colour cells are independent, so the vectorised
    simultaneous update is exact red-black Gauss–Seidel.

    The colour mask is a checkerboard over global ``(i + j)`` parity, so
    instead of materialising a boolean mask and fancy-indexing (the old,
    much slower spelling) the update is written back through two strided
    slice copies; the arithmetic is evaluated in the same operation order,
    so the resulting floats are bit-identical.
    """
    m, n = block.shape[0] - 2, block.shape[1]
    if m <= 0:
        return
    bufs = _SCRATCH.get((m, n))
    if bufs is None:
        bufs = _SCRATCH[(m, n)] = (
            np.empty((m, n - 2), dtype=np.float64),
            np.empty((m, n - 2), dtype=np.float64),
        )
    neighbours, updated = bufs
    np.add(block[0:-2, 1:-1], block[2:, 1:-1], out=neighbours)
    neighbours += block[1:-1, 0:-2]
    neighbours += block[1:-1, 2:]
    interior = block[1:-1, 1:-1]
    np.multiply(interior, 1.0 - omega, out=updated)
    neighbours *= omega * 0.25
    updated += neighbours
    # interior[di, jj] is global cell (row_offset + di, jj + 1): its colour
    # matches ``phase`` when (di + jj) % 2 == q
    q = (phase + row_offset + 1) % 2
    interior[0::2, q::2] = updated[0::2, q::2]
    interior[1::2, 1 - q :: 2] = updated[1::2, 1 - q :: 2]


@lru_cache(maxsize=None)
def _partition(n: int, size: int) -> Tuple[Tuple[int, int], ...]:
    """Split interior rows ``1 .. n-2`` into contiguous per-rank ranges.

    Cached: every rank asks for the same table, which would otherwise
    cost O(size) per rank — O(size^2) per run at scale.
    """
    interior = n - 2
    base, extra = divmod(interior, size)
    ranges = []
    lo = 1
    for r in range(size):
        cnt = base + (1 if r < extra else 0)
        ranges.append((lo, lo + cnt))
        lo += cnt
    return tuple(ranges)


class SOR(Application):
    """Red-black SOR on an ``n x n`` grid for ``iters`` iterations."""

    name = "sor"

    def __init__(self, n: int = 256, iters: int = 100, omega: float = 1.5,
                 flops_per_cell: float = 8.0) -> None:
        if n < 4:
            raise ValueError(f"grid too small: {n}")
        self.n = int(n)
        self.iters = int(iters)
        self.omega = float(omega)
        self.flops_per_cell = float(flops_per_cell)

    def describe(self) -> str:
        return f"sor(n={self.n}, iters={self.iters})"

    def comm_peers(self, rank: int, size: int) -> List[int]:
        """±1 halo neighbours plus this rank's partners in the final
        root-0 binomial reduce (the only collective SOR issues). The
        binomial relation is symmetric: a rank lists its parent, the
        parent lists it back as a child."""
        peers = set()
        if rank > 0:
            peers.add(rank - 1)
        if rank < size - 1:
            peers.add(rank + 1)
        mask = 1
        while mask < size:
            if rank & mask:
                peers.add(rank - mask)  # reduce parent
                break
            if rank + mask < size:
                peers.add(rank + mask)  # reduce child
            mask <<= 1
        return sorted(peers)

    # -- SPMD ------------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        if self.n - 2 < size:
            raise ValueError(
                f"grid n={self.n} has fewer interior rows than ranks ({size})"
            )
        lo, hi = _partition(self.n, size)[rank]
        return {"iter": 0, "lo": lo, "hi": hi, "grid": _init_block(lo, hi, self.n)}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        comm = ctx.comm
        lo, hi = state["lo"], state["hi"]
        up = ctx.rank - 1 if ctx.rank > 0 else None
        down = ctx.rank + 1 if ctx.rank < ctx.size - 1 else None
        my_rows = hi - lo
        phase_flops = self.flops_per_cell * my_rows * self.n / 2.0

        while state["iter"] < self.iters:
            grid = state["grid"]
            for phase in (0, 1):
                # halo exchange: push our border rows, pull the neighbours'
                if up is not None:
                    yield from comm.send(up, grid[1].copy(), tag=_TAG_DOWN)
                if down is not None:
                    yield from comm.send(down, grid[-2].copy(), tag=_TAG_UP)
                if up is not None:
                    msg = yield from comm.recv(source=up, tag=_TAG_UP)
                    grid[0, :] = msg.payload
                if down is not None:
                    msg = yield from comm.recv(source=down, tag=_TAG_DOWN)
                    grid[-1, :] = msg.payload
                if my_rows > 0:
                    _sweep(grid, lo, self.omega, phase)
                yield from ctx.compute(phase_flops)
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        local_sum = float(state["grid"][1:-1, :].sum()) if my_rows > 0 else 0.0
        total = yield from reduce(comm, local_sum, operator.add, root=0)
        if ctx.rank == 0:
            return {"sum": total, "n": self.n, "iters": self.iters}
        return None

    # -- reference ----------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        grid = _init_block(1, self.n - 1, self.n)  # whole interior + halos
        for _ in range(self.iters):
            for phase in (0, 1):
                _sweep(grid, 1, self.omega, phase)
        return {"sum": float(grid[1:-1, :].sum()), "n": self.n, "iters": self.iters}
