"""NBODY: gravitational N-body with a ring pipeline.

Bodies are block-partitioned; each step circulates the body blocks around
a ring so every rank accumulates forces against every block (systolic
all-pairs), then integrates with a leapfrog step. Force accumulation order
is fixed (own block, then blocks from rank-1, rank-2, …), so a recovered
run and the block-ordered serial reference are bit-identical.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..core.rng import derive_seed
from ..net.collectives import gather
from .base import Application

__all__ = ["NBody"]

_TAG_RING = 3
_G = 1.0
_EPS2 = 1e-3  #: softening


def _partition(n: int, size: int) -> List[Tuple[int, int]]:
    base, extra = divmod(n, size)
    out, lo = [], 0
    for r in range(size):
        cnt = base + (1 if r < extra else 0)
        out.append((lo, lo + cnt))
        lo += cnt
    return out


def _init_block(rank: int, count: int, seed: int) -> Tuple[np.ndarray, ...]:
    rng = np.random.default_rng(derive_seed(seed, f"nbody.init.r{rank}"))
    pos = rng.uniform(-1.0, 1.0, size=(count, 3))
    vel = rng.uniform(-0.1, 0.1, size=(count, 3))
    mass = rng.uniform(0.5, 1.5, size=count)
    return pos, vel, mass


def _block_forces(
    tpos: np.ndarray, spos: np.ndarray, smass: np.ndarray
) -> np.ndarray:
    """Softened gravitational force of source block on target block."""
    if tpos.size == 0 or spos.size == 0:
        return np.zeros_like(tpos)
    dr = spos[None, :, :] - tpos[:, None, :]  # (t, s, 3)
    r2 = (dr * dr).sum(axis=2) + _EPS2
    inv_r3 = r2 ** -1.5
    return _G * (dr * (smass[None, :] * inv_r3)[:, :, None]).sum(axis=1)


class NBody(Application):
    """``n`` bodies for ``iters`` leapfrog steps (``dt`` each)."""

    name = "nbody"

    def __init__(self, n: int = 512, iters: int = 10, dt: float = 1e-3,
                 flops_per_pair: float = 24.0) -> None:
        if n < 1:
            raise ValueError(f"need at least one body, got {n}")
        self.n = int(n)
        self.iters = int(iters)
        self.dt = float(dt)
        self.flops_per_pair = float(flops_per_pair)

    def describe(self) -> str:
        return f"nbody(n={self.n}, iters={self.iters})"

    # -- SPMD -----------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        if self.n < size:
            raise ValueError(f"n={self.n} bodies on {size} ranks")
        lo, hi = _partition(self.n, size)[rank]
        pos, vel, mass = _init_block(rank, hi - lo, seed)
        return {"iter": 0, "pos": pos, "vel": vel, "mass": mass}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        comm = ctx.comm
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        my = state["pos"].shape[0]
        pair_flops = self.flops_per_pair * my * (self.n / max(1, ctx.size))

        while state["iter"] < self.iters:
            pos, vel, mass = state["pos"], state["vel"], state["mass"]
            force = _block_forces(pos, pos, mass)
            yield from ctx.compute(pair_flops)
            # copy: the payload must stay immutable while in flight /
            # recorded in channel state, but we mutate pos at step end.
            travel = (pos.copy(), mass.copy())
            for _hop in range(ctx.size - 1):
                yield from comm.send(right, travel, tag=_TAG_RING)
                msg = yield from comm.recv(source=left, tag=_TAG_RING)
                travel = msg.payload
                force += _block_forces(pos, travel[0], travel[1])
                yield from ctx.compute(pair_flops)
            # leapfrog (kick-drift with acceleration = F/m)
            vel += (force / mass[:, None]) * self.dt
            pos += vel * self.dt
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        blocks = yield from gather(comm, (state["pos"], state["vel"]), root=0)
        if ctx.rank == 0:
            all_pos = np.concatenate([b[0] for b in blocks], axis=0)
            all_vel = np.concatenate([b[1] for b in blocks], axis=0)
            return {
                "pos_sum": float(all_pos.sum()),
                "vel_sum": float(all_vel.sum()),
                "n": self.n,
            }
        return None

    # -- reference --------------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        """Same block decomposition and the same per-target accumulation
        order (own block, then left neighbour's, then its left, …), so the
        floating-point result is identical to the parallel run."""
        parts = _partition(self.n, size)
        blocks = [
            _init_block(r, hi - lo, seed) for r, (lo, hi) in enumerate(parts)
        ]
        pos = [b[0] for b in blocks]
        vel = [b[1] for b in blocks]
        mass = [b[2] for b in blocks]
        for _ in range(self.iters):
            forces = []
            for r in range(size):
                f = _block_forces(pos[r], pos[r], mass[r])
                for hop in range(1, size):
                    src = (r - hop) % size
                    f += _block_forces(pos[r], pos[src], mass[src])
                forces.append(f)
            for r in range(size):
                vel[r] += (forces[r] / mass[r][:, None]) * self.dt
                pos[r] += vel[r] * self.dt
        all_pos = np.concatenate(pos, axis=0)
        all_vel = np.concatenate(vel, axis=0)
        return {
            "pos_sum": float(all_pos.sum()),
            "vel_sum": float(all_vel.sum()),
            "n": self.n,
        }
