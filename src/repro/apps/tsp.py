"""TSP: branch-and-bound over a dense city map.

Work is split into fixed tasks (all ``(first, second)`` city pairs after
the start city), distributed round-robin over the ranks; every rank solves
its tasks with depth-first branch-and-bound seeded by a greedy tour bound.
Ranks only communicate at the end (min-reduction of the best tours) —
the *loosely-coupled* extreme among the benchmarks: a rank blocked inside
a checkpoint stalls nobody else.

Determinism note: the paper's TSP was a task farm with dynamic scheduling,
which is not piecewise deterministic (assignment depends on timing). The
static split preserves the performance-relevant structure (independent
workers, tiny communication) while satisfying the replay contract; the
optimum is identical either way. Recorded in DESIGN.md.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Tuple

import numpy as np

from ..core.rng import derive_seed
from ..net.collectives import reduce
from .base import Application

__all__ = ["TSP"]


def _make_map(n_cities: int, seed: int) -> np.ndarray:
    """Symmetric integer distance map (dense)."""
    rng = np.random.default_rng(derive_seed(seed, "tsp.map"))
    d = rng.integers(10, 100, size=(n_cities, n_cities)).astype(np.int64)
    d = (d + d.T) // 2
    np.fill_diagonal(d, 0)
    return d


def _greedy_bound(dist: np.ndarray) -> int:
    """Nearest-neighbour tour cost: the initial upper bound."""
    n = dist.shape[0]
    visited = [0]
    total = 0
    current = 0
    remaining = set(range(1, n))
    while remaining:
        nxt = min(remaining, key=lambda c: (int(dist[current, c]), c))
        total += int(dist[current, nxt])
        remaining.discard(nxt)
        visited.append(nxt)
        current = nxt
    total += int(dist[current, 0])
    return total


def _solve_task(
    dist: np.ndarray, first: int, second: int, best: int
) -> Tuple[int, int]:
    """Branch-and-bound all tours starting ``0 -> first -> second``.

    Returns ``(best_cost, nodes_explored)``; ``best`` is the incoming
    incumbent (tours >= best are pruned).
    """
    n = dist.shape[0]
    d = dist  # local alias
    min_out = d + np.where(np.eye(n, dtype=bool), np.int64(1) << 30, 0)
    cheapest = min_out.min(axis=1)  # cheapest outgoing edge per city

    nodes = 0
    path = [0, first, second]
    used = [False] * n
    used[0] = used[first] = used[second] = True
    start_cost = int(d[0, first] + d[first, second])
    best_cost = best

    def dfs(last: int, cost: int, depth: int) -> None:
        nonlocal nodes, best_cost
        nodes += 1
        if depth == n:
            total = cost + int(d[last, 0])
            if total < best_cost:
                best_cost = total
            return
        # admissible bound: cheapest outgoing edge of every unvisited city
        remaining_bound = cost + int(
            sum(int(cheapest[c]) for c in range(n) if not used[c])
        )
        if remaining_bound >= best_cost:
            return
        for c in range(1, n):
            if not used[c]:
                nc = cost + int(d[last, c])
                if nc < best_cost:
                    used[c] = True
                    dfs(c, nc, depth + 1)
                    used[c] = False

    if start_cost < best_cost:
        dfs(second, start_cost, 3)
    return best_cost, nodes


class TSP(Application):
    """Branch-and-bound TSP over ``n_cities`` (paper: 16-city dense map)."""

    name = "tsp"

    def __init__(self, n_cities: int = 12, flops_per_node: float = 60.0) -> None:
        if n_cities < 4:
            raise ValueError(f"too few cities: {n_cities}")
        self.n_cities = int(n_cities)
        self.flops_per_node = float(flops_per_node)

    def describe(self) -> str:
        return f"tsp(cities={self.n_cities})"

    def _tasks(self) -> List[Tuple[int, int]]:
        n = self.n_cities
        return [
            (f, s) for f in range(1, n) for s in range(1, n) if s != f
        ]

    # -- SPMD ---------------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        dist = _make_map(self.n_cities, seed)
        return {"iter": 0, "dist": dist, "best": _greedy_bound(dist)}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        tasks = self._tasks()
        mine = tasks[ctx.rank :: ctx.size]

        while state["iter"] < len(mine):
            first, second = mine[state["iter"]]
            best, nodes = _solve_task(state["dist"], first, second, state["best"])
            state["best"] = min(state["best"], best)
            yield from ctx.compute(self.flops_per_node * nodes)
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        total_best = yield from reduce(ctx.comm, state["best"], min, root=0)
        if ctx.rank == 0:
            return {"optimum": int(total_best), "cities": self.n_cities}
        return None

    # -- reference -------------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        dist = _make_map(self.n_cities, seed)
        best = _greedy_bound(dist)
        for first, second in self._tasks():
            best, _ = _solve_task(dist, first, second, best)
        return {"optimum": int(best), "cities": self.n_cities}
