"""Application framework: the SPMD contract the checkpointing layer needs.

An :class:`Application` is an SPMD program written against the MPI-like
:class:`~repro.net.api.Comm`, driven per rank as a simulation coroutine.
The contract that makes transparent checkpoint/restart work:

1. **Single state dict** — everything needed to resume (arrays, counters,
   the RNG generator) lives in the dict returned by :meth:`make_state`,
   mutated in place. The top-level dict object identity must not change.
2. **Iteration structure** — ``state["iter"]`` counts completed outer
   iterations; :meth:`run` must resume correctly from any value of it (the
   canonical loop is ``while state["iter"] < n: ...; state["iter"] += 1;
   yield from ctx.checkpoint_point()``).
3. **Checkpoint points** — ``ctx.checkpoint_point()`` is yielded once per
   outer iteration, at a moment where the state dict fully describes the
   process (no half-applied updates).
4. **Piecewise determinism** — re-running from a restored state reproduces
   the execution exactly: same sends (bit-identical payloads, same order),
   same receives consumed per channel in the same order. Randomness must
   come from the generator stored in the state dict.
5. **Immutable payloads** — a received payload is never mutated in place
   (copy it into local arrays); recorded channel state shares payloads.

Simulated computation time is charged explicitly via ``ctx.compute(flops)``
with analytically-derived work; the *data* computation itself is real NumPy
so that checkpoints have genuine content and results can be validated
against a serial reference.
"""

from __future__ import annotations

from typing import Any, Dict, Generator

from ..core.rng import derive_seed

__all__ = ["Application", "app_rng"]


def app_rng(seed: int, app_name: str, rank: int):
    """The deterministic per-rank data stream for one application run."""
    import numpy as np

    return np.random.default_rng(derive_seed(seed, f"app.{app_name}.r{rank}"))


class Application:
    """Base class for the benchmark applications."""

    #: short identifier used in tables and reports.
    name = "app"
    #: fixed process-image bytes saved with every checkpoint on top of the
    #: application data (code + stack + heap of a system-level checkpoint).
    image_bytes = 128 * 1024

    # -- SPMD interface ---------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        """Fresh rank-local state (must include ``iter``)."""
        raise NotImplementedError

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        """The SPMD program; returns the global result on rank 0."""
        raise NotImplementedError

    def comm_peers(self, rank: int, size: int):
        """Ranks that *rank* may exchange application messages with, or
        ``None`` when the communication graph is unknown/dense.

        Used by coordinated schemes with ``marker_scope="peers"`` to send
        Chandy-Lamport markers only along channels that can actually carry
        messages — O(N·degree) markers instead of O(N²), which is what
        makes marker rounds tractable at thousands of ranks. The returned
        relation must be symmetric (if s can message r, r's peers include
        s and vice versa) and must cover every send the application can
        issue, collectives included; ``None`` (the default) keeps the
        all-pairs marker flood.
        """
        return None

    # -- validation interface -----------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        """Reference result computed without the simulator (same numerics)."""
        raise NotImplementedError

    # -- reporting -----------------------------------------------------------

    def describe(self) -> str:
        """One-line parameter summary for table rows."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"
