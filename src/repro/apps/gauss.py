"""GAUSS: dense linear solve by Gaussian elimination.

Rows are distributed cyclically (row *i* on rank ``i % P``) so the work per
pivot stays balanced as elimination proceeds. Every pivot step broadcasts
the pivot row from its owner; everyone eliminates its remaining local rows.
The matrix is made strictly diagonally dominant so elimination without
pivoting is numerically safe (a row-swap pivot search would add an
allreduce per step but no new checkpointing behaviour).

After elimination the triangular system is gathered to rank 0 and
back-substituted there (charged as compute).
"""

from __future__ import annotations

from typing import Any, Dict, Generator

import numpy as np

from ..core.rng import derive_seed
from ..net.collectives import bcast, gather
from .base import Application

__all__ = ["Gauss"]


def _make_system(n: int, seed: int) -> np.ndarray:
    """Augmented matrix [A | b], A strictly diagonally dominant."""
    rng = np.random.default_rng(derive_seed(seed, "gauss.system"))
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    a[np.arange(n), np.arange(n)] = n + rng.uniform(1.0, 2.0, size=n)
    b = rng.uniform(-1.0, 1.0, size=(n, 1))
    return np.concatenate([a, b], axis=1)


class Gauss(Application):
    """Solve an ``n x n`` dense system, row-cyclic over the ranks."""

    name = "gauss"

    def __init__(self, n: int = 128, flops_per_cell: float = 2.0) -> None:
        if n < 2:
            raise ValueError(f"system too small: {n}")
        self.n = int(n)
        self.flops_per_cell = float(flops_per_cell)

    def describe(self) -> str:
        return f"gauss(n={self.n})"

    # -- SPMD -------------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        full = _make_system(self.n, seed)
        mine = np.arange(rank, self.n, size)
        return {"iter": 0, "rows": full[mine].copy(), "row_ids": mine}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        comm = ctx.comm
        n = self.n

        while state["iter"] < n:
            k = state["iter"]
            rows, ids = state["rows"], state["row_ids"]
            owner = k % ctx.size
            if owner == ctx.rank:
                local_k = int(np.searchsorted(ids, k))
                pivot = rows[local_k].copy()
            else:
                pivot = None
            pivot = yield from bcast(comm, pivot, root=owner)
            # eliminate column k from all my rows below k
            below = ids > k
            m = int(below.sum())
            if m > 0:
                factors = rows[below, k] / pivot[k]
                rows[below, k:] -= factors[:, None] * pivot[k:]
            yield from ctx.compute(self.flops_per_cell * m * (n + 1 - k))
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        # gather the triangular system at rank 0 and back-substitute
        blocks = yield from gather(comm, (state["row_ids"], state["rows"]), root=0)
        if ctx.rank != 0:
            return None
        tri = np.empty((n, n + 1), dtype=np.float64)
        for ids, rows in blocks:
            tri[ids] = rows
        yield from ctx.compute(self.flops_per_cell * n * n / 2)
        x = _back_substitute(tri)
        return {"x_sum": float(x.sum()), "x": x, "n": n}

    # -- reference -------------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        aug = _make_system(self.n, seed)
        n = self.n
        for k in range(n):
            pivot = aug[k].copy()
            below = np.arange(n) > k
            factors = aug[below, k] / pivot[k]
            aug[below, k:] -= factors[:, None] * pivot[k:]
        x = _back_substitute(aug)
        return {"x_sum": float(x.sum()), "x": x, "n": n}

    def reference_solution(self, seed: int) -> np.ndarray:
        """Direct NumPy solve, independent of the elimination code path."""
        aug = _make_system(self.n, seed)
        return np.linalg.solve(aug[:, :-1], aug[:, -1])


def _back_substitute(tri: np.ndarray) -> np.ndarray:
    n = tri.shape[0]
    x = np.zeros(n, dtype=np.float64)
    for i in range(n - 1, -1, -1):
        x[i] = (tri[i, -1] - tri[i, i + 1 : n] @ x[i + 1 :]) / tri[i, i]
    return x
