"""NQUEENS: count the solutions of the N-queens problem.

Tasks are the valid placements of the first two rows, split round-robin
over the ranks; each task is counted by a bitmask depth-first search. Like
TSP, this is the loosely-coupled regime: ranks only talk at the final
sum-reduction.

The per-task DFS is memoised process-wide (the same board is re-counted
across schemes, runs and post-crash replays); simulated time is charged
from the explored-node count, so memoisation never distorts the measured
overheads.
"""

from __future__ import annotations

import functools
import operator
from typing import Any, Dict, Generator, List, Tuple

from ..net.collectives import reduce
from .base import Application

__all__ = ["NQueens"]


@functools.lru_cache(maxsize=4096)
def _count_from(n: int, cols: int, diag1: int, diag2: int, row: int) -> Tuple[int, int]:
    """Solutions and explored nodes below a partial placement (bitmasks)."""
    if row == n:
        return 1, 1
    full = (1 << n) - 1
    free = full & ~(cols | diag1 | diag2)
    solutions = 0
    nodes = 1
    while free:
        bit = free & -free
        free ^= bit
        s, m = _count_from(
            n, cols | bit, ((diag1 | bit) << 1) & full, (diag2 | bit) >> 1, row + 1
        )
        solutions += s
        nodes += m
    return solutions, nodes


class NQueens(Application):
    """Count N-queens solutions for board size ``n``."""

    name = "nqueens"

    def __init__(self, n: int = 11, flops_per_node: float = 40.0) -> None:
        if n < 4:
            raise ValueError(f"board too small for prefix tasks: {n}")
        self.n = int(n)
        self.flops_per_node = float(flops_per_node)

    def describe(self) -> str:
        return f"nqueens(n={self.n})"

    def _tasks(self) -> List[Tuple[int, int]]:
        """Non-attacking placements (c0, c1) of the first two rows."""
        n = self.n
        return [
            (c0, c1)
            for c0 in range(n)
            for c1 in range(n)
            if c1 != c0 and abs(c1 - c0) != 1
        ]

    # -- SPMD -------------------------------------------------------------------

    def make_state(self, rank: int, size: int, seed: int) -> Dict[str, Any]:
        return {"iter": 0, "count": 0}

    def run(self, ctx, state: Dict[str, Any]) -> Generator[Any, Any, Any]:
        n = self.n
        full = (1 << n) - 1
        tasks = self._tasks()
        mine = tasks[ctx.rank :: ctx.size]

        while state["iter"] < len(mine):
            c0, c1 = mine[state["iter"]]
            b0, b1 = 1 << c0, 1 << c1
            cols = b0 | b1
            diag1 = (((b0 << 1) | b1) << 1) & full
            diag2 = ((b0 >> 1) | b1) >> 1
            solutions, nodes = _count_from(n, cols, diag1, diag2, 2)
            state["count"] += solutions
            yield from ctx.compute(self.flops_per_node * nodes)
            state["iter"] += 1
            yield from ctx.checkpoint_point()

        total = yield from reduce(ctx.comm, state["count"], operator.add, root=0)
        if ctx.rank == 0:
            return {"solutions": int(total), "n": n}
        return None

    # -- reference -----------------------------------------------------------------

    def serial_result(self, size: int, seed: int) -> Any:
        total, _nodes = _count_from(self.n, 0, 0, 0, 0)
        return {"solutions": total, "n": self.n}
