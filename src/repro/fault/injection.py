"""Deterministic stable-storage fault injection.

A :class:`StorageFaultInjector` is installed into the global
:class:`~repro.machine.storage.StableStorage` server by the runtime when
the run's :class:`~repro.fault.model.FaultModel` declares storage faults.
Every write/read attempt asks the injector for a verdict *before* the
transfer starts; a failing operation completes a deterministic fraction of
the transfer (a torn write pays real time) and then raises
:class:`~repro.core.errors.StorageFault`.

Silent corruption is decided per *checkpoint* rather than per transfer:
schemes call :meth:`corrupts_checkpoint` when a checkpoint write finishes,
and a True verdict flips the stored image's checksum — nobody notices
until recovery validates the record.

All randomness comes from one named substream of the run's master seed
(via :class:`~repro.core.rng.RngStreams`), and the simulation engine is
deterministic, so injection sequences are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .model import StorageFaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["OpVerdict", "StorageFaultInjector"]

#: name of the RNG substream the injector draws from.
RNG_STREAM = "fault.storage"


@dataclass(frozen=True)
class OpVerdict:
    """Outcome decided for one storage operation before it runs."""

    fail: bool = False
    #: fraction of the transfer completed before the failure (torn write).
    fraction: float = 0.0


_OK = OpVerdict()


class StorageFaultInjector:
    """Per-run oracle deciding which storage operations fail or corrupt."""

    def __init__(self, spec: StorageFaultSpec, rng: "np.random.Generator") -> None:
        self.spec = spec
        self._rng = rng
        # attempt counters (1-based at decision time; retries count anew)
        self.write_attempts = 0
        self.read_attempts = 0
        self.ckpt_writes = 0
        # injected-fault tallies
        self.write_faults = 0
        self.read_faults = 0
        self.corruptions = 0

    # -- per-operation verdicts ----------------------------------------------

    def on_write(self, tag: str = "") -> OpVerdict:
        self.write_attempts += 1
        fail = self.write_attempts in self.spec.fail_writes_at
        if not fail and self.spec.write_fail_p > 0.0:
            fail = float(self._rng.random()) < self.spec.write_fail_p
        if not fail:
            return _OK
        self.write_faults += 1
        return OpVerdict(fail=True, fraction=float(self._rng.random()))

    def on_read(self, tag: str = "") -> OpVerdict:
        self.read_attempts += 1
        fail = self.read_attempts in self.spec.fail_reads_at
        if not fail and self.spec.read_fail_p > 0.0:
            fail = float(self._rng.random()) < self.spec.read_fail_p
        if not fail:
            return _OK
        self.read_faults += 1
        return OpVerdict(fail=True, fraction=float(self._rng.random()))

    # -- per-checkpoint silent corruption ------------------------------------

    def corrupts_checkpoint(self, rank: int, index: int) -> bool:
        """Decide whether the just-completed checkpoint write rotted."""
        self.ckpt_writes += 1
        corrupt = (rank, index) in self.spec.corrupt_ckpts
        if not corrupt and self.spec.corrupt_p > 0.0:
            corrupt = float(self._rng.random()) < self.spec.corrupt_p
        if corrupt:
            self.corruptions += 1
        return corrupt

    # -- durable-line support --------------------------------------------------

    _COUNTERS = (
        "write_attempts",
        "read_attempts",
        "ckpt_writes",
        "write_faults",
        "read_faults",
        "corruptions",
    )

    def export_state(self) -> dict:
        """Counter snapshot for durable lines (the RNG stream position is
        exported separately, at the :class:`~repro.core.rng.RngStreams`
        level, together with every other substream)."""
        return {name: getattr(self, name) for name in self._COUNTERS}

    def restore_state(self, state: dict) -> None:
        for name in self._COUNTERS:
            setattr(self, name, int(state[name]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StorageFaultInjector wf={self.write_faults}/{self.write_attempts} "
            f"rf={self.read_faults}/{self.read_attempts} "
            f"corrupt={self.corruptions}>"
        )


def make_injector(spec: StorageFaultSpec, rngs) -> Optional[StorageFaultInjector]:
    """An injector for *spec*, or None when the spec injects nothing."""
    if not spec.any_faults:
        return None
    return StorageFaultInjector(spec, rngs.get(RNG_STREAM))
