"""Builders for crash schedules."""

from __future__ import annotations

from typing import List

import numpy as np

from ..chklib.runtime import FaultPlan
from ..core.rng import derive_seed

__all__ = ["single_crash", "periodic_plan", "exponential_plan", "crash_times"]


def single_crash(at: float) -> FaultPlan:
    """One whole-machine failure at time *at*."""
    return FaultPlan.single(at)


def periodic_plan(period: float, horizon: float, offset: float = 0.0) -> FaultPlan:
    """A crash every *period* seconds from *offset* up to *horizon*."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    times = []
    t = offset + period
    while t <= horizon:
        times.append(t)
        t += period
    return FaultPlan(crash_times=tuple(times))


def crash_times(
    mtbf: float, horizon: float, seed: int = 0, stream: str = "faults"
) -> List[float]:
    """Deterministic exponential (Poisson-process) crash arrivals covering
    ``[0, horizon]`` (the last arrival lands beyond the horizon)."""
    if mtbf <= 0:
        raise ValueError(f"MTBF must be positive, got {mtbf}")
    rng = np.random.default_rng(derive_seed(seed, f"faults.{stream}"))
    times: List[float] = []
    t = 0.0
    while t < horizon:
        t += float(rng.exponential(mtbf))
        times.append(t)
    return times


def exponential_plan(
    mtbf: float, horizon: float, seed: int = 0, stream: str = "faults"
) -> FaultPlan:
    """A :class:`FaultPlan` with exponential inter-arrival times."""
    return FaultPlan(crash_times=tuple(crash_times(mtbf, horizon, seed, stream)))
