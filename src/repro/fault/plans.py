"""Builders for crash schedules and fault models."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.rng import derive_seed
from .model import FaultModel, FaultPlan, RetryPolicy, StorageFaultSpec

__all__ = [
    "single_crash",
    "periodic_plan",
    "exponential_plan",
    "crash_times",
    "node_crash_model",
    "exponential_node_model",
    "storage_fault_model",
]


def single_crash(at: float) -> FaultPlan:
    """One whole-machine failure at time *at*."""
    return FaultPlan.single(at)


def periodic_plan(period: float, horizon: float, offset: float = 0.0) -> FaultPlan:
    """A crash every *period* seconds from *offset* up to *horizon*."""
    if period <= 0:
        raise ValueError(f"period must be positive, got {period}")
    times = []
    t = offset + period
    while t <= horizon:
        times.append(t)
        t += period
    return FaultPlan(crash_times=tuple(times))


def crash_times(
    mtbf: float, horizon: float, seed: int = 0, stream: str = "faults"
) -> List[float]:
    """Deterministic exponential (Poisson-process) crash arrivals covering
    ``[0, horizon]`` (the last arrival lands beyond the horizon)."""
    if mtbf <= 0:
        raise ValueError(f"MTBF must be positive, got {mtbf}")
    rng = np.random.default_rng(derive_seed(seed, f"faults.{stream}"))
    times: List[float] = []
    t = 0.0
    while t < horizon:
        t += float(rng.exponential(mtbf))
        times.append(t)
    return times


def exponential_plan(
    mtbf: float, horizon: float, seed: int = 0, stream: str = "faults"
) -> FaultPlan:
    """A :class:`FaultPlan` with exponential inter-arrival times."""
    return FaultPlan(crash_times=tuple(crash_times(mtbf, horizon, seed, stream)))


def node_crash_model(
    schedule: Dict[int, Sequence[float]], **kw
) -> FaultModel:
    """A :class:`FaultModel` with per-node crash schedules
    (``{rank: (t, ...)}``)."""
    return FaultModel(node_crash_times=schedule, **kw)


def exponential_node_model(
    mtbf: float,
    horizon: float,
    ranks: Sequence[int],
    seed: int = 0,
    stream: str = "node-faults",
    **kw,
) -> FaultModel:
    """Per-node exponential crash arrivals: each rank fails independently
    with the given per-node MTBF (deterministic per seed and stream)."""
    schedule = {
        int(r): tuple(crash_times(mtbf, horizon, seed, f"{stream}.r{r}"))
        for r in ranks
    }
    return FaultModel(node_crash_times=schedule, **kw)


def storage_fault_model(
    write_fail_p: float = 0.0,
    read_fail_p: float = 0.0,
    corrupt_p: float = 0.0,
    crash_times: Sequence[float] = (),
    retry: Optional[RetryPolicy] = None,
    **spec_kw,
) -> FaultModel:
    """A :class:`FaultModel` dominated by stable-storage faults, optionally
    combined with whole-machine crashes."""
    return FaultModel(
        machine_crash_times=tuple(crash_times),
        storage=StorageFaultSpec(
            write_fail_p=write_fail_p,
            read_fail_p=read_fail_p,
            corrupt_p=corrupt_p,
            **spec_kw,
        ),
        retry=retry or RetryPolicy(),
    )
