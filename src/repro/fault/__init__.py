"""Failure injection: fault models, plan builders and the storage injector.

The runtime consumes a :class:`~repro.fault.model.FaultModel` describing
whole-machine crashes, per-node crash schedules and stable-storage faults
(transient op failures + silent checkpoint corruption), plus the
:class:`~repro.fault.model.RetryPolicy` governing retry-with-backoff. The
legacy :class:`~repro.fault.model.FaultPlan` (crash times only) is still
accepted everywhere and normalised internally.
"""

from .injection import OpVerdict, StorageFaultInjector, make_injector
from .model import CrashEvent, FaultModel, FaultPlan, RetryPolicy, StorageFaultSpec
from .plans import (
    crash_times,
    exponential_node_model,
    exponential_plan,
    node_crash_model,
    periodic_plan,
    single_crash,
    storage_fault_model,
)

__all__ = [
    "FaultPlan",
    "FaultModel",
    "CrashEvent",
    "RetryPolicy",
    "StorageFaultSpec",
    "StorageFaultInjector",
    "OpVerdict",
    "make_injector",
    "single_crash",
    "periodic_plan",
    "exponential_plan",
    "crash_times",
    "node_crash_model",
    "exponential_node_model",
    "storage_fault_model",
]
