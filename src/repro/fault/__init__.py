"""Failure injection: plan builders for crash schedules.

The runtime consumes a :class:`~repro.chklib.runtime.FaultPlan` (a list of
crash times); this package builds them: single crashes, periodic schedules
and deterministic exponential (Poisson) sequences for MTBF studies.
"""

from .plans import exponential_plan, periodic_plan, single_crash

__all__ = ["single_crash", "periodic_plan", "exponential_plan"]
