"""The fault model: what can fail, when, and how hard we fight back.

The seed's fault model was a single knob — :class:`FaultPlan`, a list of
whole-machine crash times. Real checkpoint/restart stacks spend most of
their robustness budget elsewhere: partial node failures, failed or torn
stable-storage writes, and silently corrupted checkpoint images (cf. the
multi-level validation/retry machinery of thread-based MPI checkpointing
runtimes). :class:`FaultModel` generalises the plan into three axes:

* **machine crashes** — the classic whole-application failure (every rank
  loses its volatile state; stable storage and local disks survive);
* **per-node crashes** — a subset of ranks fails at a scheduled time. The
  application still restarts as a gang (the paper's recovery semantics),
  but a crashed *node* is replaced hardware: its private local disk is
  lost, so under two-level storage only checkpoints already trickled to
  the global server survive for the failed ranks;
* **stable-storage faults** — transient write/read failures (probabilistic
  or scheduled per operation), plus silent corruption of stored checkpoint
  images, detected only by checksum validation at recovery time.

:class:`RetryPolicy` configures the defensive side: bounded
retry-with-backoff on failed storage operations. Schemes retry writes
(coordinated aborts the 2PC round cleanly when a rank exhausts its
retries; independent schemes drop the local checkpoint and carry on), and
recovery retries restore reads before quarantining a checkpoint and
falling back to an older recovery line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "FaultPlan",
    "RetryPolicy",
    "StorageFaultSpec",
    "CrashEvent",
    "FaultModel",
]


def _clean_times(times: Sequence[float], what: str) -> Tuple[float, ...]:
    cleaned = tuple(float(t) for t in times)
    for t in cleaned:
        if t != t or t < 0:  # NaN or negative
            raise ValueError(f"{what} must be non-negative, got {t!r}")
    return tuple(sorted(cleaned))


@dataclass(frozen=True)
class FaultPlan:
    """When to crash the machine (whole-application failures).

    Kept as the simple legacy interface; the runtime normalises it into a
    :class:`FaultModel`. Crash times are validated (non-negative, no NaN)
    and stored sorted, so unsorted input cannot silently skip injections.
    """

    crash_times: Sequence[float] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crash_times", _clean_times(self.crash_times, "crash time")
        )

    @staticmethod
    def single(at: float) -> "FaultPlan":
        return FaultPlan(crash_times=(float(at),))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for failed stable-storage operations."""

    #: retries after the first failed attempt (0 = fail immediately).
    max_retries: int = 4
    #: delay before the first retry (seconds).
    backoff_base: float = 0.05
    #: multiplier applied per subsequent retry (exponential backoff).
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def delay(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based)."""
        return self.backoff_base * (self.backoff_factor ** attempt)


@dataclass(frozen=True)
class StorageFaultSpec:
    """Stable-storage fault injection (global server only).

    Transient operation failures abort the transfer partway (a torn
    write); silent corruption lets the write complete but flips the stored
    image so its checksum no longer validates. All randomness draws from a
    dedicated named substream of the run's master seed, so injection is
    fully deterministic per seed.
    """

    #: per-operation probability that a write fails transiently.
    write_fail_p: float = 0.0
    #: per-operation probability that a read fails transiently.
    read_fail_p: float = 0.0
    #: probability that a completed checkpoint write is silently corrupted.
    corrupt_p: float = 0.0
    #: scheduled failures: 1-based global write-attempt indices that fail.
    fail_writes_at: Tuple[int, ...] = ()
    #: scheduled failures: 1-based global read-attempt indices that fail.
    fail_reads_at: Tuple[int, ...] = ()
    #: scheduled silent corruption of specific checkpoints: (rank, index).
    corrupt_ckpts: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("write_fail_p", "read_fail_p", "corrupt_p"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        object.__setattr__(
            self, "fail_writes_at", tuple(int(i) for i in self.fail_writes_at)
        )
        object.__setattr__(
            self, "fail_reads_at", tuple(int(i) for i in self.fail_reads_at)
        )
        object.__setattr__(
            self,
            "corrupt_ckpts",
            tuple((int(r), int(i)) for r, i in self.corrupt_ckpts),
        )

    @property
    def any_faults(self) -> bool:
        return bool(
            self.write_fail_p
            or self.read_fail_p
            or self.corrupt_p
            or self.fail_writes_at
            or self.fail_reads_at
            or self.corrupt_ckpts
        )


@dataclass(frozen=True)
class CrashEvent:
    """One scheduled failure: which ranks die, and whose private local
    disks die with them (node replacement vs. machine reboot)."""

    time: float
    ranks: Tuple[int, ...]
    #: ranks whose local disks are lost (per-node failures only; a
    #: whole-machine crash reboots but keeps the disks).
    disks_lost: Tuple[int, ...] = ()


@dataclass(frozen=True)
class FaultModel:
    """Everything that goes wrong in one run, and the retry knobs."""

    #: whole-machine crash times (all ranks fail; disks survive).
    machine_crash_times: Tuple[float, ...] = ()
    #: per-rank crash schedules ``{rank: (t, ...)}`` (failed ranks lose
    #: their local disks; the application still restarts as a gang).
    node_crash_times: Mapping[int, Sequence[float]] = field(default_factory=dict)
    #: stable-storage fault injection (None = storage never fails).
    storage: StorageFaultSpec = field(default_factory=StorageFaultSpec)
    #: retry/backoff behaviour for failed storage operations.
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "machine_crash_times",
            _clean_times(self.machine_crash_times, "machine crash time"),
        )
        norm: Dict[int, Tuple[float, ...]] = {}
        for rank, times in dict(self.node_crash_times).items():
            if int(rank) < 0:
                raise ValueError(f"node rank must be >= 0, got {rank!r}")
            norm[int(rank)] = _clean_times(times, f"node {rank} crash time")
        object.__setattr__(self, "node_crash_times", norm)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_plan(cls, plan: FaultPlan, **kw) -> "FaultModel":
        """Wrap a legacy :class:`FaultPlan` (whole-machine crashes only)."""
        return cls(machine_crash_times=tuple(plan.crash_times), **kw)

    @classmethod
    def machine_crash(cls, at: float, **kw) -> "FaultModel":
        return cls(machine_crash_times=(float(at),), **kw)

    @classmethod
    def node_crash(cls, rank: int, at: float, **kw) -> "FaultModel":
        return cls(node_crash_times={int(rank): (float(at),)}, **kw)

    # -- queries --------------------------------------------------------------

    @property
    def has_crashes(self) -> bool:
        return bool(self.machine_crash_times) or any(
            ts for ts in self.node_crash_times.values()
        )

    def crash_events(self, n_ranks: int) -> List[CrashEvent]:
        """The merged, time-ordered failure schedule.

        Same-time failures merge into one event (simultaneous node
        crashes take their union of ranks; a machine crash at the same
        instant subsumes everything but keeps ``node_failure`` for the
        ranks whose disks die).
        """
        for rank in self.node_crash_times:
            if rank >= n_ranks:
                raise ValueError(
                    f"node crash scheduled for rank {rank} on a "
                    f"{n_ranks}-rank machine"
                )
        by_time: Dict[float, Dict[str, set]] = {}
        for t in self.machine_crash_times:
            by_time.setdefault(t, {"ranks": set(), "disks": set()})["ranks"].update(
                range(n_ranks)
            )
        for rank, times in self.node_crash_times.items():
            for t in times:
                slot = by_time.setdefault(t, {"ranks": set(), "disks": set()})
                slot["ranks"].add(rank)
                slot["disks"].add(rank)
        return [
            CrashEvent(
                time=t,
                ranks=tuple(sorted(slot["ranks"])),
                disks_lost=tuple(sorted(slot["disks"])),
            )
            for t, slot in sorted(by_time.items())
        ]
