"""Traced smoke runs: exercise every scheme end-to-end and audit the trace.

One small workload runs uncheckpointed to size the interval, then once per
scheme with three checkpoint rounds and a mid-run machine crash, so the
audited traces cover cuts, background writes, commits, rollback, message
replay and (for the GC variant) space reclamation. The trace invariant
engine replays every recorded event stream afterwards.
"""

from __future__ import annotations

from typing import List, Tuple

from .trace_check import TraceReport, check_runtime

__all__ = ["SMOKE_SCHEMES", "run_smoke"]

#: the paper's five measured schemes plus the coverage extras: the logged
#: independent variant (message replay from stable logs), a GC-enabled
#: one (gc.run / gc.discard events), and the third protocol family —
#: CIC under both index rules (proto.cic.* events, forced-index audit)
#: and sender-based message logging (proto.mlog.logged, replay bounds).
SMOKE_SCHEMES = (
    "coord_nb",
    "indep",
    "coord_nbm",
    "indep_m",
    "coord_nbms",
    "indep_log",
    "indep_m_log_gc",
    "cic",
    "cic_fdas",
    "indep_m_mlog",
)


def _make_scheme(name: str, times, interval: float):
    from ..chklib import IndependentScheme
    from ..experiments.harness import INDEP_SKEW_FRACTION, make_scheme

    if name == "indep_m_log_gc":
        return IndependentScheme.IndepM(
            times, skew=INDEP_SKEW_FRACTION * interval, logging=True, gc=True
        )
    return make_scheme(name, times, interval)


def run_smoke(
    seed: int = 0, crash: bool = True, verbose: bool = False
) -> List[Tuple[str, TraceReport]]:
    """Run the smoke battery; returns ``[(scheme, TraceReport), ...]``."""
    from ..chklib.runtime import CheckpointRuntime
    from ..experiments.workloads import quick_workloads
    from ..fault.model import FaultModel

    workload = quick_workloads()[0]
    normal = CheckpointRuntime(workload.make(), seed=seed).run()
    interval = normal.sim_time / 4.5
    times = [interval * (i + 1) for i in range(3)]
    results: List[Tuple[str, TraceReport]] = []
    for name in SMOKE_SCHEMES:
        scheme = _make_scheme(name, times, interval)
        fault = (
            FaultModel.machine_crash(interval * 2.5) if crash else None
        )
        runtime = CheckpointRuntime(
            workload.make(), scheme=scheme, seed=seed, fault_model=fault
        )
        runtime.run()
        report = check_runtime(runtime)
        if verbose:
            print(f"  {name:<16} {report.summary()}")
        results.append((name, report))
    return results
