"""Shared static-analysis front-end: one AST walk per module.

Every analysis pass (and the hygiene lint that predates them) consumes the
same pre-digested view of the tree, built here in a single recursive walk
per module:

* :class:`Module` — the parsed source plus flat, walk-ordered indexes of
  the nodes the passes care about (calls with their dotted callee names,
  expression statements, assignments, ``try`` blocks, asserts, imports)
  and the module's ``# verify: allow[...]`` pragma lines.
* :class:`FunctionInfo` — per function/method: own-scope generator-ness
  (contains ``yield``/``yield from`` outside nested defs), the returns it
  makes, and its qualified name.
* :class:`ClassInfo` — per class: base-class simple names, every
  ``self.X = ...`` attribute the methods assign, and the class-level
  capture manifests (``RESUME_FIELDS``/``VOLATILE_FIELDS``/
  ``RESUME_COMPONENTS`` tuples of strings).
* :class:`Project` — the whole-program view: modules, symbol tables by
  simple name, and the *generator name* classification the yield-discipline
  pass keys on (a simple name is generator-returning only when **every**
  project function with that name is a generator or a thin wrapper that
  returns one — ambiguous names like ``run`` are deliberately excluded).

Waivers: a finding on line *L* is suppressed when line *L* carries a
``# verify: allow`` comment, optionally naming rules
(``# verify: allow[cleanup-mutation]``) — the same pragma the hygiene lint
has always honoured, shared by every pass.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "ALLOW_RE",
    "GENERATOR_PRIMITIVES",
    "FunctionInfo",
    "ClassInfo",
    "Module",
    "Project",
    "default_target",
    "dotted_name",
    "build_project",
]

#: ``# verify: allow`` / ``# verify: allow[rule-a, rule-b]``
ALLOW_RE = re.compile(r"#\s*verify:\s*allow(?:\[([a-z\-,\s]+)\])?")

#: generator-returning simulation primitives that are inert unless driven
#: by ``yield``/``yield from`` (or handed to the engine/spawn explicitly).
GENERATOR_PRIMITIVES = {
    "timeout",
    "compute",
    "mem_copy",
    "send",
    "recv",
    "sendrecv",
    "send_control",
    "stable_write",
    "stable_read",
    "at_point",
    "checkpoint_point",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def default_target() -> Path:
    """The package root analysed by default (``src/repro``)."""
    return Path(__file__).resolve().parent.parent.parent


_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.Lambda,)


@dataclass
class FunctionInfo:
    """One function or method, with its own-scope properties."""

    node: ast.AST
    name: str
    qualname: str
    class_name: Optional[str]
    module: "Module"
    is_generator: bool
    #: ``return <expr>`` values in the function's own scope.
    returns: List[ast.expr] = field(default_factory=list)

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass
class ClassInfo:
    """One class: bases, assigned instance attributes, capture manifests."""

    node: ast.ClassDef
    name: str
    module: "Module"
    #: simple names of the base expressions (terminal attribute segment).
    bases: Tuple[str, ...]
    #: class-level ``NAME = ("a", "b", ...)`` string-tuple assignments
    #: whose name ends in ``_FIELDS`` or ``_COMPONENTS``.
    manifests: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: ``self.X`` attributes assigned anywhere in the class body, with the
    #: first line each was assigned on.
    self_fields: Dict[str, int] = field(default_factory=dict)
    methods: List[FunctionInfo] = field(default_factory=list)

    def declared_fields(self) -> Set[str]:
        out: Set[str] = set()
        for names in self.manifests.values():
            out.update(names)
        return out


class Module:
    """One parsed module plus walk-ordered node indexes."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.lines: Sequence[str] = source.splitlines()
        self.syntax_error: Optional[SyntaxError] = None
        try:
            self.tree: Optional[ast.AST] = ast.parse(source, filename=path)
        except SyntaxError as exc:
            self.tree = None
            self.syntax_error = exc
        # walk-ordered indexes (empty for unparsable modules)
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassInfo] = []
        #: every call, with the dotted name of its callee (or None).
        self.calls: List[Tuple[ast.Call, Optional[str]]] = []
        self.expr_statements: List[ast.Expr] = []
        self.asserts: List[ast.Assert] = []
        self.imports: List[ast.Import] = []
        self.import_froms: List[ast.ImportFrom] = []
        self.tries: List[ast.Try] = []
        # module-level import facts (for the hygiene rules)
        self.imports_random = False
        self.imports_numpy = False
        self.numpy_aliases: Set[str] = {"numpy"}
        self.from_time_names: Set[str] = set()
        if self.tree is not None:
            self._index()

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "Module":
        return cls(path, source)

    @classmethod
    def from_file(cls, path: Path) -> "Module":
        return cls(str(path), path.read_text(encoding="utf-8"))

    # -- pragma waivers -------------------------------------------------------

    def allowed(self, lineno: int, rule: str) -> bool:
        """Does line *lineno* waive *rule* with a ``# verify: allow``?"""
        if not (1 <= lineno <= len(self.lines)):
            return False
        m = ALLOW_RE.search(self.lines[lineno - 1])
        if not m:
            return False
        rules = m.group(1)
        if rules is None:
            return True
        return rule in {r.strip() for r in rules.split(",")}

    # -- the single walk ------------------------------------------------------

    def _index(self) -> None:
        for alias in [
            a for node in ast.walk(self.tree) if isinstance(node, ast.Import)
            for a in node.names
        ]:
            if alias.name == "random":
                self.imports_random = True
            if alias.name == "numpy":
                self.imports_numpy = True
                self.numpy_aliases.add(alias.asname or "numpy")
        self._walk(self.tree, class_stack=[], func_stack=[])

    def _walk(self, node: ast.AST, class_stack, func_stack) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Import):
                self.imports.append(child)
            elif isinstance(child, ast.ImportFrom):
                self.import_froms.append(child)
                if child.module == "time":
                    for alias in child.names:
                        if alias.name in ("time", "perf_counter", "monotonic"):
                            self.from_time_names.add(alias.asname or alias.name)
            elif isinstance(child, ast.Call):
                self.calls.append((child, dotted_name(child.func)))
            elif isinstance(child, ast.Expr):
                self.expr_statements.append(child)
            elif isinstance(child, ast.Assert):
                self.asserts.append(child)
            elif isinstance(child, ast.Try):
                self.tries.append(child)
            elif isinstance(child, ast.ClassDef):
                info = ClassInfo(
                    node=child,
                    name=child.name,
                    module=self,
                    bases=tuple(
                        b for b in (
                            base.id if isinstance(base, ast.Name)
                            else base.attr if isinstance(base, ast.Attribute)
                            else None
                            for base in child.bases
                        ) if b is not None
                    ),
                )
                self._collect_manifests(child, info)
                self.classes.append(info)
                self._walk(child, class_stack + [info], func_stack)
                continue
            elif isinstance(child, _FUNC_NODES):
                cls = class_stack[-1] if class_stack else None
                qual = ".".join(
                    [c.name for c in class_stack]
                    + [f.name for f in func_stack]
                    + [child.name]
                )
                info = FunctionInfo(
                    node=child,
                    name=child.name,
                    qualname=qual,
                    class_name=cls.name if cls else None,
                    module=self,
                    is_generator=_own_scope_has_yield(child),
                    returns=[
                        r.value
                        for r in _own_scope_nodes(child, ast.Return)
                        if r.value is not None
                    ],
                )
                self.functions.append(info)
                if cls is not None:
                    cls.methods.append(info)
                    _collect_self_assigns(child, cls)
                self._walk(child, class_stack, func_stack + [info])
                continue
            elif class_stack and isinstance(child, (ast.Assign, ast.AugAssign)):
                # class-level (non-method) assigns were already handled by
                # _collect_manifests; still descend for nested calls.
                pass
            self._walk(child, class_stack, func_stack)

    @staticmethod
    def _collect_manifests(cls_node: ast.ClassDef, info: ClassInfo) -> None:
        for stmt in cls_node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if not (
                    target.id.endswith("_FIELDS")
                    or target.id.endswith("_COMPONENTS")
                ):
                    continue
                names = _string_tuple(stmt.value)
                if names is not None:
                    info.manifests[target.id] = names


def _string_tuple(node: ast.expr) -> Optional[Tuple[str, ...]]:
    """A literal tuple/list of string constants, or None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for el in node.elts:
        if isinstance(el, ast.Constant) and isinstance(el.value, str):
            out.append(el.value)
        else:
            return None
    return tuple(out)


def _own_scope_children(node: ast.AST):
    """Yield descendants of *node* without entering nested scopes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, _SCOPE_NODES):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def _own_scope_nodes(node: ast.AST, kind) -> List[ast.AST]:
    return [c for c in _own_scope_children(node) if isinstance(c, kind)]


def _own_scope_has_yield(func: ast.AST) -> bool:
    return any(
        isinstance(c, (ast.Yield, ast.YieldFrom))
        for c in _own_scope_children(func)
    )


def _collect_self_assigns(func: ast.AST, cls: ClassInfo) -> None:
    """Record ``self.X`` attribute stores in *func*'s own scope."""
    for child in _own_scope_children(func):
        targets: List[ast.expr] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        for target in targets:
            for t in _flatten_targets(target):
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    cls.self_fields.setdefault(t.attr, t.lineno)


def _flatten_targets(target: ast.expr):
    if isinstance(target, (ast.Tuple, ast.List)):
        for el in target.elts:
            yield from _flatten_targets(el)
    else:
        yield target


class Project:
    """The whole-program view the passes operate on."""

    def __init__(self, modules: List[Module], whole_program: bool = False) -> None:
        self.modules = modules
        #: True when this project is the full ``src/repro`` tree — enables
        #: global-completeness checks (stale vocabulary, never-emitted
        #: subscriptions) that would misfire on partial file sets.
        self.whole_program = whole_program
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}
        for mod in modules:
            for fn in mod.functions:
                self.functions_by_name.setdefault(fn.name, []).append(fn)
            for cls in mod.classes:
                self.classes_by_name.setdefault(cls.name, []).append(cls)
        self.generator_names: Set[str] = self._classify_generators()

    # -- generator classification --------------------------------------------

    def _classify_generators(self) -> Set[str]:
        """Simple names whose every project definition is a generator (or a
        wrapper returning one). Computed to a fixed point so wrappers of
        wrappers classify too (``Ctx.checkpoint_point`` → ``at_point``)."""
        gen: Set[str] = set()
        for name, fns in self.functions_by_name.items():
            if fns and all(f.is_generator for f in fns):
                gen.add(name)
        known = gen | GENERATOR_PRIMITIVES
        changed = True
        while changed:
            changed = False
            for name, fns in self.functions_by_name.items():
                if name in gen:
                    continue
                if fns and all(
                    f.is_generator or self._wraps_generator(f, known)
                    for f in fns
                ):
                    gen.add(name)
                    known.add(name)
                    changed = True
        return gen

    @staticmethod
    def _wraps_generator(fn: FunctionInfo, known: Set[str]) -> bool:
        """Every valued return is a call to a known generator name (and
        there is at least one) — a thin forwarding wrapper."""
        if not fn.returns:
            return False
        for value in fn.returns:
            if not isinstance(value, ast.Call):
                return False
            dotted = dotted_name(value.func)
            terminal = dotted.split(".")[-1] if dotted else None
            if terminal not in known:
                return False
        return True

    def subclasses_of(self, roots: Iterable[str]) -> List[ClassInfo]:
        """All classes transitively derived (by simple base name) from any
        of *roots*, roots included."""
        names = set(roots)
        changed = True
        while changed:
            changed = False
            for name, classes in self.classes_by_name.items():
                if name in names:
                    continue
                if any(b in names for cls in classes for b in cls.bases):
                    names.add(name)
                    changed = True
        return [
            cls
            for name in sorted(names)
            for cls in self.classes_by_name.get(name, [])
        ]

    def ancestry(self, cls: ClassInfo) -> List[ClassInfo]:
        """*cls* plus every project class reachable through base names."""
        seen: Dict[int, ClassInfo] = {id(cls): cls}
        queue = [cls]
        while queue:
            cur = queue.pop()
            for base in cur.bases:
                for parent in self.classes_by_name.get(base, []):
                    if id(parent) not in seen:
                        seen[id(parent)] = parent
                        queue.append(parent)
        return list(seen.values())


def iter_python_files(paths: Optional[Iterable[Path]] = None) -> List[Path]:
    roots = [Path(p) for p in paths] if paths else [default_target()]
    files: List[Path] = []
    for root in roots:
        files.extend(sorted(root.rglob("*.py")) if root.is_dir() else [root])
    return files


def build_project(paths: Optional[Iterable[Path]] = None) -> Project:
    """Parse and index every ``*.py`` under *paths* (default: src/repro)."""
    whole = paths is None
    modules = [Module.from_file(f) for f in iter_python_files(paths)]
    return Project(modules, whole_program=whole)
