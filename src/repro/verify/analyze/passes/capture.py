"""Resume-capture completeness: every stateful attribute is accounted for.

Bitwise-identical resume (PR 5) only holds if ``CheckpointRuntime.run``'s
halt capture reaches *every* mutable attribute of the runtime, schemes,
agents, policies, transport, and storage. The capture used to be a
hand-maintained field list inside ``export_line`` — a new scheme field
silently broke resume until a test happened to cover it.

Capture is now manifest-driven: each class declares

* ``RESUME_FIELDS`` — attributes captured into the durable line,
* ``VOLATILE_FIELDS`` — attributes deliberately rebuilt on restart
  (engine handles, caches, bound references),
* ``RESUME_COMPONENTS`` — sub-objects captured via their own
  ``export_state()``/manifest,

and ``export_line``/``_apply_resume`` iterate the manifests. This pass
closes the loop statically:

``capture-completeness``
    a class derived from one of the capture roots assigns ``self.X``
    somewhere in its body, but ``X`` appears in no manifest anywhere in
    its (project-visible) ancestry — so halt/resume would silently drop
    it.
"""

from __future__ import annotations

from typing import List, Set

from ..findings import Finding
from ..frontend import Project

__all__ = ["capture_pass", "CAPTURE_ROOTS"]

RULE = "capture-completeness"

#: base classes whose subclasses carry resume-relevant state.
CAPTURE_ROOTS = (
    "CheckpointRuntime",
    "Scheme",
    "SchemeAgent",
    "CheckpointPolicy",
    "Transport",
    "StableStorage",
    "StoragePlane",
    "Topology",
)


def capture_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for cls in project.subclasses_of(CAPTURE_ROOTS):
        declared: Set[str] = set()
        for ancestor in project.ancestry(cls):
            declared.update(ancestor.declared_fields())
        for attr in sorted(cls.self_fields):
            if attr in declared:
                continue
            line = cls.self_fields[attr]
            if cls.module.allowed(line, RULE):
                continue
            findings.append(
                Finding(
                    rule=RULE,
                    path=cls.module.path,
                    line=line,
                    col=0,
                    message=(
                        f"`{cls.name}.{attr}` is assigned but listed in no "
                        f"capture manifest (RESUME_FIELDS / VOLATILE_FIELDS "
                        f"/ RESUME_COMPONENTS) — halt/resume would silently "
                        f"drop it"
                    ),
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings
