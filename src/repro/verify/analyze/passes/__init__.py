"""The analyzer's passes, in the order ``run_passes`` executes them.

Each pass is a function ``(Project) -> List[Finding]`` (hygiene is
additionally usable per-module, which is how the legacy ``lint`` layer
drives it). Pragma waivers (``# verify: allow[rule]``) are honoured by
every pass through :meth:`Module.allowed`.
"""

from __future__ import annotations

from .hygiene import hygiene_pass, module_hygiene
from .yield_discipline import yield_discipline_pass
from .cleanup_mutation import cleanup_mutation_pass
from .capture import capture_pass
from .trace_conformance import trace_conformance_pass
from .nondet_taint import nondet_taint_pass
from .backend_purity import backend_purity_pass

__all__ = [
    "ALL_PASSES",
    "hygiene_pass",
    "module_hygiene",
    "yield_discipline_pass",
    "cleanup_mutation_pass",
    "capture_pass",
    "trace_conformance_pass",
    "nondet_taint_pass",
    "backend_purity_pass",
]

#: (name, pass) in execution order.
ALL_PASSES = (
    ("hygiene", hygiene_pass),
    ("yield-discipline", yield_discipline_pass),
    ("cleanup-mutation", cleanup_mutation_pass),
    ("capture-completeness", capture_pass),
    ("trace-conformance", trace_conformance_pass),
    ("nondet-taint", nondet_taint_pass),
    ("backend-purity", backend_purity_pass),
)
