"""Nondeterminism taint: order-unstable values reaching observable sinks.

The hygiene lint bans the obvious entropy sources (wall clock, global
RNG). The subtler determinism killers are *order-unstable* values —
``set``/``frozenset`` iteration order, ``id()``, ``hash()`` of objects,
``os.environ`` — which are perfectly legal right up until they flow into
something externally observable: a trace event (breaks invariant audits
and golden traces), RNG seeding (breaks bit-identical replay), or report
output (breaks the byte-compared resume sweep).

``nondet-taint``
    intraprocedural forward taint, per function: taint starts at an
    unstable source, propagates through assignments, loops over tainted
    iterables, containers and string formatting, and is *cleansed* by
    order-fixing operations (``sorted``, ``min``, ``max``, ``len``,
    ``sum``). A tainted expression used as an argument to a sink —
    ``tracer.event(...)``/``tracer.sample(...)``, ``.seed(...)``,
    ``RngStreams(...)``, ``print(...)`` — is flagged.

Statements are processed in source order twice, so taint carried around
a loop back-edge still reaches a sink above its source line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..findings import Finding
from ..frontend import (
    FunctionInfo,
    Module,
    Project,
    _own_scope_children,
    dotted_name,
)

__all__ = ["nondet_taint_pass"]

RULE = "nondet-taint"

#: calls that return order-stable results whatever their input.
_CLEANSERS = {"sorted", "min", "max", "len", "sum", "repr", "str", "int", "float", "abs", "round"}

#: calls that preserve the order (and hence the taint) of their argument.
_PROPAGATORS = {"list", "tuple", "iter", "enumerate", "reversed", "zip", "dict"}

_TRACER_NAMES = {"tracer", "_tracer"}


class _Taint:
    """Sequential, per-function taint environment."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def of(self, node: ast.AST) -> Optional[str]:
        """Source description if *node*'s value is order-unstable."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.Name):
            return self.names.get(node.id)
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            if dotted == "os.environ":
                return "`os.environ`"
            return self.of(node.value)
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            terminal = dotted.split(".")[-1] if dotted else None
            if terminal in _CLEANSERS:
                return None
            if terminal in ("set", "frozenset"):
                return f"`{terminal}(...)`"
            if terminal in ("id", "hash"):
                return f"`{terminal}()`"
            if terminal in _PROPAGATORS:
                for arg in node.args:
                    src = self.of(arg)
                    if src:
                        return src
                return None
            if isinstance(node.func, ast.Attribute):
                # a method call on an unstable receiver stays unstable
                # (`os.environ.get(...)`, `set(...).union(...)`)
                return self.of(node.func.value)
            return None
        if isinstance(node, (ast.BinOp,)):
            return self.of(node.left) or self.of(node.right)
        if isinstance(node, ast.BoolOp):
            for v in node.values:
                src = self.of(v)
                if src:
                    return src
            return None
        if isinstance(node, ast.IfExp):
            return self.of(node.body) or self.of(node.orelse)
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    src = self.of(v.value)
                    if src:
                        return src
            return None
        if isinstance(node, (ast.Tuple, ast.List)):
            for el in node.elts:
                src = self.of(el)
                if src:
                    return src
            return None
        if isinstance(node, (ast.Subscript, ast.Starred)):
            return self.of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.of(node.operand)
        return None

    def assign(self, target: ast.expr, source: Optional[str]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self.assign(el, source)
        elif isinstance(target, ast.Name):
            if source:
                self.names[target.id] = source
            else:
                self.names.pop(target.id, None)


def _statements(func: ast.AST) -> List[ast.stmt]:
    """Own-scope statements of *func*, in source order."""
    stmts = [
        n for n in _own_scope_children(func) if isinstance(n, ast.stmt)
    ]
    stmts.sort(key=lambda n: (n.lineno, n.col_offset))
    return stmts


def _sink_kind(dotted: Optional[str], call: ast.Call) -> Optional[str]:
    if dotted is None:
        return None
    parts = dotted.split(".")
    if parts == ["print"]:
        return "report output (`print`)"
    if len(parts) >= 2 and parts[-2] in _TRACER_NAMES and parts[-1] in ("event", "sample"):
        return "a trace event emission"
    if parts[-1] == "seed" and len(parts) >= 2:
        return "RNG seeding"
    if parts[-1] == "RngStreams":
        return "RNG stream construction"
    return None


def nondet_taint_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        for fn in module.functions:
            findings.extend(_analyze_function(module, fn))
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _analyze_function(module: Module, fn: FunctionInfo) -> List[Finding]:
    env = _Taint()
    stmts = _statements(fn.node)
    # two sequential passes: the second sees loop-carried taint.
    for _ in range(2):
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                src = env.of(stmt.value)
                for target in stmt.targets:
                    env.assign(target, src)
            elif isinstance(stmt, ast.AugAssign):
                src = env.of(stmt.value) or (
                    isinstance(stmt.target, ast.Name)
                    and env.names.get(stmt.target.id)
                    or None
                )
                env.assign(stmt.target, src)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                env.assign(stmt.target, env.of(stmt.iter))

    out: List[Finding] = []
    calls = [
        (n, dotted_name(n.func))
        for n in _own_scope_children(fn.node)
        if isinstance(n, ast.Call)
    ]
    for call, dotted in calls:
        sink = _sink_kind(dotted, call)
        if sink is None:
            continue
        args = list(call.args) + [kw.value for kw in call.keywords]
        for arg in args:
            src = env.of(arg)
            if src is None:
                continue
            if module.allowed(call.lineno, RULE):
                break
            out.append(
                Finding(
                    rule=RULE,
                    path=module.path,
                    line=call.lineno,
                    col=call.col_offset,
                    message=(
                        f"value derived from {src} flows into {sink} in "
                        f"`{fn.qualname}` — iteration/identity order is not "
                        f"stable across runs; sort or avoid the unstable "
                        f"source"
                    ),
                )
            )
            break
    out.sort(key=lambda f: (f.line, f.col))
    return out
