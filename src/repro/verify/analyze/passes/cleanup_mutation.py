"""Cleanup-mutation detector: the PR 5 ``_quiesced`` bug class.

When a recovery interrupts in-flight process coroutines, their
``finally``/``except GeneratorExit`` bodies run *mid-restore*, while the
runtime has quiesced cluster storage so restore readers see a stable
machine. PR 5's worst bug was exactly such a handler reaching into
``cluster`` state and un-quiescing the storage rate, making restarted
runs diverge from uninterrupted ones.

``cleanup-mutation``
    inside a generator function (process coroutine), within a
    ``finally:`` body or an ``except GeneratorExit:`` handler, any write
    to cluster/storage/shared-server state — an attribute store through a
    chain containing one of the shared-state roots (``cluster``,
    ``storage``, ``server``, ``local_disks``, ``store``), or a
    mutating-looking method call on such a chain — **outside** the
    quiesce-guard API (``Cluster.set_rank_blocked`` /
    ``set_all_blocked``, which respect ``_quiesced``).

Modules under ``repro/machine/`` are exempt: they *implement* the guarded
state and its cancellation paths; the rule polices their clients.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List

from ..findings import Finding
from ..frontend import Project, _own_scope_children, dotted_name

__all__ = ["cleanup_mutation_pass"]

RULE = "cleanup-mutation"

#: dotted-chain segments naming shared machine/storage state.
STATE_ROOTS = {"cluster", "storage", "server", "local_disks", "store"}

#: the sanctioned quiesce-guard entry points.
SAFE_METHODS = {"set_rank_blocked", "set_all_blocked"}

#: method-name shapes that mutate their receiver.
_MUTATING_PREFIXES = (
    "set_",
    "add",
    "append",
    "discard",
    "remove",
    "clear",
    "pop",
    "update",
    "reset",
    "apply",
    "insert",
    "extend",
)


def _is_mutating_method(name: str) -> bool:
    return name.startswith("_") or name.startswith(_MUTATING_PREFIXES)


def _touches_state_root(dotted: str) -> bool:
    return any(seg in STATE_ROOTS for seg in dotted.split("."))


def _cleanup_bodies(func: ast.AST):
    """(kind, stmt-list) for every finally / except-GeneratorExit in
    *func*'s own scope."""
    for node in _own_scope_children(func):
        if not isinstance(node, ast.Try):
            continue
        if node.finalbody:
            yield "finally", node.finalbody
        for handler in node.handlers:
            if _catches_generator_exit(handler.type):
                yield "except GeneratorExit", handler.body


def _catches_generator_exit(type_node) -> bool:
    if type_node is None:
        return False
    if isinstance(type_node, ast.Tuple):
        return any(_catches_generator_exit(el) for el in type_node.elts)
    return (
        isinstance(type_node, ast.Name) and type_node.id == "GeneratorExit"
    ) or (
        isinstance(type_node, ast.Attribute) and type_node.attr == "GeneratorExit"
    )


def _body_nodes(stmts):
    """All descendants of the cleanup body, without entering nested defs."""
    stack = list(stmts)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def cleanup_mutation_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        if "machine" in Path(module.path).parts:
            continue
        for fn in module.functions:
            if not fn.is_generator:
                continue
            for kind, body in _cleanup_bodies(fn.node):
                for node in _body_nodes(body):
                    finding = _check_node(module, fn, kind, node)
                    if finding is not None:
                        findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _check_node(module, fn, kind, node):
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            while isinstance(target, ast.Subscript):
                target = target.value
            dotted = dotted_name(target)
            if dotted is not None and _touches_state_root(dotted):
                if module.allowed(node.lineno, RULE):
                    return None
                return Finding(
                    rule=RULE,
                    path=module.path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"`{kind}` in `{fn.qualname}` writes shared state "
                        f"`{dotted}` during cleanup — restore-time teardown "
                        f"must go through the quiesce-guard API "
                        f"(Cluster.set_rank_blocked / set_all_blocked)"
                    ),
                )
    elif isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is None or "." not in dotted:
            return None
        method = dotted.split(".")[-1]
        receiver = dotted.rsplit(".", 1)[0]
        if (
            _touches_state_root(receiver)
            and method not in SAFE_METHODS
            and _is_mutating_method(method)
        ):
            if module.allowed(node.lineno, RULE):
                return None
            return Finding(
                rule=RULE,
                path=module.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"`{kind}` in `{fn.qualname}` mutates shared state via "
                    f"`{dotted}()` during cleanup — only the quiesce-guard "
                    f"API (Cluster.set_rank_blocked / set_all_blocked) may "
                    f"touch machine state here"
                ),
            )
    return None
