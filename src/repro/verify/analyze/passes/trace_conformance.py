"""Trace-event conformance: emitters and checkers speak the same names.

The invariant engine (``repro.verify.invariants``) audits protocol traces
by event kind. Both halves of that contract are stringly typed: a typo'd
name at a ``tracer.event("proto.comit", ...)`` emission site, or a
checker subscribing to an event nothing emits, makes an invariant pass
*vacuously* — the worst kind of green.

The vocabulary is ``EVENT_KINDS`` in :mod:`repro.core.tracing`. This pass
cross-checks three directions:

``trace-conformance``
    * an event-name literal at an emission site (``*.tracer.event("…")``)
      that is not in ``EVENT_KINDS``;
    * a name a checker consumes (``ev.kind == "…"`` comparisons, a
      ``consumes = ("…",)`` class attribute, ``events_named("…")``) that
      is not in ``EVENT_KINDS``;
    * — whole-program runs only — a vocabulary entry no site emits, or a
      consumed name no site emits (the vacuous-checker case).

The global-completeness checks are gated on
:attr:`Project.whole_program` so analysing a file subset (as the
mutation tests do) cannot false-positive on events emitted elsewhere.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Tuple

from ..findings import Finding
from ..frontend import Module, Project, dotted_name
from ....core.tracing import EVENT_KINDS

__all__ = ["trace_conformance_pass"]

RULE = "trace-conformance"

#: receiver segment names that identify a Tracer emission site.
_TRACER_NAMES = {"tracer", "_tracer"}


def _emission_sites(module: Module) -> List[Tuple[ast.Call, str]]:
    """(call, event-name) for every ``<…>.tracer.event("name", …)``."""
    sites = []
    for call, dotted in module.calls:
        if dotted is None:
            continue
        parts = dotted.split(".")
        if len(parts) < 2 or parts[-1] != "event":
            continue
        if parts[-2] not in _TRACER_NAMES:
            continue
        if call.args and isinstance(call.args[0], ast.Constant):
            if isinstance(call.args[0].value, str):
                sites.append((call, call.args[0].value))
    return sites


def _consumption_sites(module: Module) -> List[Tuple[ast.AST, str]]:
    """(node, event-name) for every place a checker names an event."""
    if module.tree is None:
        return []
    sites: List[Tuple[ast.AST, str]] = []
    # ev.kind == "…" / != / in ("…", "…")
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Compare):
            # only the checker idiom `ev.kind == "…"` — message kinds
            # (`msg.kind == "app"`) live in a different namespace.
            if not (
                isinstance(node.left, ast.Attribute)
                and node.left.attr == "kind"
                and isinstance(node.left.value, ast.Name)
                and node.left.value.id in ("ev", "event")
                and len(node.ops) == 1
                and isinstance(node.ops[0], (ast.Eq, ast.NotEq, ast.In, ast.NotIn))
            ):
                continue
            comp = node.comparators[0]
            values = comp.elts if isinstance(comp, (ast.Tuple, ast.Set, ast.List)) else [comp]
            for v in values:
                if isinstance(v, ast.Constant) and isinstance(v.value, str):
                    sites.append((node, v.value))
        elif isinstance(node, ast.ClassDef):
            # consumes = ("…", …) subscription manifests
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id == "consumes"
                    and isinstance(stmt.value, (ast.Tuple, ast.List))
                ):
                    for el in stmt.value.elts:
                        if isinstance(el, ast.Constant) and isinstance(el.value, str):
                            sites.append((stmt, el.value))
    # events_named("…")
    for call, dotted in module.calls:
        if dotted is None or dotted.split(".")[-1] != "events_named":
            continue
        if call.args and isinstance(call.args[0], ast.Constant):
            if isinstance(call.args[0].value, str):
                sites.append((call, call.args[0].value))
    return sites


def trace_conformance_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    emitted: Dict[str, Tuple[Module, ast.AST]] = {}
    consumed: Dict[str, Tuple[Module, ast.AST]] = {}

    for module in project.modules:
        for node, name in _emission_sites(module):
            emitted.setdefault(name, (module, node))
            if name not in EVENT_KINDS:
                _flag(
                    findings, module, node,
                    f"trace event `{name}` is emitted but absent from "
                    f"EVENT_KINDS (repro.core.tracing) — invariant checkers "
                    f"will never audit it",
                )
        for node, name in _consumption_sites(module):
            if name == "*":
                continue
            consumed.setdefault(name, (module, node))
            if name not in EVENT_KINDS:
                _flag(
                    findings, module, node,
                    f"checker consumes trace event `{name}` which is not in "
                    f"EVENT_KINDS (repro.core.tracing) — likely a typo; the "
                    f"invariant would pass vacuously",
                )

    if project.whole_program:
        for name, (module, node) in sorted(consumed.items()):
            if name in EVENT_KINDS and name not in emitted:
                _flag(
                    findings, module, node,
                    f"checker consumes trace event `{name}` which no site "
                    f"emits — the invariant passes vacuously",
                )
        vocab_home = _vocab_module(project)
        if vocab_home is not None:
            module, node = vocab_home
            for name in sorted(EVENT_KINDS):
                if name not in emitted:
                    _flag(
                        findings, module, node,
                        f"EVENT_KINDS entry `{name}` is emitted nowhere — "
                        f"stale vocabulary",
                    )

    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _vocab_module(project: Project):
    for module in project.modules:
        if module.tree is None:
            continue
        for node in module.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "EVENT_KINDS"
            ):
                return module, node
    return None


def _flag(findings: List[Finding], module: Module, node: ast.AST, message: str) -> None:
    line = getattr(node, "lineno", 0)
    if module.allowed(line, RULE):
        return
    findings.append(
        Finding(
            rule=RULE,
            path=module.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
        )
    )
