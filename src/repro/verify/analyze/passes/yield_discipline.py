"""Yield-discipline dataflow: generators that are created but never run.

The kernel's simulation primitives (``ctx.compute``, ``node.send``, …)
and every project coroutine built on them return *generators* — inert
until driven by ``yield from`` (or spawned as a process). The hygiene
lint catches the bare-statement form for the fixed primitive set; this
pass upgrades the check with whole-program knowledge and dataflow:

``undriven-generator``
    * a **project** generator-returning helper (classified by the
      front-end: every definition of that simple name is a generator or a
      thin wrapper around one) called as a bare expression statement —
      the plain-call form of the bug for names the primitive set cannot
      list; and
    * a generator primitive or project generator **bound to a name that
      is never read again** in the enclosing function — assignment hides
      the discarded generator from the statement-level rule, but a name
      with zero subsequent loads cannot have been driven.

A name that *is* read later (``yield from g``, ``spawn(g)``,
``return g``, a loop over it) is presumed driven: the read is where the
responsibility transfers.
"""

from __future__ import annotations

import ast
import io
from typing import List

from ..findings import Finding
from ..frontend import (
    GENERATOR_PRIMITIVES,
    Project,
    _own_scope_children,
    dotted_name,
)

__all__ = ["yield_discipline_pass"]

RULE = "undriven-generator"

#: simple names that also exist as methods on ubiquitous stdlib types
#: (file objects, containers, strings) — a call like ``fh.write(...)``
#: cannot be attributed to a project generator by name alone, so these
#: are excluded from the by-name classification.
_AMBIENT_NAMES = (
    set(dir(io.RawIOBase))
    | set(dir(io.TextIOBase))
    | set(dir(list))
    | set(dir(dict))
    | set(dir(set))
    | set(dir(str))
)


def _terminal(call: ast.Call) -> str | None:
    dotted = dotted_name(call.func)
    if dotted is None:
        return None
    return dotted.split(".")[-1]


def yield_discipline_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    gen_names = project.generator_names
    all_gen = gen_names | GENERATOR_PRIMITIVES

    # plain-statement calls of project generator helpers (the primitives
    # themselves are the hygiene pass's `unyielded-primitive` rule).
    for module in project.modules:
        for stmt in module.expr_statements:
            call = stmt.value
            if not isinstance(call, ast.Call):
                continue
            name = _terminal(call)
            if (
                name in gen_names
                and name not in GENERATOR_PRIMITIVES
                and name not in _AMBIENT_NAMES
            ):
                if module.allowed(stmt.lineno, RULE):
                    continue
                findings.append(
                    Finding(
                        rule=RULE,
                        path=module.path,
                        line=stmt.lineno,
                        col=stmt.col_offset,
                        message=(
                            f"`{name}(...)` is generator-returning but called "
                            f"as a plain statement — the coroutine never runs; "
                            f"drive it with `yield from` (or spawn it)"
                        ),
                    )
                )

    # generator bound to a name with zero subsequent loads.
    for fns in project.functions_by_name.values():
        for fn in fns:
            for node in _own_scope_children(fn.node):
                if not isinstance(node, ast.Assign):
                    continue
                if len(node.targets) != 1 or not isinstance(
                    node.targets[0], ast.Name
                ):
                    continue
                value = node.value
                if not isinstance(value, ast.Call):
                    continue
                name = _terminal(value)
                if name not in all_gen:
                    continue
                if name in _AMBIENT_NAMES and name not in GENERATOR_PRIMITIVES:
                    continue
                var = node.targets[0].id
                if _loaded_elsewhere(fn.node, var, node):
                    continue
                module = fn.module
                if module.allowed(node.lineno, RULE):
                    continue
                findings.append(
                    Finding(
                        rule=RULE,
                        path=module.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"generator from `{name}(...)` bound to `{var}` "
                            f"is never driven — `{var}` has no later use in "
                            f"`{fn.qualname}`; drive it with `yield from` "
                            f"(or spawn it)"
                        ),
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings


def _loaded_elsewhere(func: ast.AST, var: str, assignment: ast.Assign) -> bool:
    """Is *var* read anywhere in *func*'s own scope outside *assignment*?"""
    for node in _own_scope_children(func):
        if (
            isinstance(node, ast.Name)
            and node.id == var
            and isinstance(node.ctx, ast.Load)
        ):
            return True
    return False
