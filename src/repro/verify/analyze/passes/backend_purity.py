"""Backend-purity pass: kernel backends stay deterministic and layered.

The pluggable kernel (:mod:`repro.core.kernel`) invites accelerated
backends — and accelerated code is exactly where hidden nondeterminism
or an upward import would be smuggled in. This pass polices the whole
``repro/core/`` layer (every backend is an Engine subclass living
there):

``backend-purity``
    * a core module may not import ``repro.chklib`` or
      ``repro.experiments`` (absolute or relative): protocols and
      experiment plumbing sit *above* the kernel, and a backend that
      reaches up can special-case workloads, which the parity suite
      could never certify;
    * a core module may not read the wall clock or the global RNG —
      and unlike the hygiene pass, **no pragma waiver applies**: a
      ``# verify: allow[...]`` comment must never be able to launder
      nondeterminism into the kernel itself.

The runtime counterpart of this rule is the parity suite
(``tests/core/test_backends.py``), which certifies the *observable*
firing order; this pass closes the static side.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Optional

from ..findings import Finding
from ..frontend import Project
from .hygiene import WALL_CLOCK

__all__ = ["backend_purity_pass"]

RULE = "backend-purity"

#: layers a kernel module may never reach up into.
_FORBIDDEN_LAYERS = ("chklib", "experiments")

#: numpy's explicitly-seeded RNG constructors (pure given a seed arg).
_SEEDED_CTORS = {"default_rng", "Generator", "SeedSequence", "PCG64", "Philox", "MT19937"}


def _kernel_module(path: str) -> bool:
    parts = Path(path).parts
    return "core" in parts and "repro" in parts


def _forbidden_import(module_name: Optional[str]) -> Optional[str]:
    """The forbidden layer *module_name* resolves into, if any.

    Catches ``repro.chklib.x``, bare ``chklib`` (relative ``from ..chklib
    import y`` carries ``module="chklib"``), and their ``experiments``
    twins.
    """
    if not module_name:
        return None
    parts = module_name.split(".")
    for layer in _FORBIDDEN_LAYERS:
        if layer in parts:
            return layer
    return None


def backend_purity_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        if not _kernel_module(module.path):
            continue
        if module.syntax_error is not None:
            continue  # the hygiene pass reports the syntax error

        def flag(node: ast.AST, message: str) -> None:
            # deliberately NOT consulting module.allowed(): purity
            # violations in the kernel cannot be waived by pragma
            findings.append(
                Finding(
                    rule=RULE,
                    path=module.path,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    message=message,
                )
            )

        for node in module.imports:
            for alias in node.names:
                layer = _forbidden_import(alias.name)
                if layer:
                    flag(
                        node,
                        f"kernel module imports `{alias.name}` — backends "
                        f"sit below the {layer} layer and may not reach up",
                    )
        for node in module.import_froms:
            layer = _forbidden_import(node.module)
            if layer:
                flag(
                    node,
                    f"kernel module imports from "
                    f"`{'.' * node.level}{node.module}` — backends sit "
                    f"below the {layer} layer and may not reach up",
                )
            if node.module == "time" or node.module == "random":
                flag(
                    node,
                    f"kernel module imports from `{node.module}` — "
                    f"backends must be deterministic (no wall clock, no "
                    f"global RNG; not waivable in the kernel)",
                )

        for node, dotted in module.calls:
            if dotted is None:
                continue
            parts = dotted.split(".")
            suffix2 = ".".join(parts[-2:])
            if suffix2 in WALL_CLOCK or parts[0] in module.from_time_names:
                flag(
                    node,
                    f"kernel module calls wall-clock `{dotted}()` — a "
                    f"backend's only clock is Engine.now (not waivable "
                    f"in the kernel)",
                )
            elif parts[0] == "random" and module.imports_random:
                flag(
                    node,
                    f"kernel module calls global RNG `{dotted}()` — "
                    f"backends must not draw entropy (not waivable in "
                    f"the kernel)",
                )
            elif (
                len(parts) >= 3
                and parts[-3] in module.numpy_aliases | {"np"}
                and parts[-2] == "random"
            ):
                # np.random.default_rng(seed) / Generator(bitgen) etc.
                # are the *seeded*-stream constructors RngStreams is
                # built on — pure, provided a seed is actually passed.
                seeded_ctor = parts[-1] in _SEEDED_CTORS and (
                    node.args or node.keywords
                )
                if not seeded_ctor:
                    flag(
                        node,
                        f"kernel module calls `{dotted}()` — numpy's "
                        f"global/unseeded RNG is nondeterministic state "
                        f"a backend may not touch",
                    )
    findings.sort(key=lambda f: (f.path, f.line, f.col))
    return findings
