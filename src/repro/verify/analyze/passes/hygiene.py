"""Hygiene pass: the sim-determinism lint rules, on the shared front-end.

These are the rules the original single-file ``lint.py`` visitor applied
— wall-clock reads, global-RNG use, bare asserts, generator primitives
called as bare statements — migrated onto the one-walk :class:`Module`
index so they share parsing with every other pass, plus the broadened
nondeterminism set (``os.urandom``, ``uuid.*``, ``time.strftime`` of the
current time, ``random.Random()`` without an explicit seed).

Finding order and message text are byte-compatible with the legacy
visitor: candidates are emitted per node in the original check order and
stable-sorted by position, with same-position ties broken the way a
pre-order AST visit would have flagged them (imports, then the statement
wrapping a call, then the call itself).
"""

from __future__ import annotations

import ast
from typing import List, Optional

from ..findings import Finding
from ..frontend import GENERATOR_PRIMITIVES, Module, Project

__all__ = ["WALL_CLOCK", "GENERATOR_PRIMITIVES", "module_hygiene", "hygiene_pass"]

#: wall-clock calls by dotted suffix
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.clock",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
}

# same-position tie-break phases, matching pre-order visitor flag order:
# an import flags before anything else on its line, a statement node
# (Expr/Assert) flags before the call nested inside it.
_PHASE_IMPORT = 0
_PHASE_STMT = 1
_PHASE_CALL = 2


class _Emitter:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.raw: List[tuple] = []

    def flag(self, node: ast.AST, phase: int, rule: str, message: str) -> None:
        if self.module.allowed(getattr(node, "lineno", 0), rule):
            return
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        self.raw.append(
            (
                line,
                col,
                phase,
                len(self.raw),
                Finding(
                    rule=rule,
                    path=self.module.path,
                    line=line,
                    col=col,
                    message=message,
                ),
            )
        )

    def findings(self) -> List[Finding]:
        return [entry[-1] for entry in sorted(self.raw, key=lambda e: e[:4])]


def module_hygiene(module: Module) -> List[Finding]:
    """All hygiene findings for one module."""
    if module.syntax_error is not None:
        exc = module.syntax_error
        return [
            Finding(
                rule="syntax",
                path=module.path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=str(exc.msg),
            )
        ]
    out = _Emitter(module)
    _check_imports(module, out)
    _check_statements(module, out)
    _check_calls(module, out)
    _check_asserts(module, out)
    return out.findings()


def hygiene_pass(project: Project) -> List[Finding]:
    findings: List[Finding] = []
    for module in project.modules:
        findings.extend(module_hygiene(module))
    return findings


# -- imports -------------------------------------------------------------


def _check_imports(module: Module, out: _Emitter) -> None:
    for node in module.import_froms:
        if node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "perf_counter", "monotonic"):
                    out.flag(
                        node,
                        _PHASE_IMPORT,
                        "wall-clock",
                        f"importing wall-clock `{alias.name}` from `time`; "
                        f"simulation code must use Engine.now",
                    )
        if node.module == "random":
            out.flag(
                node,
                _PHASE_IMPORT,
                "nondeterminism",
                "importing from the global `random` module; use "
                "repro.core.rng.RngStreams",
            )


# -- calls ---------------------------------------------------------------


def _check_calls(module: Module, out: _Emitter) -> None:
    for node, dotted in module.calls:
        if dotted is None:
            continue
        parts = dotted.split(".")
        suffix2 = ".".join(parts[-2:])
        if suffix2 in WALL_CLOCK:
            out.flag(
                node,
                _PHASE_CALL,
                "wall-clock",
                f"wall-clock call `{dotted}()` in simulation code; "
                f"use Engine.now (waive with `# verify: allow[wall-clock]` "
                f"for wall-clock *reporting*)",
            )
        if len(parts) == 1 and parts[0] in module.from_time_names:
            out.flag(
                node,
                _PHASE_CALL,
                "wall-clock",
                f"wall-clock call `{dotted}()` in simulation code",
            )
        if module.imports_random and parts[0] == "random" and len(parts) == 2:
            if parts[1] == "Random" and not (node.args or node.keywords):
                out.flag(
                    node,
                    _PHASE_CALL,
                    "nondeterminism",
                    "`random.Random()` without an explicit seed draws from "
                    "OS entropy; seed it, or draw from RngStreams",
                )
            else:
                out.flag(
                    node,
                    _PHASE_CALL,
                    "nondeterminism",
                    f"global RNG call `{dotted}()`; draw from a seeded "
                    f"RngStreams stream instead",
                )
        if (
            module.imports_numpy
            and len(parts) >= 3
            and parts[0] in module.numpy_aliases
            and parts[1] == "random"
        ):
            # `default_rng(seed)` builds an explicitly-seeded Generator
            # — that IS the sanctioned idiom; only the unseeded form
            # (OS entropy) and the global-state functions are leaks.
            seeded = parts[2] == "default_rng" and (node.args or node.keywords)
            if not seeded:
                out.flag(
                    node,
                    _PHASE_CALL,
                    "nondeterminism",
                    f"NumPy global RNG call `{dotted}()`; use the run's "
                    f"RngStreams / an explicitly seeded default_rng",
                )
        if suffix2 == "os.urandom":
            out.flag(
                node,
                _PHASE_CALL,
                "nondeterminism",
                "`os.urandom()` reads OS entropy; deterministic runs must "
                "draw from RngStreams",
            )
        if len(parts) >= 2 and parts[0] == "uuid":
            out.flag(
                node,
                _PHASE_CALL,
                "nondeterminism",
                f"`{dotted}()` derives from host state/entropy; "
                f"deterministic runs must not mint UUIDs",
            )
        if suffix2 == "time.strftime" and len(node.args) < 2:
            out.flag(
                node,
                _PHASE_CALL,
                "wall-clock",
                "`time.strftime()` without an explicit time tuple formats "
                "the wall clock; pass a value derived from Engine.now",
            )


# -- asserts -------------------------------------------------------------


def _check_asserts(module: Module, out: _Emitter) -> None:
    for node in module.asserts:
        test = node.test
        is_narrowing = (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
        )
        if not is_narrowing:
            out.flag(
                node,
                _PHASE_STMT,
                "bare-assert",
                "bare `assert` for runtime validation is stripped by "
                "`python -O`; raise InvariantViolation (repro.core.errors) "
                "instead",
            )


# -- discarded generators ------------------------------------------------


def _check_statements(module: Module, out: _Emitter) -> None:
    for node in module.expr_statements:
        call = node.value
        if not isinstance(call, ast.Call):
            continue
        name: Optional[str] = None
        if isinstance(call.func, ast.Attribute):
            name = call.func.attr
        elif isinstance(call.func, ast.Name):
            name = call.func.id
        if name in GENERATOR_PRIMITIVES:
            out.flag(
                node,
                _PHASE_STMT,
                "unyielded-primitive",
                f"`{name}(...)` called as a statement returns an inert "
                f"generator — the simulated work never happens; drive it "
                f"with `yield from` (or spawn it as a process)",
            )
