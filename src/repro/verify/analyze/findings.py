"""Findings, baselines, and analysis reports.

A :class:`Finding` is one analyzer diagnostic. Its *key* — ``(rule,
relative path, message)`` — deliberately excludes line/column so that a
baselined finding survives unrelated edits above it in the file.

The baseline file (``ANALYZE_BASELINE.json`` at the repo root) is a
committed list of suppressed finding keys. The gate is bidirectional:

* a finding whose key is **not** in the baseline is *new* → fail;
* a baseline entry matching **no** current finding is *stale* → fail.

So the baseline can only ever shrink to match reality — it cannot rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Finding", "Baseline", "AnalysisReport"]


def _relpath(path: str) -> str:
    """Paths relative to the repo root when possible, POSIX separators."""
    p = Path(path)
    if not p.is_absolute():
        return p.as_posix()
    for parent in p.parents:
        if (parent / "ANALYZE_BASELINE.json").exists() or (parent / ".git").exists():
            return p.relative_to(parent).as_posix()
    return p.as_posix()


@dataclass(frozen=True)
class Finding:
    """One analyzer diagnostic."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.rule, _relpath(self.path), self.message)

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": _relpath(self.path),
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class Baseline:
    """Committed suppression list, keyed like :attr:`Finding.key`."""

    suppressions: List[Tuple[str, str, str]] = field(default_factory=list)

    @classmethod
    def load(cls, path: Optional[Path]) -> "Baseline":
        if path is None or not Path(path).exists():
            return cls()
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        entries = raw.get("suppressions", []) if isinstance(raw, dict) else raw
        return cls(
            suppressions=[
                (e["rule"], e["path"], e["message"]) for e in entries
            ]
        )

    def save(self, path: Path) -> None:
        payload = {
            "version": 1,
            "suppressions": [
                {"rule": r, "path": p, "message": m}
                for (r, p, m) in sorted(set(self.suppressions))
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def __contains__(self, key: Tuple[str, str, str]) -> bool:
        return key in set(self.suppressions)


@dataclass
class AnalysisReport:
    """All findings from one run, split against a baseline."""

    findings: List[Finding]
    baseline: Baseline = field(default_factory=Baseline)

    def __post_init__(self) -> None:
        suppressed = set(self.baseline.suppressions)
        self.new: List[Finding] = [
            f for f in self.findings if f.key not in suppressed
        ]
        current = {f.key for f in self.findings}
        self.stale: List[Tuple[str, str, str]] = [
            key for key in self.baseline.suppressions if key not in current
        ]

    @property
    def ok(self) -> bool:
        return not self.new and not self.stale

    def to_json(self) -> Dict[str, object]:
        return {
            "version": 1,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.findings) - len(self.new),
                "stale_suppressions": len(self.stale),
            },
            "findings": [f.to_json() for f in self.findings],
            "new": [f.to_json() for f in self.new],
            "stale_suppressions": [
                {"rule": r, "path": p, "message": m} for (r, p, m) in self.stale
            ],
        }

    def render_text(self) -> List[str]:
        """Human-readable report lines (one per finding / stale entry)."""
        lines = [str(f) for f in sorted(self.new, key=_sort_key)]
        baselined = len(self.findings) - len(self.new)
        for (rule, path, message) in self.stale:
            lines.append(
                f"{path}: [stale-baseline] suppression no longer fires: "
                f"[{rule}] {message}"
            )
        lines.append(
            f"[verify:analyze] {len(self.new)} new finding(s), "
            f"{baselined} baselined, {len(self.stale)} stale suppression(s)"
        )
        return lines


def _sort_key(f: Finding) -> Tuple[str, int, int, str]:
    return (f.path, f.line, f.col, f.rule)
