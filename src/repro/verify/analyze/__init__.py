"""Whole-program static analysis for the simulation's contracts.

The fourth verification layer. Where the hygiene lint polices single
expressions, this package builds one :class:`~.frontend.Project` — every
module parsed once, indexed once — and runs multi-module passes over it:

==============================  ==============================================
pass                            what it proves
==============================  ==============================================
``hygiene``                     the legacy lint rules (wall clock, global
                                RNG, bare asserts, unyielded primitives)
``yield-discipline``            no generator is created and silently dropped
                                (dataflow: bound-but-never-driven, plain
                                calls of project coroutines)
``cleanup-mutation``            no ``finally``/``except GeneratorExit`` in a
                                process coroutine touches machine state
                                outside the quiesce-guard API (the PR 5
                                ``_quiesced`` bug class)
``capture-completeness``        every attribute of runtime/scheme/policy/
                                transport/storage classes appears in a
                                capture manifest, so halt/resume stays
                                bitwise-complete
``trace-conformance``           trace emitters and invariant checkers agree
                                on the ``EVENT_KINDS`` vocabulary
``nondet-taint``                no order-unstable value (set iteration,
                                ``id``/``hash``, ``os.environ``) reaches a
                                trace event, RNG seed, or report output
==============================  ==============================================

Findings are gated against the committed ``ANALYZE_BASELINE.json`` at the
repo root — new findings fail, and so do stale suppressions, so the
baseline tracks reality in both directions. Waive a single line with
``# verify: allow[rule-name]``.

Entry points: ``python -m repro.verify analyze`` (text or ``--format
json``), :func:`analyze` programmatically, :func:`check_tree` as the
memoized gate the experiment runner's ``--verify`` uses.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Union

from .findings import AnalysisReport, Baseline, Finding
from .frontend import Module, Project, build_project, default_target
from .passes import ALL_PASSES

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "Module",
    "Project",
    "ALL_PASSES",
    "build_project",
    "default_target",
    "default_baseline_path",
    "run_passes",
    "analyze",
    "check_tree",
]


def default_baseline_path() -> Path:
    """``ANALYZE_BASELINE.json`` at the repository root (may not exist)."""
    return default_target().parent.parent / "ANALYZE_BASELINE.json"


def run_passes(project: Project) -> List[Finding]:
    """Run every pass over *project*; findings in pass order."""
    findings: List[Finding] = []
    for _name, pass_fn in ALL_PASSES:
        findings.extend(pass_fn(project))
    return findings


def analyze(
    paths: Optional[Iterable[Path]] = None,
    baseline: Union[Baseline, Path, str, None] = None,
) -> AnalysisReport:
    """Analyze *paths* (default: the whole ``src/repro`` tree).

    *baseline* may be a :class:`Baseline`, a path to one, or None —
    None means the default repo-root baseline when analysing the whole
    tree, and an empty baseline for explicit path subsets.
    """
    if isinstance(baseline, Baseline):
        base = baseline
    elif baseline is not None:
        base = Baseline.load(Path(baseline))
    elif paths is None:
        base = Baseline.load(default_baseline_path())
    else:
        base = Baseline()
    project = build_project(paths)
    return AnalysisReport(findings=run_passes(project), baseline=base)


_TREE_REPORT: Optional[AnalysisReport] = None


def check_tree(force: bool = False) -> AnalysisReport:
    """Whole-tree report against the committed baseline, memoized per
    process — the runner's ``--verify`` gate calls this once however many
    experiment cells run."""
    global _TREE_REPORT
    if _TREE_REPORT is None or force:
        _TREE_REPORT = analyze()
    return _TREE_REPORT
