"""Abstract protocol models for exhaustive checking.

Executable state machines mirror the protocols implemented in
:mod:`repro.chklib.schemes`. Each scheme class declares its machines via
``Scheme.model_machines()`` and ``repro.verify model`` enumerates them
through the protocol registry:

* :class:`TwoPhaseCommitModel` — one round of the coordinated scheme's
  2PC (REQUEST → cut/write → ACK|ABORT → COMMIT|ABORT broadcast), with the
  storage-write failure branch of every rank explored nondeterministically
  (the abort path added by the fault-injection subsystem). Markers are
  abstracted away: on reliable FIFO links they only delay the ack, never
  change the decision.
* :class:`TokenRingModel` — the NBMS staggered background-write ring: the
  coordinator writes first, every other rank waits for the token and
  passes it on after its own write.
* :class:`CicIndexModel` — the communication-induced index rule: a
  delivered message whose piggybacked checkpoint index exceeds the
  receiver's must raise the receiver's index (forced checkpoint) before
  the delivery completes. ``skip_forced`` is the mutation that consumes
  such messages without forcing.
* :class:`SenderLogModel` — sender-based pessimistic logging on one
  channel: log-before-send, crash wipes the wire, recovery replays the
  logged suffix in order. ``skip_log`` sends unlogged; ``out_of_order_replay``
  reverses the replayed suffix.

One round is modelled, which is exhaustive in practice: rounds are
independent by construction (committing round *n* discards *n−1* and the
coordinator never overlaps initiations of the same rank's cut), so a
multi-round bug is a single-round bug plus the store's chain bookkeeping,
which the trace invariant engine checks on real runs.

Crash coverage: the explorer checks state invariants on **every** reachable
state, which is equivalent to crashing the machine at every instant — e.g.
``commit_implies_all_written`` is exactly the soundness condition of the
recovery path's commit-on-recovery rule (a processed COMMIT proves every
rank's write finished, so the record is durable wherever the crash lands).

:class:`ModelBugs` injects deliberate protocol bugs (mutation testing for
the checker itself): each flag must be caught by at least one invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, NamedTuple, Optional, Tuple

__all__ = [
    "ModelBugs",
    "TwoPhaseCommitModel",
    "TokenRingModel",
    "CicIndexModel",
    "SenderLogModel",
]


# -- participant phases -------------------------------------------------------

P_WORKING = "working"  #: request not yet delivered
P_WRITING = "writing"  #: cut taken, stable write in flight
P_WRITTEN = "written"  #: write durable, ack sent (or pending)
P_FAILED = "failed"  #: write exhausted retries, abort report sent
P_COMMITTED = "committed"  #: COMMIT applied to a durable record
P_ABORTED = "aborted"  #: round cancelled, tentative record discarded
#: COMMIT applied to a record that was never durably written — this phase
#: is unreachable in a correct protocol and exists so invariants can name
#: the disaster precisely.
P_COMMITTED_UNWRITTEN = "committed-unwritten"

#: coordinator phases
C_IDLE = "idle"
C_WAITING = "waiting"
C_COMMITTED = "committed"
C_ABORTED = "aborted"

DECIDED = (P_COMMITTED, P_ABORTED)


@dataclass(frozen=True)
class ModelBugs:
    """Deliberate protocol mutations (all off = the shipped protocol)."""

    #: coordinator broadcasts COMMIT one ack early (quorum N-1, not N).
    commit_without_all_acks: bool = False
    #: participant acks at the cut, before its stable write finished.
    ack_before_write: bool = False
    #: this rank's ACK is lost on the wire (never delivered).
    drop_ack: Optional[int] = None
    #: coordinator silently drops CTL_ABORT reports (round wedges).
    ignore_abort: bool = False
    #: coordinator answers an abort report with a COMMIT broadcast.
    commit_on_abort: bool = False

    def any(self) -> bool:
        return any(
            (
                self.commit_without_all_acks,
                self.ack_before_write,
                self.drop_ack is not None,
                self.ignore_abort,
                self.commit_on_abort,
            )
        )


class TpcState(NamedTuple):
    """One reachable configuration of a 2PC round (hashable)."""

    coord: str
    acks: FrozenSet[int]
    parts: Tuple[str, ...]
    failed: FrozenSet[int]  #: ranks whose write failed (sticky abort votes)
    msgs: FrozenSet[Tuple[str, int]]  #: (type, rank) messages in flight

    def part(self, rank: int) -> str:
        return self.parts[rank]


def _replace_part(parts: Tuple[str, ...], rank: int, phase: str) -> Tuple[str, ...]:
    out = list(parts)
    out[rank] = phase
    return tuple(out)


class TwoPhaseCommitModel:
    """One coordinated checkpoint round as an exhaustive state machine.

    ``fault_ranks`` lists the ranks whose stable write may (also)
    nondeterministically fail, producing the CTL_ABORT branch; by default
    every rank may fail, which explores every combination of abort votes
    and message interleavings.
    """

    def __init__(
        self,
        n_ranks: int = 3,
        coordinator: int = 0,
        fault_ranks: Optional[Iterable[int]] = None,
        bugs: Optional[ModelBugs] = None,
    ) -> None:
        if n_ranks < 2:
            raise ValueError("the protocol needs at least 2 ranks")
        self.n = n_ranks
        self.coordinator = coordinator
        self.fault_ranks = frozenset(
            range(n_ranks) if fault_ranks is None else fault_ranks
        )
        self.bugs = bugs or ModelBugs()
        self.invariants = [
            ("agreement", self._inv_agreement),
            ("no_commit_after_abort_vote", self._inv_no_commit_after_abort),
            ("commit_implies_all_acks", self._inv_commit_implies_all_acks),
            ("commit_implies_all_written", self._inv_commit_implies_written),
            ("no_commit_of_unwritten_record", self._inv_no_unwritten_commit),
        ]
        self.terminal_invariants = [
            ("termination_all_decided", self._inv_terminal_decided),
            ("atomic_outcome", self._inv_terminal_atomic),
        ]

    # -- state space ---------------------------------------------------------

    def initial_states(self) -> Iterable[TpcState]:
        yield TpcState(
            coord=C_IDLE,
            acks=frozenset(),
            parts=tuple(P_WORKING for _ in range(self.n)),
            failed=frozenset(),
            msgs=frozenset(),
        )

    def successors(self, s: TpcState) -> Iterator[Tuple[str, TpcState]]:
        bugs = self.bugs
        # 1. the coordinator initiates the round
        if s.coord == C_IDLE:
            msgs = s.msgs | {("request", r) for r in range(self.n)}
            yield "initiate", s._replace(coord=C_WAITING, msgs=msgs)
            return  # nothing else can happen before initiation
        # 2. write outcomes (local nondeterminism at each writing rank)
        for r in range(self.n):
            if s.part(r) != P_WRITING:
                continue
            ack = frozenset() if bugs.ack_before_write else {("ack", r)}
            if bugs.drop_ack == r:
                ack = frozenset()
            yield (
                f"write-ok:{r}",
                s._replace(
                    parts=_replace_part(s.parts, r, P_WRITTEN),
                    msgs=s.msgs | ack,
                ),
            )
            if r in self.fault_ranks:
                yield (
                    f"write-fail:{r}",
                    s._replace(
                        parts=_replace_part(s.parts, r, P_FAILED),
                        failed=s.failed | {r},
                        msgs=s.msgs | {("fail", r)},
                    ),
                )
        # 3. message deliveries (one interleaving branch per in-flight msg)
        for mtype, r in sorted(s.msgs):
            nxt = self._deliver(s, mtype, r)
            if nxt is not None:
                yield f"deliver-{mtype}:{r}", nxt

    def _deliver(self, s: TpcState, mtype: str, r: int) -> Optional[TpcState]:
        bugs = self.bugs
        base = s._replace(msgs=s.msgs - {(mtype, r)})
        if mtype == "request":
            if s.part(r) != P_WORKING:
                return base  # stale (rank already aborted the round)
            acks = (
                base.msgs | {("ack", r)}
                if bugs.ack_before_write and bugs.drop_ack != r
                else base.msgs
            )
            return base._replace(
                parts=_replace_part(s.parts, r, P_WRITING), msgs=acks
            )
        if mtype == "ack":
            if s.coord != C_WAITING:
                return base  # stale ack racing the decision broadcast
            acks = base.acks | {r}
            quorum = self.n - 1 if bugs.commit_without_all_acks else self.n
            if len(acks) >= quorum:
                return base._replace(
                    coord=C_COMMITTED,
                    acks=acks,
                    msgs=base.msgs | {("commit", q) for q in range(self.n)},
                )
            return base._replace(acks=acks)
        if mtype == "fail":
            if bugs.ignore_abort:
                return base
            if s.coord != C_WAITING:
                return base  # decision already made (or repeated report)
            if bugs.commit_on_abort:
                return base._replace(
                    coord=C_COMMITTED,
                    msgs=base.msgs | {("commit", q) for q in range(self.n)},
                )
            return base._replace(
                coord=C_ABORTED,
                msgs=base.msgs | {("abort", q) for q in range(self.n)},
            )
        if mtype == "commit":
            phase = s.part(r)
            if phase == P_WRITTEN:
                return base._replace(parts=_replace_part(s.parts, r, P_COMMITTED))
            if phase in (P_COMMITTED, P_ABORTED):
                return base
            # committing a record that is not durably on stable storage
            return base._replace(
                parts=_replace_part(s.parts, r, P_COMMITTED_UNWRITTEN)
            )
        if mtype == "abort":
            phase = s.part(r)
            if phase in (P_COMMITTED, P_COMMITTED_UNWRITTEN, P_ABORTED):
                return base
            return base._replace(parts=_replace_part(s.parts, r, P_ABORTED))
        raise ValueError(f"unknown message type {mtype!r}")  # pragma: no cover

    # -- invariants (checked on every reachable state) -------------------------

    def _inv_agreement(self, s: TpcState) -> bool:
        """No rank may be committed while another is aborted."""
        return not (P_COMMITTED in s.parts and P_ABORTED in s.parts)

    def _inv_no_commit_after_abort(self, s: TpcState) -> bool:
        """Once any rank voted abort (write failed), nothing commits."""
        if not s.failed:
            return True
        return (
            s.coord != C_COMMITTED
            and P_COMMITTED not in s.parts
            and P_COMMITTED_UNWRITTEN not in s.parts
            and not any(m == "commit" for m, _ in s.msgs)
        )

    def _inv_commit_implies_all_acks(self, s: TpcState) -> bool:
        """The coordinator decides commit only with every rank's ack."""
        if s.coord != C_COMMITTED or self.bugs.commit_on_abort:
            return True
        return s.acks == frozenset(range(self.n))

    def _inv_commit_implies_written(self, s: TpcState) -> bool:
        """A visible commit proves every rank's write finished — the
        soundness condition of recovery's commit-on-recovery rule."""
        committed_visible = s.coord == C_COMMITTED or any(
            m == "commit" for m, _ in s.msgs
        )
        if not committed_visible:
            return True
        return all(p in (P_WRITTEN, P_COMMITTED) for p in s.parts)

    def _inv_no_unwritten_commit(self, s: TpcState) -> bool:
        return P_COMMITTED_UNWRITTEN not in s.parts

    # -- terminal invariants -----------------------------------------------------

    def _inv_terminal_decided(self, s: TpcState) -> bool:
        """No quiescent state may leave the round undecided (liveness as a
        safety check: a wedged round is a deadlocked terminal state)."""
        return (
            s.coord in (C_COMMITTED, C_ABORTED)
            and all(p in DECIDED for p in s.parts)
        )

    def _inv_terminal_atomic(self, s: TpcState) -> bool:
        """All-commit-or-all-abort at quiescence."""
        decided = set(p for p in s.parts if p in DECIDED)
        return len(decided) <= 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<TwoPhaseCommitModel n={self.n} faults={sorted(self.fault_ranks)} "
            f"bugs={'yes' if self.bugs.any() else 'no'}>"
        )


# -- the staggered-write token ring -------------------------------------------


class RingState(NamedTuple):
    """Configuration of the background-write token ring (hashable)."""

    phases: Tuple[str, ...]  #: per-rank: "waiting" | "writing" | "done"
    token_to: Optional[int]  #: token in flight towards this rank (None = no)


R_WAITING = "waiting"
R_WRITING = "writing"
R_DONE = "done"


class TokenRingModel:
    """The NBMS staggering ring: one background write per rank per round.

    The coordinator writes without waiting (it owns the initial token);
    rank *r* passes the token to *r+1* after finishing, and the ring stops
    when the next hop would be the coordinator again. ``skip_token`` makes
    one rank start its write without holding the token — the mutual
    exclusion bug the ring exists to prevent.
    """

    def __init__(
        self,
        n_ranks: int = 3,
        coordinator: int = 0,
        skip_token: Optional[int] = None,
    ) -> None:
        if n_ranks < 2:
            raise ValueError("the ring needs at least 2 ranks")
        self.n = n_ranks
        self.coordinator = coordinator
        self.skip_token = skip_token
        self.invariants = [
            ("storage_write_mutex", self._inv_mutex),
        ]
        self.terminal_invariants = [
            ("all_writes_complete", self._inv_all_done),
        ]

    def initial_states(self) -> Iterable[RingState]:
        yield RingState(
            phases=tuple(R_WAITING for _ in range(self.n)), token_to=None
        )

    def successors(self, s: RingState) -> Iterator[Tuple[str, RingState]]:
        coord = self.coordinator
        # the coordinator starts unprompted
        if s.phases[coord] == R_WAITING:
            yield (
                f"start:{coord}",
                s._replace(phases=_replace_part(s.phases, coord, R_WRITING)),
            )
        # the buggy rank may start without the token
        if (
            self.skip_token is not None
            and s.phases[self.skip_token] == R_WAITING
            and self.skip_token != coord
        ):
            yield (
                f"skip-token:{self.skip_token}",
                s._replace(
                    phases=_replace_part(s.phases, self.skip_token, R_WRITING)
                ),
            )
        # token arrival starts the receiving rank's write
        if s.token_to is not None:
            r = s.token_to
            if s.phases[r] == R_WAITING:
                yield (
                    f"token-arrive:{r}",
                    s._replace(
                        phases=_replace_part(s.phases, r, R_WRITING),
                        token_to=None,
                    ),
                )
            else:
                # token for a rank that already wrote (skip-token bug):
                # dropped, exactly like a stale CTL_TOKEN in the scheme.
                yield f"token-stale:{r}", s._replace(token_to=None)
        # write completions pass the token along the ring
        for r in range(self.n):
            if s.phases[r] != R_WRITING:
                continue
            nxt = (r + 1) % self.n
            token_to = s.token_to if nxt == coord else nxt
            yield (
                f"finish:{r}",
                s._replace(
                    phases=_replace_part(s.phases, r, R_DONE), token_to=token_to
                ),
            )

    def _inv_mutex(self, s: RingState) -> bool:
        """At most one rank drives the stable-storage path at a time."""
        return sum(1 for p in s.phases if p == R_WRITING) <= 1

    def _inv_all_done(self, s: RingState) -> bool:
        """The ring terminates with every rank's write on stable storage."""
        return all(p == R_DONE for p in s.phases)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TokenRingModel n={self.n} skip_token={self.skip_token}>"


# -- the communication-induced index rule --------------------------------------


class CicState(NamedTuple):
    """Configuration of the CIC index machine (hashable)."""

    idx: Tuple[int, ...]  #: per-rank checkpoint (interval) index
    sends_left: Tuple[int, ...]  #: application sends each rank may still do
    basics_left: Tuple[int, ...]  #: basic (timer) checkpoints still allowed
    wire: Tuple[Tuple[int, int, int], ...]  #: in-flight (src, dst, index)
    #: sticky: some rank consumed a message whose index exceeded its own
    #: without a forced checkpoint — the state the rule must make
    #: unreachable.
    orphan_risk: bool


class CicIndexModel:
    """Index-based CIC as an exhaustive machine.

    Each rank may take a bounded number of basic checkpoints (raising its
    index by one) and send a bounded number of messages, each stamped
    with the sender's current index; deliveries branch over every
    interleaving. The shipped rule raises the receiver's index to the
    message's index (the forced checkpoint) as part of the delivery;
    ``skip_forced`` consumes the message without forcing, which is
    exactly the mutation the ``cic_index_rule`` invariant must catch.
    Per-channel FIFO holds trivially because each rank sends at most one
    message per destination.
    """

    def __init__(self, n_ranks: int = 3, skip_forced: bool = False) -> None:
        if n_ranks < 2:
            raise ValueError("the index rule needs at least 2 ranks")
        self.n = n_ranks
        self.skip_forced = skip_forced
        self.invariants = [
            ("cic_index_rule", self._inv_index_rule),
            ("indices_bounded", self._inv_bounded),
        ]
        self.terminal_invariants = [
            ("wire_drained", self._inv_drained),
        ]

    def initial_states(self) -> Iterable[CicState]:
        yield CicState(
            idx=tuple(0 for _ in range(self.n)),
            sends_left=tuple(1 for _ in range(self.n)),
            basics_left=tuple(1 for _ in range(self.n)),
            wire=(),
            orphan_risk=False,
        )

    def successors(self, s: CicState) -> Iterator[Tuple[str, CicState]]:
        # basic (timer) checkpoints: local index +1, uncoordinated
        for r in range(self.n):
            if s.basics_left[r] > 0:
                yield (
                    f"basic:{r}",
                    s._replace(
                        idx=_bump(s.idx, r, s.idx[r] + 1),
                        basics_left=_bump(s.basics_left, r, s.basics_left[r] - 1),
                    ),
                )
        # sends: stamp the sender's current index
        for r in range(self.n):
            if s.sends_left[r] <= 0:
                continue
            for q in range(self.n):
                if q == r:
                    continue
                yield (
                    f"send:{r}->{q}",
                    s._replace(
                        sends_left=_bump(s.sends_left, r, s.sends_left[r] - 1),
                        wire=s.wire + ((r, q, s.idx[r]),),
                    ),
                )
        # deliveries: the index rule fires here
        for pos, (src, dst, midx) in enumerate(s.wire):
            wire = s.wire[:pos] + s.wire[pos + 1 :]
            if midx <= s.idx[dst]:
                yield f"deliver:{src}->{dst}", s._replace(wire=wire)
            elif self.skip_forced:
                yield (
                    f"deliver-skip:{src}->{dst}",
                    s._replace(wire=wire, orphan_risk=True),
                )
            else:
                # forced checkpoint: raise the index before consuming
                yield (
                    f"deliver-forced:{src}->{dst}",
                    s._replace(wire=wire, idx=_bump(s.idx, dst, midx)),
                )

    def _inv_index_rule(self, s: CicState) -> bool:
        """No rank ever consumes a message stamped above its own index
        without a forced checkpoint (would orphan the aligned line)."""
        return not s.orphan_risk

    def _inv_bounded(self, s: CicState) -> bool:
        """Indices never exceed the total checkpoints taken — forced
        checkpoints only copy existing indices, never invent them."""
        total_basics = self.n - sum(s.basics_left)
        return all(i <= total_basics for i in s.idx)

    def _inv_drained(self, s: CicState) -> bool:
        """Deliveries are always enabled, so quiescence drains the wire."""
        return not s.wire

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CicIndexModel n={self.n} skip_forced={self.skip_forced}>"


def _bump(values: Tuple[int, ...], rank: int, value: int) -> Tuple[int, ...]:
    out = list(values)
    out[rank] = value
    return tuple(out)


# -- sender-based pessimistic message logging ----------------------------------


class MlogState(NamedTuple):
    """Configuration of the sender-log machine (hashable)."""

    sent: int  #: messages handed to the send path so far
    logged: int  #: highest sequence durably logged before hitting the wire
    wire: Tuple[int, ...]  #: in-flight sequence numbers, FIFO
    delivered: int  #: highest sequence consumed (contiguously) by the peer
    crashes_left: int
    #: sticky: the peer consumed a message that was never durably logged.
    unlogged_depend: bool
    #: sticky: a replayed/delivered message arrived out of order.
    order_broken: bool


class SenderLogModel:
    """Sender-based pessimistic logging on one channel, with recovery.

    The sender logs each message to stable storage *before* it reaches
    the wire; a crash (bounded to one) wipes the wire and recovery
    re-injects the logged-but-undelivered suffix in sequence order.
    ``skip_log`` sends without logging (messages are lost at the crash
    and the peer depended on unlogged state); ``out_of_order_replay``
    reverses the replayed suffix (breaks channel FIFO on recovery). The
    message budget scales with ``n_ranks`` so ``--ranks`` sweeps deepen
    the exploration.
    """

    def __init__(
        self,
        n_ranks: int = 3,
        skip_log: bool = False,
        out_of_order_replay: bool = False,
    ) -> None:
        if n_ranks < 2:
            raise ValueError("the log machine needs at least 2 ranks")
        self.messages = n_ranks  #: total messages the sender will produce
        self.skip_log = skip_log
        self.out_of_order_replay = out_of_order_replay
        self.invariants = [
            ("delivered_implies_logged", self._inv_logged),
            ("replay_in_order", self._inv_order),
        ]
        self.terminal_invariants = [
            ("no_message_lost", self._inv_no_loss),
        ]

    def initial_states(self) -> Iterable[MlogState]:
        yield MlogState(
            sent=0,
            logged=0,
            wire=(),
            delivered=0,
            crashes_left=1,
            unlogged_depend=False,
            order_broken=False,
        )

    def successors(self, s: MlogState) -> Iterator[Tuple[str, MlogState]]:
        # send: log synchronously (unless mutated), then put on the wire
        if s.sent < self.messages:
            seq = s.sent + 1
            yield (
                f"send:{seq}",
                s._replace(
                    sent=seq,
                    logged=s.logged if self.skip_log else seq,
                    wire=s.wire + (seq,),
                ),
            )
        # delivery consumes the FIFO head
        if s.wire:
            seq = s.wire[0]
            yield (
                f"deliver:{seq}",
                s._replace(
                    wire=s.wire[1:],
                    delivered=max(s.delivered, seq),
                    unlogged_depend=s.unlogged_depend or seq > s.logged,
                    order_broken=s.order_broken or seq != s.delivered + 1,
                ),
            )
        # crash: the wire is wiped; recovery replays the logged suffix
        if s.crashes_left > 0:
            replay = tuple(range(s.delivered + 1, s.logged + 1))
            if self.out_of_order_replay:
                replay = tuple(reversed(replay))
            yield (
                "crash-recover",
                s._replace(crashes_left=s.crashes_left - 1, wire=replay),
            )

    def _inv_logged(self, s: MlogState) -> bool:
        """No process ever depends on an unlogged message — the defining
        pessimistic-logging invariant (bounds rollback to the sender)."""
        return not s.unlogged_depend

    def _inv_order(self, s: MlogState) -> bool:
        """Replay preserves per-channel FIFO delivery order."""
        return not s.order_broken

    def _inv_no_loss(self, s: MlogState) -> bool:
        """At quiescence every message was delivered despite the crash."""
        return s.delivered == s.sent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<SenderLogModel m={self.messages} skip_log={self.skip_log} "
            f"ooo={self.out_of_order_replay}>"
        )
