"""Replay a run's event stream through the invariant checkers.

Two entry points:

* :func:`check_trace` — audit a raw event list against a :class:`RunMeta`;
* :func:`check_runtime` — audit a finished
  :class:`~repro.chklib.runtime.CheckpointRuntime` (metadata is derived
  from its scheme).

Post-run verification can be switched on globally
(:func:`set_runtime_verification` or the :func:`verified` context manager):
the runtime then audits its own trace at the end of ``run()`` and raises
:class:`~repro.core.errors.VerificationError` on any violation. This is
what ``--verify`` on the experiment runner toggles — every run of every
experiment is audited post-hoc, at zero cost to the measured simulation
(checking happens after the simulated clock stops).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, List, Sequence

from ..core.errors import VerificationError
from ..core.tracing import TraceEvent
from .invariants import RunMeta, TraceViolation, default_checkers

__all__ = [
    "TraceReport",
    "check_trace",
    "check_runtime",
    "meta_for_runtime",
    "set_runtime_verification",
    "runtime_verification_enabled",
    "verified",
]


@dataclass
class TraceReport:
    """Outcome of one trace audit."""

    events_checked: int
    invariants_run: List[str]
    violations: List[TraceViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"{status}: {self.events_checked} events through "
            f"{len(self.invariants_run)} invariant checkers"
        )

    def raise_if_violated(self) -> None:
        if self.ok:
            return
        lines = [f"trace verification failed ({len(self.violations)} violation(s)):"]
        for v in self.violations[:20]:
            lines.append(f"  [{v.invariant}] t={v.time:.6f} {v.message}")
        if len(self.violations) > 20:
            lines.append(f"  … and {len(self.violations) - 20} more")
        raise VerificationError("\n".join(lines), violations=self.violations)


def check_trace(events: Sequence[TraceEvent], meta: RunMeta) -> TraceReport:
    """Replay *events* through the full checker battery."""
    checkers = default_checkers(meta)
    for index, ev in enumerate(events):
        for checker in checkers:
            checker.feed(index, ev)
    violations: List[TraceViolation] = []
    for checker in checkers:
        violations.extend(checker.finish())
    violations.sort(key=lambda v: (v.time, v.event_index or 0))
    return TraceReport(
        events_checked=len(events),
        invariants_run=[c.name for c in checkers],
        violations=violations,
    )


def meta_for_runtime(runtime: Any) -> RunMeta:
    """Derive checker metadata from a (duck-typed) runtime's scheme."""
    scheme = runtime.scheme
    storage = getattr(runtime, "storage", None)
    return RunMeta(
        n_ranks=runtime.n_ranks,
        scheme=getattr(scheme, "name", "none"),
        klass=getattr(scheme, "klass", "none"),
        staggered=bool(getattr(scheme, "staggered", False)),
        logging=bool(getattr(scheme, "logging", False)),
        storage_servers=int(getattr(storage, "n_servers", 1)),
    )


def check_runtime(runtime: Any) -> TraceReport:
    """Audit a finished runtime's recorded trace.

    Requires the runtime to have been built with tracing enabled
    (``trace=True``, the default) — with tracing off there are no events
    to audit and the report trivially passes on zero events.
    """
    return check_trace(runtime.tracer.events, meta_for_runtime(runtime))


# -- global post-run verification toggle ---------------------------------------

_RUNTIME_VERIFICATION = False


def set_runtime_verification(enabled: bool) -> None:
    """Globally toggle post-run trace auditing inside ``run()``."""
    global _RUNTIME_VERIFICATION
    _RUNTIME_VERIFICATION = bool(enabled)


def runtime_verification_enabled() -> bool:
    return _RUNTIME_VERIFICATION


@contextmanager
def verified() -> Iterator[None]:
    """Audit every runtime that finishes inside this context."""
    previous = _RUNTIME_VERIFICATION
    set_runtime_verification(True)
    try:
        yield
    finally:
        set_runtime_verification(previous)
