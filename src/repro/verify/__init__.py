"""Four-layer verification subsystem for the reproduction.

1. **Model checking** (:mod:`.model`, :mod:`.explorer`) — exhaustive
   explicit-state exploration of abstracted protocol state machines: the
   coordinated two-phase commit (with crash/abort at every reachable
   state) and the staggered token ring. Small-N (2–4 ranks) but complete:
   every interleaving of message deliveries, write completions and
   failures is visited.
2. **Trace invariants** (:mod:`.invariants`, :mod:`.trace_check`) —
   declarative checkers replayed over the structured event streams the
   simulator records (FIFO delivery, 2PC commit rules, staggered-write
   mutual exclusion, GC line safety, recovery-line soundness). Runnable
   post-hoc on any run via ``--verify`` on the experiment runner.
3. **Sim-hygiene lint** (:mod:`.lint`) — an AST pass over ``src/repro``
   that forbids wall-clock and unseeded-randomness leaks into simulation
   code, bare ``assert`` for runtime validation, and engine primitives
   called without ``yield``.
4. **Whole-program static analysis** (:mod:`.analyze`) — multi-pass
   analysis over one shared front-end (per-module ASTs, project symbol
   table, generator classification): yield-discipline dataflow,
   cleanup-mutation detection (the PR 5 ``_quiesced`` bug class),
   resume-capture completeness against the classes' RESUME_FIELDS
   manifests, trace-event conformance against ``EVENT_KINDS``, and
   nondeterminism taint tracking — gated by the committed
   ``ANALYZE_BASELINE.json`` in both directions.

CLI: ``python -m repro.verify [lint|model|smoke|trace|analyze|all]``;
each layer has a distinct failure exit code (lint=2, model=3, trace=4,
analyze=5).
"""

from .analyze import AnalysisReport, Baseline, Finding, analyze
from .explorer import ExplorationResult, Violation, explore
from .invariants import RunMeta, TraceViolation, default_checkers
from .lint import LintIssue, lint_paths, lint_source
from .model import (
    CicIndexModel,
    ModelBugs,
    SenderLogModel,
    TokenRingModel,
    TwoPhaseCommitModel,
)
from .trace_check import (
    TraceReport,
    check_runtime,
    check_trace,
    meta_for_runtime,
    runtime_verification_enabled,
    set_runtime_verification,
    verified,
)

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "analyze",
    "ExplorationResult",
    "Violation",
    "explore",
    "RunMeta",
    "TraceViolation",
    "default_checkers",
    "LintIssue",
    "lint_paths",
    "lint_source",
    "CicIndexModel",
    "ModelBugs",
    "SenderLogModel",
    "TokenRingModel",
    "TwoPhaseCommitModel",
    "TraceReport",
    "check_runtime",
    "check_trace",
    "meta_for_runtime",
    "runtime_verification_enabled",
    "set_runtime_verification",
    "verified",
]
