"""CLI for the verification subsystem.

Usage::

    python -m repro.verify            # everything (lint + model + smoke)
    python -m repro.verify lint       # sim-hygiene AST lint over src/repro
    python -m repro.verify model      # exhaustive small-N model checking
    python -m repro.verify smoke      # traced scheme runs + invariant audit

Exit status is non-zero as soon as any layer reports a problem, so the CI
``verify`` job can gate on it directly.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .explorer import explore
from .lint import lint_paths
from .model import TokenRingModel, TwoPhaseCommitModel
from .smoke import run_smoke

__all__ = ["main"]


def _run_lint(verbose: bool) -> int:
    issues = lint_paths()
    for issue in issues:
        print(f"{issue.path}:{issue.line}:{issue.col}: [{issue.rule}] {issue.message}")
    print(f"[verify:lint] {len(issues)} issue(s)")
    return 1 if issues else 0


def _run_model(ranks: List[int], verbose: bool) -> int:
    failed = 0
    for n in ranks:
        result = explore(TwoPhaseCommitModel(n_ranks=n))
        print(f"[verify:model] 2pc n={n}: {result.summary()}")
        if verbose:
            for v in result.violations[:3]:
                print(f"  {v.invariant}: " + " -> ".join(v.trace))
        failed += 0 if result.ok else 1
    for n in ranks:
        result = explore(TokenRingModel(n_ranks=n))
        print(f"[verify:model] token-ring n={n}: {result.summary()}")
        failed += 0 if result.ok else 1
    return 1 if failed else 0


def _run_smoke(seed: int, verbose: bool) -> int:
    results = run_smoke(seed=seed, verbose=verbose)
    bad = 0
    for name, report in results:
        print(f"[verify:smoke] {name:<16} {report.summary()}")
        for v in report.violations[:5]:
            print(f"  [{v.invariant}] t={v.time:.6f} {v.message}")
        bad += 0 if report.ok else 1
    return 1 if bad else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.verify", description=__doc__)
    parser.add_argument(
        "layer",
        nargs="?",
        default="all",
        choices=["lint", "model", "smoke", "all"],
    )
    parser.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=[2, 3, 4],
        help="system sizes for the model checker (default: 2 3 4)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    status = 0
    if args.layer in ("lint", "all"):
        status |= _run_lint(args.verbose)
    if args.layer in ("model", "all"):
        status |= _run_model(args.ranks, args.verbose)
    if args.layer in ("smoke", "all"):
        status |= _run_smoke(args.seed, args.verbose)
    print(f"[verify] {'PASS' if status == 0 else 'FAIL'}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
