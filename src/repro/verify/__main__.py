"""CLI for the verification subsystem.

Usage::

    python -m repro.verify            # everything (lint + model + smoke + analyze)
    python -m repro.verify lint       # sim-hygiene AST lint over src/repro
    python -m repro.verify model      # exhaustive small-N model checking
    python -m repro.verify smoke      # traced scheme runs + invariant audit
    python -m repro.verify trace      # alias for smoke (the trace layer)
    python -m repro.verify analyze    # whole-program static analysis

Each layer prints a one-line ``[verify] <layer>: PASS|FAIL`` summary to
stderr and the exit status identifies the (first) failing layer without
scrollback: lint=2, model=3, trace/smoke=4, analyze=5. A standalone
``analyze`` additionally distinguishes stale baseline suppressions
(exit 6) from new findings (exit 5).

``analyze`` options: ``--format json`` emits the full machine-readable
report on stdout (the CI artifact), ``--baseline`` points at an alternate
suppression file, ``--update-baseline`` rewrites the baseline to match
the current findings, and ``--paths`` restricts analysis to a file
subset (whole-program completeness checks are skipped then).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..chklib.schemes.registry import REGISTRY
from .analyze import Baseline, analyze, default_baseline_path
from .explorer import explore
from .lint import lint_paths
from .smoke import run_smoke

__all__ = ["main", "LAYER_CODES"]

#: exit code identifying each failing layer (trace is the smoke layer's
#: proper name — both spellings gate the same audit).
LAYER_CODES = {"lint": 2, "model": 3, "smoke": 4, "trace": 4, "analyze": 5}

#: standalone ``analyze`` exit for a baseline that only has stale entries.
STALE_BASELINE_CODE = 6


def _summary(layer: str, ok: bool) -> None:
    print(f"[verify] {layer}: {'PASS' if ok else 'FAIL'}", file=sys.stderr)


def _run_lint(verbose: bool) -> int:
    issues = lint_paths()
    for issue in issues:
        print(f"{issue.path}:{issue.line}:{issue.col}: [{issue.rule}] {issue.message}")
    print(f"[verify:lint] {len(issues)} issue(s)")
    _summary("lint", not issues)
    return LAYER_CODES["lint"] if issues else 0


def _run_model(ranks: List[int], verbose: bool) -> int:
    # every protocol family's declared abstract machine, from the registry
    failed = 0
    for label, machine in REGISTRY.model_machines():
        for n in ranks:
            result = explore(machine(n_ranks=n))
            print(f"[verify:model] {label} n={n}: {result.summary()}")
            if verbose:
                for v in result.violations[:3]:
                    print(f"  {v.invariant}: " + " -> ".join(v.trace))
            failed += 0 if result.ok else 1
    _summary("model", not failed)
    return LAYER_CODES["model"] if failed else 0


def _run_smoke(seed: int, verbose: bool) -> int:
    results = run_smoke(seed=seed, verbose=verbose)
    bad = 0
    for name, report in results:
        print(f"[verify:smoke] {name:<16} {report.summary()}")
        for v in report.violations[:5]:
            print(f"  [{v.invariant}] t={v.time:.6f} {v.message}")
        bad += 0 if report.ok else 1
    _summary("trace", not bad)
    return LAYER_CODES["trace"] if bad else 0


def _run_analyze(args, standalone: bool) -> int:
    paths = [Path(p) for p in args.paths] if args.paths else None
    baseline_path = (
        Path(args.baseline) if args.baseline else default_baseline_path()
    )
    if args.update_baseline:
        report = analyze(paths=paths, baseline=Baseline())
        Baseline(suppressions=[f.key for f in report.findings]).save(
            baseline_path
        )
        print(
            f"[verify:analyze] baseline updated: {len(report.findings)} "
            f"suppression(s) -> {baseline_path}"
        )
        _summary("analyze", True)
        return 0
    report = analyze(
        paths=paths,
        baseline=baseline_path if paths is None or args.baseline else Baseline(),
    )
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        for line in report.render_text():
            print(line)
    _summary("analyze", report.ok)
    if report.ok:
        return 0
    if standalone and not report.new:
        return STALE_BASELINE_CODE  # stale suppressions only
    return LAYER_CODES["analyze"]


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.verify", description=__doc__)
    parser.add_argument(
        "layer",
        nargs="?",
        default="all",
        choices=["lint", "model", "smoke", "trace", "analyze", "all"],
    )
    parser.add_argument(
        "--ranks",
        type=int,
        nargs="+",
        default=[2, 3, 4],
        help="system sizes for the model checker (default: 2 3 4)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--verbose", action="store_true")
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="analyze output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="analyze suppression file (default: ANALYZE_BASELINE.json at the repo root)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline to match the current findings, then exit 0",
    )
    parser.add_argument(
        "--paths",
        nargs="+",
        default=None,
        help="restrict analyze to these files/directories (skips whole-program checks)",
    )
    args = parser.parse_args(argv)

    # the first failing layer determines the exit code (lint=2, model=3,
    # trace=4, analyze=5) so CI logs identify the layer at a glance.
    status = 0
    if args.layer in ("lint", "all"):
        code = _run_lint(args.verbose)
        status = status or code
    if args.layer in ("model", "all"):
        code = _run_model(args.ranks, args.verbose)
        status = status or code
    if args.layer in ("smoke", "trace", "all"):
        code = _run_smoke(args.seed, args.verbose)
        status = status or code
    if args.layer in ("analyze", "all"):
        code = _run_analyze(args, standalone=args.layer == "analyze")
        status = status or code
    if not (args.layer == "analyze" and args.format == "json"):
        # with `analyze --format json` stdout is exactly the JSON report
        # (the CI artifact); the PASS/FAIL summary already went to stderr.
        print(f"[verify] {'PASS' if status == 0 else 'FAIL'}")
    return status


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
