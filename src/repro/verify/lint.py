"""Sim-hygiene lint: AST checks against nondeterminism leaks.

The simulation's headline property is determinism — same seed, same run,
bit for bit. That dies quietly the moment simulation code reads the wall
clock, pulls from a global RNG, or validates correctness with a statement
``python -O`` deletes. This pass walks the AST of every module under
:mod:`repro` and rejects:

``wall-clock``
    ``time.time()``, ``time.perf_counter()``, ``time.monotonic()``,
    ``datetime.now()``/``utcnow()``, ``date.today()`` — simulated code
    must read :attr:`Engine.now`.
``nondeterminism``
    the global ``random`` module and NumPy's global RNG
    (``np.random.*``) — streams must come from
    :class:`repro.core.rng.RngStreams`, which is seeded per run.
``bare-assert``
    ``assert`` used for runtime validation — stripped under ``python -O``;
    correctness checks must raise
    :class:`~repro.core.errors.InvariantViolation` (or another typed
    exception). ``assert isinstance(...)`` is tolerated as the standard
    type-narrowing idiom (it guards nothing at runtime by contract).
``unyielded-primitive``
    an engine primitive called as a bare expression statement —
    ``ctx.compute(n)`` instead of ``yield from ctx.compute(n)`` returns a
    generator that never runs; the simulation silently skips the work.

A finding can be waived for one line with a trailing ``# verify: allow``
comment (optionally naming the rule: ``# verify: allow[wall-clock]``) —
e.g. the experiment runner legitimately reports wall-clock duration.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

__all__ = ["LintIssue", "lint_source", "lint_paths", "default_target"]

#: wall-clock calls by dotted suffix
WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.clock",
    "datetime.now",
    "datetime.utcnow",
    "date.today",
}

#: generator-returning simulation primitives that are inert unless driven
#: by ``yield``/``yield from`` (or handed to the engine/spawn explicitly).
GENERATOR_PRIMITIVES = {
    "timeout",
    "compute",
    "mem_copy",
    "send",
    "recv",
    "sendrecv",
    "send_control",
    "stable_write",
    "stable_read",
    "at_point",
    "checkpoint_point",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
}

_ALLOW_RE = re.compile(r"#\s*verify:\s*allow(?:\[([a-z\-,\s]+)\])?")


@dataclass
class LintIssue:
    """One finding of the hygiene pass."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def _dotted(node: ast.AST) -> Optional[str]:
    """`a.b.c` attribute chains as a dotted string (None for anything else)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _Visitor(ast.NodeVisitor):
    def __init__(self, path: str, source_lines: Sequence[str]) -> None:
        self.path = path
        self.lines = source_lines
        self.issues: List[LintIssue] = []
        self.imports_random = False
        self.imports_numpy = False
        self.numpy_aliases = {"numpy"}
        self.from_time_names: set[str] = set()

    # -- plumbing -------------------------------------------------------------

    def _allowed(self, node: ast.AST, rule: str) -> bool:
        lineno = getattr(node, "lineno", 0)
        if not (1 <= lineno <= len(self.lines)):
            return False
        m = _ALLOW_RE.search(self.lines[lineno - 1])
        if not m:
            return False
        rules = m.group(1)
        if rules is None:
            return True
        return rule in {r.strip() for r in rules.split(",")}

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        if self._allowed(node, rule):
            return
        self.issues.append(
            LintIssue(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    # -- imports ---------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self.imports_random = True
            if alias.name == "numpy":
                self.imports_numpy = True
                self.numpy_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "time":
            for alias in node.names:
                if alias.name in ("time", "perf_counter", "monotonic"):
                    self.from_time_names.add(alias.asname or alias.name)
                    self._flag(
                        node,
                        "wall-clock",
                        f"importing wall-clock `{alias.name}` from `time`; "
                        f"simulation code must use Engine.now",
                    )
        if node.module == "random":
            self._flag(
                node,
                "nondeterminism",
                "importing from the global `random` module; use "
                "repro.core.rng.RngStreams",
            )
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        if dotted is not None:
            suffix2 = ".".join(dotted.split(".")[-2:])
            if suffix2 in WALL_CLOCK:
                self._flag(
                    node,
                    "wall-clock",
                    f"wall-clock call `{dotted}()` in simulation code; "
                    f"use Engine.now (waive with `# verify: allow[wall-clock]` "
                    f"for wall-clock *reporting*)",
                )
            parts = dotted.split(".")
            if len(parts) == 1 and parts[0] in self.from_time_names:
                self._flag(
                    node,
                    "wall-clock",
                    f"wall-clock call `{dotted}()` in simulation code",
                )
            if self.imports_random and parts[0] == "random" and len(parts) == 2:
                self._flag(
                    node,
                    "nondeterminism",
                    f"global RNG call `{dotted}()`; draw from a seeded "
                    f"RngStreams stream instead",
                )
            if (
                self.imports_numpy
                and len(parts) >= 3
                and parts[0] in self.numpy_aliases
                and parts[1] == "random"
            ):
                # `default_rng(seed)` builds an explicitly-seeded Generator
                # — that IS the sanctioned idiom; only the unseeded form
                # (OS entropy) and the global-state functions are leaks.
                seeded = parts[2] == "default_rng" and (node.args or node.keywords)
                if not seeded:
                    self._flag(
                        node,
                        "nondeterminism",
                        f"NumPy global RNG call `{dotted}()`; use the run's "
                        f"RngStreams / an explicitly seeded default_rng",
                    )
        self.generic_visit(node)

    # -- asserts ----------------------------------------------------------------

    def visit_Assert(self, node: ast.Assert) -> None:
        test = node.test
        is_narrowing = (
            isinstance(test, ast.Call)
            and isinstance(test.func, ast.Name)
            and test.func.id == "isinstance"
        )
        if not is_narrowing:
            self._flag(
                node,
                "bare-assert",
                "bare `assert` for runtime validation is stripped by "
                "`python -O`; raise InvariantViolation (repro.core.errors) "
                "instead",
            )
        self.generic_visit(node)

    # -- discarded generators ------------------------------------------------------

    def visit_Expr(self, node: ast.Expr) -> None:
        call = node.value
        if isinstance(call, ast.Call):
            name: Optional[str] = None
            if isinstance(call.func, ast.Attribute):
                name = call.func.attr
            elif isinstance(call.func, ast.Name):
                name = call.func.id
            if name in GENERATOR_PRIMITIVES:
                self._flag(
                    node,
                    "unyielded-primitive",
                    f"`{name}(...)` called as a statement returns an inert "
                    f"generator — the simulated work never happens; drive it "
                    f"with `yield from` (or spawn it as a process)",
                )
        self.generic_visit(node)


def lint_source(source: str, path: str = "<string>") -> List[LintIssue]:
    """Lint one module's source text."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:  # surface as a finding, not a crash
        return [
            LintIssue(
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                rule="syntax",
                message=str(exc.msg),
            )
        ]
    visitor = _Visitor(path, source.splitlines())
    visitor.visit(tree)
    return visitor.issues


def default_target() -> Path:
    """The package root the lint covers by default (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def lint_paths(paths: Optional[Iterable[Path]] = None) -> List[LintIssue]:
    """Lint every ``*.py`` file under *paths* (default: all of repro)."""
    roots = [Path(p) for p in paths] if paths else [default_target()]
    issues: List[LintIssue] = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for file in files:
            issues.extend(
                lint_source(file.read_text(encoding="utf-8"), path=str(file))
            )
    issues.sort(key=lambda i: (i.path, i.line, i.col))
    return issues
