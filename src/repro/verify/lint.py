"""Sim-hygiene lint: AST checks against nondeterminism leaks.

The simulation's headline property is determinism — same seed, same run,
bit for bit. That dies quietly the moment simulation code reads the wall
clock, pulls from a global RNG, or validates correctness with a statement
``python -O`` deletes. This layer rejects:

``wall-clock``
    ``time.time()``, ``time.perf_counter()``, ``time.monotonic()``,
    ``datetime.now()``/``utcnow()``, ``date.today()``,
    ``time.strftime()`` of the current time — simulated code must read
    :attr:`Engine.now`.
``nondeterminism``
    the global ``random`` module and NumPy's global RNG
    (``np.random.*``), plus ``os.urandom``, ``uuid.*``, and
    ``random.Random()`` without an explicit seed — streams must come
    from :class:`repro.core.rng.RngStreams`, which is seeded per run.
``bare-assert``
    ``assert`` used for runtime validation — stripped under ``python -O``;
    correctness checks must raise
    :class:`~repro.core.errors.InvariantViolation` (or another typed
    exception). ``assert isinstance(...)`` is tolerated as the standard
    type-narrowing idiom (it guards nothing at runtime by contract).
``unyielded-primitive``
    an engine primitive called as a bare expression statement —
    ``ctx.compute(n)`` instead of ``yield from ctx.compute(n)`` returns a
    generator that never runs; the simulation silently skips the work.

A finding can be waived for one line with a trailing ``# verify: allow``
comment (optionally naming the rule: ``# verify: allow[wall-clock]``) —
e.g. the experiment runner legitimately reports wall-clock duration.

The rules themselves live in :mod:`repro.verify.analyze.passes.hygiene`,
running on the shared one-walk front-end every analyzer pass uses; this
module is the stable, list-of-issues entry point ``python -m repro.verify
lint`` has always exposed.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional

from .analyze.frontend import (
    ALLOW_RE as _ALLOW_RE,
    GENERATOR_PRIMITIVES,
    Module as _Module,
    iter_python_files as _iter_python_files,
)
from .analyze.passes.hygiene import WALL_CLOCK, module_hygiene

__all__ = ["LintIssue", "lint_source", "lint_paths", "default_target"]


@dataclass
class LintIssue:
    """One finding of the hygiene pass."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


def lint_source(source: str, path: str = "<string>") -> List[LintIssue]:
    """Lint one module's source text."""
    module = _Module.from_source(source, path=path)
    return [
        LintIssue(
            path=f.path, line=f.line, col=f.col, rule=f.rule, message=f.message
        )
        for f in module_hygiene(module)
    ]


def default_target() -> Path:
    """The package root the lint covers by default (``src/repro``)."""
    return Path(__file__).resolve().parent.parent


def lint_paths(paths: Optional[Iterable[Path]] = None) -> List[LintIssue]:
    """Lint every ``*.py`` file under *paths* (default: all of repro)."""
    issues: List[LintIssue] = []
    for file in _iter_python_files(paths):
        issues.extend(
            lint_source(file.read_text(encoding="utf-8"), path=str(file))
        )
    issues.sort(key=lambda i: (i.path, i.line, i.col))
    return issues
