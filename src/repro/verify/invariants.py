"""Declarative invariant checkers over recorded event streams.

The schemes, runtime and GC emit structured :class:`~repro.core.tracing.TraceEvent`
records; each checker here replays that stream and reports violations. The
event vocabulary (``kind`` → fields):

=====================  =====================================================
``proto.request``      round, coordinator — 2PC initiation
``proto.cut``          rank, round, scheme — a rank captured its state
``proto.ack``          rank, round — a rank's commit vote (write + markers)
``proto.commit``       round, acks — coordinator's commit decision
``proto.commit_apply`` rank, round — a rank made its record permanent
``proto.commit_on_recovery`` rank, round — 2PC commit-on-recovery rule
``proto.abort_report`` rank, round — a rank's abort vote (write failed)
``proto.abort``        round — coordinator's abort decision
``proto.abort_apply``  rank, round — rank-local round cancellation
``proto.token_pass``   round, src, dst — staggering token hand-off
``proto.write_begin``  rank, round, scheme — checkpoint stable write starts
``proto.write_end``    rank, round, ok — … finished (ok=False: retries
                       exhausted)
``proto.local_commit`` rank, index — independent: written checkpoint stable
``proto.cic.forced``   rank, index, had, src, rule — CIC index rule fired:
                       the rank owes a forced checkpoint at ``index``
``proto.cic.promote``  rank, index, base, src — FDAS: checkpoint ``base``
                       re-labelled to also cover ``index`` (nothing sent)
``proto.mlog.logged``  src, dst, seq — message-log record reached stable
                       storage (sync send-path write or annex flush)
``msg.send``           src, dst, seq, epoch, gen — application send
``msg.deliver``        src, dst, seq, epoch, gen — accepted app delivery
``recover.crash``      gen, failed — a failure took the machine down
``recover.quarantine`` rank, index, cause — recovery excluded a checkpoint
                       (failed checksum, or unreadable after retries)
``recover.line``       gen, indices, klass, logging, consistent,
                       sent, consumed — the restored recovery line
``recover.replay``     gen, count — in-transit messages re-injected
``gc.run``             line, protected — GC pass over the store
``gc.discard``         rank, index — GC removed one checkpoint
``policy.decide``      policy, rank, shot, at [, interval, lo, hi] — a
                       checkpoint policy scheduled the next initiation
``policy.adapt``       policy, rank, direction, interval, lo, hi, cause,
                       observed — an adaptive policy changed its interval
``resume.halt``        at — the run was halted to capture a durable line
=====================  =====================================================

Checkers are fed events in recorded order via :meth:`Checker.on_event` and
report accumulated :class:`TraceViolation`s from :meth:`Checker.finish`.
They are deliberately *independent re-implementations* of the conditions
the runtime already enforces inline — the point is cross-checking the
implementation, not reusing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.tracing import TraceEvent

__all__ = [
    "RunMeta",
    "TraceViolation",
    "Checker",
    "MonotonicClock",
    "ChannelFifo",
    "CutMonotonic",
    "CoordinatedTwoPhase",
    "StaggeredWriteMutex",
    "GcLineSafety",
    "LineSoundness",
    "PolicyAdaptation",
    "CicIndexRule",
    "MsglogReplayBounds",
    "default_checkers",
]


@dataclass(frozen=True)
class RunMeta:
    """What the checkers need to know about the run they are auditing."""

    n_ranks: int
    scheme: str = "none"  #: scheme name (coord_nbms, indep_m, …)
    klass: str = "none"  #: "coordinated" | "independent" | "cic" | "msglog" | "none"
    staggered: bool = False
    logging: bool = False
    #: stable-storage shard count: staggering holds mutual exclusion *per
    #: server* (S independent rings), so the write-mutex checker groups
    #: writers by their shard (block sharding, ``rank * S // n_ranks``).
    storage_servers: int = 1


@dataclass
class TraceViolation:
    """One violated trace invariant."""

    invariant: str
    message: str
    time: float
    event_index: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TraceViolation {self.invariant} t={self.time:.6f}: {self.message}>"


class Checker:
    """Base class: accumulate violations while replaying the stream."""

    name = "checker"

    #: trace-event kinds this checker keys on — ``("*",)`` for every
    #: event. Cross-checked statically against the emission sites by the
    #: analyzer's trace-conformance pass, so a subscription to an event
    #: nothing emits (a vacuously-green invariant) fails analysis.
    consumes: Tuple[str, ...] = ()

    def __init__(self, meta: RunMeta) -> None:
        self.meta = meta
        self.violations: List[TraceViolation] = []
        self._index = -1

    def feed(self, index: int, ev: TraceEvent) -> None:
        self._index = index
        self.on_event(ev)

    def flag(self, message: str, time: float) -> None:
        self.violations.append(
            TraceViolation(
                invariant=self.name,
                message=message,
                time=time,
                event_index=self._index,
            )
        )

    # -- overridables --------------------------------------------------------

    def on_event(self, ev: TraceEvent) -> None:
        raise NotImplementedError

    def finish(self) -> List[TraceViolation]:
        return self.violations


class MonotonicClock(Checker):
    """Event timestamps never decrease: the simulated clock is monotone."""

    name = "monotonic_clock"
    consumes = ("*",)

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._last = float("-inf")

    def on_event(self, ev: TraceEvent) -> None:
        if ev.time < self._last:
            self.flag(
                f"clock moved backwards: {ev.kind} at {ev.time} after {self._last}",
                ev.time,
            )
        self._last = max(self._last, ev.time)


class ChannelFifo(Checker):
    """Per-channel FIFO delivery within each generation.

    Within one generation, sends on a channel carry strictly increasing
    sequence numbers, accepted deliveries arrive in strictly increasing
    sequence order, and nothing is delivered that was never sent — either
    in this generation or re-injected from a checkpoint's channel state
    (replayed messages keep their pre-crash sequence numbers).
    """

    name = "channel_fifo"
    consumes = ("msg.send", "msg.deliver")

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._sent: Dict[Tuple[int, int, int], int] = {}  #: (gen,src,dst) -> seq
        self._delivered: Dict[Tuple[int, int, int], int] = {}
        #: highest seq ever put on a channel across generations — a replayed
        #: or re-executed message may reuse one of these, never exceed them+1.
        self._channel_high: Dict[Tuple[int, int], int] = {}

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "msg.send":
            key = (ev["gen"], ev["src"], ev["dst"])
            seq = ev["seq"]
            last = self._sent.get(key, 0)
            if seq <= last:
                self.flag(
                    f"send {ev['src']}->{ev['dst']} gen={ev['gen']} "
                    f"seq={seq} not increasing (last {last})",
                    ev.time,
                )
            self._sent[key] = max(last, seq)
            chan = (ev["src"], ev["dst"])
            self._channel_high[chan] = max(self._channel_high.get(chan, 0), seq)
        elif ev.kind == "msg.deliver":
            key = (ev["gen"], ev["src"], ev["dst"])
            seq = ev["seq"]
            last = self._delivered.get(key, 0)
            if seq <= last:
                self.flag(
                    f"delivery {ev['src']}->{ev['dst']} gen={ev['gen']} "
                    f"seq={seq} out of order (last {last})",
                    ev.time,
                )
            self._delivered[key] = max(last, seq)
            chan = (ev["src"], ev["dst"])
            if seq > self._channel_high.get(chan, 0):
                self.flag(
                    f"delivery {ev['src']}->{ev['dst']} seq={seq} was never "
                    f"sent (channel high {self._channel_high.get(chan, 0)})",
                    ev.time,
                )


class CutMonotonic(Checker):
    """Per-rank checkpoint indices advance strictly, rewinding only at a
    recovery (to the restored line's index)."""

    name = "cut_monotonic"
    consumes = ("proto.cut", "recover.line")

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._epoch: Dict[int, int] = {r: 0 for r in range(meta.n_ranks)}

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "proto.cut":
            rank, n = ev["rank"], ev["round"]
            if n <= self._epoch.get(rank, 0):
                self.flag(
                    f"rank {rank} cut round {n} <= current epoch "
                    f"{self._epoch.get(rank, 0)}",
                    ev.time,
                )
            self._epoch[rank] = max(self._epoch.get(rank, 0), n)
        elif ev.kind == "recover.line":
            for rank, idx in dict(ev["indices"]).items():
                self._epoch[rank] = idx


class CoordinatedTwoPhase(Checker):
    """The 2PC commit rules, re-derived from the event stream:

    * a commit decision for round *n* requires an ack from **every** rank —
      audited against the decision's own ``acks`` evidence (the votes the
      coordinator actually held), not just the votes cast somewhere in the
      stream, so a premature-quorum coordinator is caught even on runs
      where the missing vote was merely still on the wire;
    * every ack the decision cites must actually have been cast;
    * no commit decision (or apply) for a round with an abort vote;
    * no round may see both a commit and an abort decision;
    * commit-on-recovery is legal only for a round whose commit decision
      was broadcast before the crash.
    """

    name = "coordinated_two_phase"
    consumes = (
        "proto.ack",
        "proto.abort_report",
        "proto.commit",
        "proto.abort",
        "proto.commit_apply",
        "proto.commit_on_recovery",
    )

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._acks: Dict[int, Set[int]] = {}
        self._abort_votes: Dict[int, Set[int]] = {}
        self._committed: Set[int] = set()
        self._aborted: Set[int] = set()

    def on_event(self, ev: TraceEvent) -> None:
        if self.meta.klass != "coordinated":
            return
        if ev.kind == "proto.ack":
            self._acks.setdefault(ev["round"], set()).add(ev["rank"])
        elif ev.kind == "proto.abort_report":
            self._abort_votes.setdefault(ev["round"], set()).add(ev["rank"])
        elif ev.kind == "proto.commit":
            n = ev["round"]
            self._committed.add(n)
            cited = ev.get("acks")
            acks = set(cited) if cited is not None else self._acks.get(n, set())
            if acks != set(range(self.meta.n_ranks)):
                self.flag(
                    f"round {n} committed with acks {sorted(acks)} "
                    f"(need all {self.meta.n_ranks} ranks)",
                    ev.time,
                )
            if cited is not None:
                uncast = set(cited) - self._acks.get(n, set())
                if uncast:
                    self.flag(
                        f"round {n} commit cites ack(s) from {sorted(uncast)} "
                        f"that were never cast",
                        ev.time,
                    )
            if n in self._abort_votes:
                self.flag(
                    f"round {n} committed after abort vote(s) from "
                    f"{sorted(self._abort_votes[n])}",
                    ev.time,
                )
            if n in self._aborted:
                self.flag(f"round {n} committed after an abort decision", ev.time)
        elif ev.kind == "proto.abort":
            n = ev["round"]
            self._aborted.add(n)
            if n in self._committed:
                self.flag(f"round {n} aborted after a commit decision", ev.time)
        elif ev.kind == "proto.commit_apply":
            n = ev["round"]
            if n not in self._committed:
                self.flag(
                    f"rank {ev['rank']} applied commit for round {n} "
                    f"without a commit decision",
                    ev.time,
                )
            if n in self._abort_votes or n in self._aborted:
                self.flag(
                    f"rank {ev['rank']} applied commit for aborted round {n}",
                    ev.time,
                )
        elif ev.kind == "proto.commit_on_recovery":
            n = ev["round"]
            if n not in self._committed:
                self.flag(
                    f"commit-on-recovery of round {n} that was never "
                    f"decided committed before the crash",
                    ev.time,
                )


class StaggeredWriteMutex(Checker):
    """Staggered variants: checkpoint writes of one round never overlap
    *on the same storage server* — the per-server token ring (NBMS/NBCS)
    / write slot (NBS) holds mutual exclusion on each shard's path. With
    one server (the paper's machine) this is the old global mutex; with S
    shards, up to S writers (one per shard) are legal concurrently."""

    name = "staggered_write_mutex"
    consumes = ("proto.write_begin", "proto.write_end")

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        #: (round, server) -> rank currently writing on that shard
        self._open: Dict[tuple, int] = {}

    def _server_of(self, rank: int) -> int:
        return rank * self.meta.storage_servers // self.meta.n_ranks

    def on_event(self, ev: TraceEvent) -> None:
        if not self.meta.staggered or self.meta.klass != "coordinated":
            return
        if ev.kind == "proto.write_begin":
            n, rank = ev["round"], ev["rank"]
            key = (n, self._server_of(rank))
            if key in self._open:
                self.flag(
                    f"rank {rank} began its round-{n} write while rank "
                    f"{self._open[key]} was still writing to server "
                    f"{key[1]} (staggering broken)",
                    ev.time,
                )
            self._open[key] = rank
        elif ev.kind == "proto.write_end":
            self._open.pop((ev["round"], self._server_of(ev["rank"])), None)


class GcLineSafety(Checker):
    """Garbage collection never deletes a recovery-line member.

    Two independent checks: (1) a ``gc.discard`` must not hit an index the
    same pass declared protected (the line and its incremental chains);
    (2) no later ``recover.line`` may restore an index that GC discarded
    earlier (indices are never reused, so this is exact).
    """

    name = "gc_line_safety"
    consumes = ("gc.run", "gc.discard", "recover.line")

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._protected: Dict[int, Tuple[int, ...]] = {}
        self._discarded: Set[Tuple[int, int]] = set()

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "gc.run":
            self._protected = {
                rank: tuple(keep) for rank, keep in dict(ev["protected"]).items()
            }
        elif ev.kind == "gc.discard":
            rank, idx = ev["rank"], ev["index"]
            if idx in self._protected.get(rank, ()):
                self.flag(
                    f"GC discarded protected checkpoint r{rank}#{idx} "
                    f"(line/chain member)",
                    ev.time,
                )
            self._discarded.add((rank, idx))
        elif ev.kind == "recover.line":
            for rank, idx in dict(ev["indices"]).items():
                if idx > 0 and (rank, idx) in self._discarded:
                    self.flag(
                        f"recovery line uses checkpoint r{rank}#{idx} that "
                        f"GC discarded earlier",
                        ev.time,
                    )


class LineSoundness(Checker):
    """Every restored recovery line satisfies the scheme's consistency-line
    definition, recomputed from the line's channel counters:

    * **coordinated** — single committed round: all ranks restore the same
      index (orphans tolerated under piecewise-deterministic replay);
    * **independent, no logging** — no orphans *and* transitless
      (``consumed == sent`` on every channel);
    * **independent + logging** — orphan-tolerant, but every in-transit
      message must have been replayed from the stable logs (the runtime
      raises if one is missing; we re-check the replay count).
    """

    name = "line_soundness"
    consumes = ("recover.replay", "recover.line")

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        #: in-transit message count implied by the last restored line's
        #: counters, awaiting the matching ``recover.replay`` event.
        self._expect_replay: Optional[int] = None

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "recover.replay":
            if (
                self._expect_replay is not None
                and ev["count"] != self._expect_replay
            ):
                self.flag(
                    f"recovery replayed {ev['count']} in-transit messages "
                    f"but the line's counters imply {self._expect_replay} "
                    f"(messages lost or duplicated across the line)",
                    ev.time,
                )
            self._expect_replay = None
            return
        if ev.kind != "recover.line":
            return
        indices = dict(ev["indices"])
        sent = {r: dict(v) for r, v in dict(ev["sent"]).items()}
        consumed = {r: dict(v) for r, v in dict(ev["consumed"]).items()}
        if not ev.get("consistent", True):
            self.flag("runtime flagged the restored line as unsound", ev.time)
        ranks = sorted(indices)
        self._expect_replay = sum(
            max(0, sent.get(p, {}).get(q, 0) - consumed.get(q, {}).get(p, 0))
            for p in ranks
            for q in ranks
            if p != q
        )
        if self.meta.klass == "coordinated":
            if len(set(indices.values())) != 1:
                self.flag(
                    f"coordinated line spans several rounds: {indices}", ev.time
                )
            return
        if self.meta.klass != "independent":
            return
        for p in ranks:
            for q in ranks:
                if p == q:
                    continue
                sent_pq = sent.get(p, {}).get(q, 0)
                cons_qp = consumed.get(q, {}).get(p, 0)
                if not self.meta.logging and cons_qp > sent_pq:
                    self.flag(
                        f"orphan across the line on channel {p}->{q}: "
                        f"consumed {cons_qp} > sent {sent_pq}",
                        ev.time,
                    )
                if not self.meta.logging and sent_pq != cons_qp:
                    self.flag(
                        f"unlogged independent line is not transitless on "
                        f"{p}->{q}: sent {sent_pq}, consumed {cons_qp}",
                        ev.time,
                    )


class PolicyAdaptation(Checker):
    """Checkpoint-policy decisions and adaptations are well-formed:

    * per rank, the decided initiation times (``policy.decide``'s ``at``)
      never move backwards — a policy that scheduled shot *k* at *t* may
      not schedule shot *k+1* before *t*;
    * an interval-based decision stays inside the policy's declared
      bounds (``lo <= interval <= hi`` when those fields are present);
    * an adaptation's ``direction`` is ``narrow`` or ``widen``, its new
      interval respects the bounds, and its ``cause`` is consistent with
      its evidence: a ``fault`` adaptation must cite ``observed > 0``
      faults, a ``quiet`` adaptation must widen.
    """

    name = "policy_adaptation"
    consumes = ("policy.decide", "policy.adapt")

    _EPS = 1e-9

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._last_at: Dict[int, float] = {}

    def on_event(self, ev: TraceEvent) -> None:
        if ev.kind == "policy.decide":
            rank, at = ev["rank"], ev["at"]
            last = self._last_at.get(rank)
            if last is not None and at < last - self._EPS:
                self.flag(
                    f"policy {ev['policy']} rank {rank} decided shot "
                    f"{ev['shot']} at {at} before the previous shot ({last})",
                    ev.time,
                )
            self._last_at[rank] = max(last if last is not None else at, at)
            self._check_bounds(ev)
        elif ev.kind == "policy.adapt":
            direction = ev["direction"]
            if direction not in ("narrow", "widen"):
                self.flag(
                    f"policy {ev['policy']} adapted in unknown direction "
                    f"{direction!r}",
                    ev.time,
                )
            cause = ev["cause"]
            if cause == "fault" and not ev["observed"] > 0:
                self.flag(
                    f"policy {ev['policy']} narrowed for cause=fault with "
                    f"no observed faults",
                    ev.time,
                )
            if cause == "quiet" and direction != "widen":
                self.flag(
                    f"policy {ev['policy']} adapted for cause=quiet but "
                    f"direction is {direction!r} (quiet periods widen)",
                    ev.time,
                )
            self._check_bounds(ev)

    def _check_bounds(self, ev: TraceEvent) -> None:
        interval = ev.get("interval")
        lo, hi = ev.get("lo"), ev.get("hi")
        if interval is None or lo is None or hi is None:
            return
        if not (lo - self._EPS <= interval <= hi + self._EPS):
            self.flag(
                f"policy {ev['policy']} interval {interval} escaped its "
                f"bounds [{lo}, {hi}]",
                ev.time,
            )


class CicIndexRule(Checker):
    """The CIC index rule, re-derived from the event stream.

    Mirrors the receiver's index (``proto.cut`` rounds, FDAS promotions,
    recovery-line resets) and its forced-index obligation, then audits
    every accepted delivery:

    * a message whose piggybacked index exceeds both the receiver's index
      and its standing obligation must trigger ``proto.cic.forced`` or
      ``proto.cic.promote`` *as part of that delivery* (the scheme hook
      runs synchronously) — and at an index at least the message's;
    * no basic checkpoint may land below a standing forced-index
      obligation (the deferred forced cut must *jump* to the obliged
      index, never undershoot it).
    """

    name = "cic_index_rule"
    consumes = (
        "msg.deliver",
        "proto.cut",
        "proto.cic.forced",
        "proto.cic.promote",
        "recover.line",
    )

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._idx: Dict[int, int] = {r: 0 for r in range(meta.n_ranks)}
        self._obliged: Dict[int, int] = {}  #: rank -> outstanding forced index
        #: rank -> index of a delivery whose rule event has not appeared yet
        self._pending: Dict[int, int] = {}
        self._now = 0.0

    def _rule_never_fired(self, rank: int, time: float) -> None:
        pending = self._pending.pop(rank, None)
        if pending is not None:
            self.flag(
                f"rank {rank} consumed a message of interval index {pending} "
                f"above its own without a forced checkpoint",
                time,
            )

    def on_event(self, ev: TraceEvent) -> None:
        if self.meta.klass != "cic":
            return
        self._now = ev.time
        if ev.kind == "msg.deliver":
            dst, midx = ev["dst"], ev["epoch"]
            self._rule_never_fired(dst, ev.time)
            if midx > max(self._idx.get(dst, 0), self._obliged.get(dst, 0)):
                self._pending[dst] = midx
        elif ev.kind == "proto.cic.forced":
            rank, idx = ev["rank"], ev["index"]
            pending = self._pending.pop(rank, None)
            if pending is not None and idx < pending:
                self.flag(
                    f"rank {rank} forced index {idx} below the triggering "
                    f"message's index {pending}",
                    ev.time,
                )
            self._obliged[rank] = max(self._obliged.get(rank, 0), idx)
        elif ev.kind == "proto.cic.promote":
            rank, idx = ev["rank"], ev["index"]
            pending = self._pending.pop(rank, None)
            if pending is not None and idx < pending:
                self.flag(
                    f"rank {rank} promoted to index {idx} below the "
                    f"triggering message's index {pending}",
                    ev.time,
                )
            self._idx[rank] = idx
            if self._obliged.get(rank, 0) <= idx:
                self._obliged.pop(rank, None)
        elif ev.kind == "proto.cut":
            rank, n = ev["rank"], ev["round"]
            self._rule_never_fired(rank, ev.time)
            obliged = self._obliged.pop(rank, None)
            if obliged is not None and n < obliged:
                self.flag(
                    f"rank {rank} cut at index {n} below its forced-index "
                    f"obligation {obliged}",
                    ev.time,
                )
            self._idx[rank] = n
        elif ev.kind == "recover.line":
            for rank, idx in dict(ev["indices"]).items():
                self._idx[rank] = idx
            # rolled-away state: obligations and in-flight rule firings
            # died with the pre-crash generation.
            self._pending.clear()
            self._obliged.clear()

    def finish(self) -> List[TraceViolation]:
        for rank in sorted(self._pending):
            self._rule_never_fired(rank, self._now)
        return self.violations


class MsglogReplayBounds(Checker):
    """Sender-based pessimistic logging bounds every rollback:

    * each rank's restored line index is its newest stable checkpoint —
      recovery never rolls a rank back past its last committed record
      (quarantined records are legitimately excluded, so ``recover.
      quarantine`` retracts them from the expectation);
    * everything the line's channel counters say is in transit must sit
      at or below the channel's durable log watermark — the replayed
      suffix comes entirely from stable logs, never from luck.
    """

    name = "msglog_replay_bounds"
    consumes = (
        "proto.local_commit",
        "proto.mlog.logged",
        "recover.quarantine",
        "recover.line",
    )

    def __init__(self, meta: RunMeta) -> None:
        super().__init__(meta)
        self._stable: Dict[int, Set[int]] = {}  #: rank -> committed indices
        self._watermark: Dict[Tuple[int, int], int] = {}  #: (src,dst) -> seq

    def on_event(self, ev: TraceEvent) -> None:
        if self.meta.klass != "msglog":
            return
        if ev.kind == "proto.local_commit":
            self._stable.setdefault(ev["rank"], set()).add(ev["index"])
        elif ev.kind == "proto.mlog.logged":
            chan = (ev["src"], ev["dst"])
            self._watermark[chan] = max(self._watermark.get(chan, 0), ev["seq"])
        elif ev.kind == "recover.quarantine":
            self._stable.get(ev["rank"], set()).discard(ev["index"])
        elif ev.kind == "recover.line":
            indices = dict(ev["indices"])
            sent = {r: dict(v) for r, v in dict(ev["sent"]).items()}
            consumed = {r: dict(v) for r, v in dict(ev["consumed"]).items()}
            for rank, idx in sorted(indices.items()):
                newest = max(self._stable.get(rank, ()), default=0)
                if idx < newest:
                    self.flag(
                        f"rank {rank} rolled back to checkpoint {idx} past "
                        f"its newest stable checkpoint {newest} (logging "
                        f"bounds rollback to the last committed record)",
                        ev.time,
                    )
                # records above the line are discarded by recovery
                self._stable[rank] = {
                    i for i in self._stable.get(rank, ()) if i <= idx
                }
            ranks = sorted(indices)
            for p in ranks:
                for q in ranks:
                    if p == q:
                        continue
                    hi = sent.get(p, {}).get(q, 0)
                    lo = consumed.get(q, {}).get(p, 0)
                    mark = self._watermark.get((p, q), 0)
                    if hi > lo and hi > mark:
                        self.flag(
                            f"line says channel {p}->{q} has in-transit "
                            f"messages up to seq {hi} but the durable log "
                            f"watermark is {mark} (replay would cross the "
                            f"last logged point)",
                            ev.time,
                        )


def default_checkers(meta: RunMeta) -> List[Checker]:
    """The full checker battery for one run: the scheme-independent core,
    plus every protocol-declared checker from the registry (each gates
    itself on ``meta.klass``, so the battery is safe to run wholesale)."""
    from ..chklib.schemes.registry import REGISTRY

    checkers: List[Checker] = [
        MonotonicClock(meta),
        ChannelFifo(meta),
        CutMonotonic(meta),
        GcLineSafety(meta),
        LineSoundness(meta),
        PolicyAdaptation(meta),
    ]
    checkers.extend(cls(meta) for cls in REGISTRY.trace_checkers())
    return checkers
