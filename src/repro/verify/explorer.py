"""Exhaustive state-space exploration for protocol models.

A *model* is any object exposing:

* ``initial_states() -> Iterable[state]`` — hashable start states;
* ``successors(state) -> Iterable[(label, state)]`` — every enabled action
  and its resulting state (the explorer never invents transitions);
* ``invariants`` — ``[(name, predicate)]`` checked on **every** reachable
  state. Because a crash can happen at any instant, checking a state
  invariant on every reachable state is equivalent to checking it at every
  possible crash point — this is how the model covers crash branches
  without an explicit crash action;
* ``terminal_invariants`` — ``[(name, predicate)]`` checked only on states
  with no enabled action (termination / final-outcome properties).

Exploration is breadth-first, so a reported counterexample trace is a
shortest one. The frontier is bounded by ``max_states`` as a safety valve;
hitting the bound marks the result incomplete instead of raising, because
an incomplete exploration can still *find* bugs — it just cannot prove
their absence.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Tuple

__all__ = ["Violation", "ExplorationResult", "explore"]

State = Hashable


@dataclass
class Violation:
    """One invariant violation with a shortest counterexample trace."""

    invariant: str
    state: Any
    trace: Tuple[str, ...]  #: action labels from an initial state
    terminal: bool = False  #: found on a terminal (deadlocked/final) state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = "terminal state" if self.terminal else "state"
        steps = " -> ".join(self.trace) or "<initial>"
        return f"<Violation {self.invariant} at {where} via {steps}>"


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive exploration."""

    states_explored: int
    transitions: int
    terminal_states: int
    violations: List[Violation] = field(default_factory=list)
    complete: bool = True  #: False when max_states cut the search short

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        scope = "exhaustive" if self.complete else "TRUNCATED"
        return (
            f"{status}: {self.states_explored} states, "
            f"{self.transitions} transitions, "
            f"{self.terminal_states} terminal ({scope})"
        )


def trace_to(
    parents: Dict[State, Optional[Tuple[State, str]]], state: State
) -> Tuple[str, ...]:
    """Reconstruct the action-label path from an initial state to *state*."""
    labels: List[str] = []
    cursor: Optional[State] = state
    while cursor is not None:
        link = parents[cursor]
        if link is None:
            break
        cursor, label = link
        labels.append(label)
    return tuple(reversed(labels))


def explore(
    model: Any,
    max_states: int = 500_000,
    stop_at_first: bool = False,
) -> ExplorationResult:
    """Breadth-first exhaustive exploration of *model*.

    Every reachable state is checked against ``model.invariants``; states
    with no successor are additionally checked against
    ``model.terminal_invariants``. Violations carry a shortest trace.
    """
    invariants = list(getattr(model, "invariants", ()))
    terminal_invariants = list(getattr(model, "terminal_invariants", ()))
    parents: Dict[State, Optional[Tuple[State, str]]] = {}
    queue: deque[State] = deque()
    result = ExplorationResult(
        states_explored=0, transitions=0, terminal_states=0
    )

    def check(state: State, checks, terminal: bool) -> bool:
        for name, predicate in checks:
            if not predicate(state):
                result.violations.append(
                    Violation(
                        invariant=name,
                        state=state,
                        trace=trace_to(parents, state),
                        terminal=terminal,
                    )
                )
                if stop_at_first:
                    return False
        return True

    for initial in model.initial_states():
        if initial not in parents:
            parents[initial] = None
            queue.append(initial)

    while queue:
        state = queue.popleft()
        result.states_explored += 1
        if not check(state, invariants, terminal=False):
            return result
        successors = list(model.successors(state))
        result.transitions += len(successors)
        if not successors:
            result.terminal_states += 1
            if not check(state, terminal_invariants, terminal=True):
                return result
            continue
        for label, nxt in successors:
            if nxt not in parents:
                if len(parents) >= max_states:
                    result.complete = False
                    continue
                parents[nxt] = (state, label)
                queue.append(nxt)

    return result
