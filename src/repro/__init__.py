"""repro — a reproduction of Silva & Silva, "The Performance of Coordinated
and Independent Checkpointing" (IPPS 1999).

The package contains everything the study needs, built from scratch:

* :mod:`repro.core` — a deterministic discrete-event simulation kernel;
* :mod:`repro.machine` — the Parsytec-Xplorer-like machine model (nodes,
  links, shared stable storage with contention);
* :mod:`repro.net` — the CHK-LIB communication layer: reliable FIFO
  channels with an MPI-like API and collectives;
* :mod:`repro.chklib` — the checkpointing library: coordinated
  (`NB`/`NBM`/`NBMS`) and independent (`Indep`/`Indep_M`) schemes, recovery
  lines, rollback-dependency analysis, garbage collection, message logging
  and the crash/rollback runtime;
* :mod:`repro.apps` — the seven application benchmarks (ISING, SOR, ASP,
  NBODY, GAUSS, TSP, NQUEENS);
* :mod:`repro.experiments` — regeneration of the paper's Tables 1-3 plus
  ablations, sweeps and recovery experiments;
* :mod:`repro.analysis` — overhead metrics and table rendering.

Quickstart::

    from repro.apps import SOR
    from repro.chklib import CheckpointRuntime, CoordinatedScheme

    baseline = CheckpointRuntime(SOR(n=256, iters=200), seed=0).run()
    times = [baseline.sim_time * f for f in (0.25, 0.5, 0.75)]
    report = CheckpointRuntime(
        SOR(n=256, iters=200),
        scheme=CoordinatedScheme.NBMS(times),
        seed=0,
    ).run()
    print(report.sim_time - baseline.sim_time, "seconds of overhead")
"""

from . import analysis, apps, chklib, core, experiments, fault, machine, net
from .apps import ASP, SOR, Application, Gauss, Ising, NBody, NQueens, TSP
from .chklib import (
    CheckpointRuntime,
    CoordinatedScheme,
    FaultPlan,
    IndependentScheme,
    NoCheckpointing,
    RunReport,
)
from .machine import MachineParams

__version__ = "1.0.0"

__all__ = [
    "core",
    "machine",
    "net",
    "chklib",
    "apps",
    "experiments",
    "analysis",
    "fault",
    "CheckpointRuntime",
    "CoordinatedScheme",
    "IndependentScheme",
    "NoCheckpointing",
    "FaultPlan",
    "RunReport",
    "MachineParams",
    "Application",
    "SOR",
    "Ising",
    "ASP",
    "NBody",
    "Gauss",
    "TSP",
    "NQueens",
    "__version__",
]
