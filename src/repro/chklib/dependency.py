"""Rollback-dependency graphs (Wang-style interval analysis).

The execution of process *p* is split into intervals: interval *i* runs
from cut *i-1* to cut *i*; the interval after the last checkpoint (the
*volatile* interval, lost at a crash) is ``last+1``. A message sent by *p*
in interval *i* and consumed by *q* in interval *j* induces the dependency
edge ``(p, i) -> (q, j)``: if interval *i* rolls back, the send never
happened and interval *j* is orphaned, so it must roll back too.

This module rebuilds those edges purely from the per-cut channel counters
(no message content needed) and re-derives the recovery line by BFS — an
independent cross-check of :func:`repro.chklib.recovery.consistent_line`,
used by the property-based tests and the domino-effect experiments.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import networkx as nx

from .recovery import CutPoint

__all__ = [
    "interval_send_ranges",
    "rollback_dependency_graph",
    "line_via_graph",
]

Interval = Tuple[int, int]  # (rank, interval index >= 1)


def _counts_series(cuts: List[CutPoint], peer: int, kind: str) -> List[int]:
    """Cumulative count towards/from *peer* at each cut (index-aligned)."""
    if kind == "sent":
        return [c.sent_to(peer) for c in cuts]
    return [c.consumed_from(peer) for c in cuts]


def interval_send_ranges(
    cuts: List[CutPoint], peer: int, final_count: int
) -> List[Tuple[int, int, int]]:
    """``(interval, first_seq, last_seq)`` of sends to *peer* per interval.

    *final_count* is the channel's count at the end of execution (the
    volatile interval's upper bound). Empty intervals are omitted.
    """
    series = _counts_series(cuts, peer, "sent") + [final_count]
    out = []
    for i in range(1, len(series)):
        lo, hi = series[i - 1], series[i]
        if hi > lo:
            out.append((i, lo + 1, hi))
    return out


def rollback_dependency_graph(
    cuts: Dict[int, List[CutPoint]],
    final_sent: Dict[int, Dict[int, int]],
    final_consumed: Dict[int, Dict[int, int]],
) -> nx.DiGraph:
    """Build the interval dependency graph.

    Parameters
    ----------
    cuts:
        per-rank cut lists (as from :func:`repro.chklib.recovery.build_cuts`).
    final_sent / final_consumed:
        per-rank channel counters at the moment of analysis (the volatile
        interval's totals), ``{rank: {peer: count}}``.
    """
    g = nx.DiGraph()
    ranks = sorted(cuts)
    # nodes: every interval including the volatile one
    for r in ranks:
        n_intervals = len(cuts[r])  # cuts 0..k -> intervals 1..k, +1 volatile
        for i in range(1, n_intervals + 1):
            g.add_node((r, i), volatile=(i == n_intervals))
            if i > 1:
                # succession: rolling back interval i invalidates the cut
                # at its end, so every later interval of r rolls back too
                g.add_edge((r, i - 1), (r, i))
    for p in ranks:
        for q in ranks:
            if p == q:
                continue
            sent_series = _counts_series(cuts[p], q, "sent") + [
                final_sent.get(p, {}).get(q, 0)
            ]
            cons_series = _counts_series(cuts[q], p, "consumed") + [
                final_consumed.get(q, {}).get(p, 0)
            ]
            # seq k was sent in p's interval i iff sent[i-1] < k <= sent[i];
            # consumed in q's interval j iff cons[j-1] < k <= cons[j].
            # Edge (p,i)->(q,j) iff the seq ranges overlap.
            for i in range(1, len(sent_series)):
                s_lo, s_hi = sent_series[i - 1], sent_series[i]
                if s_hi <= s_lo:
                    continue
                for j in range(1, len(cons_series)):
                    c_lo, c_hi = cons_series[j - 1], cons_series[j]
                    if c_hi <= c_lo:
                        continue
                    if s_lo < c_hi and c_lo < s_hi:
                        g.add_edge((p, i), (q, j))
    return g


def line_via_graph(
    cuts: Dict[int, List[CutPoint]],
    final_sent: Dict[int, Dict[int, int]],
    final_consumed: Dict[int, Dict[int, int]],
) -> Dict[int, CutPoint]:
    """Recovery line by rollback propagation on the dependency graph.

    Seed: every volatile interval is rolled back (lost in the crash). Any
    interval reachable from a rolled-back interval is rolled back too. The
    line for rank *r* restores the cut just before its earliest rolled-back
    interval. Must agree with ``consistent_line`` on the same inputs.
    """
    g = rollback_dependency_graph(cuts, final_sent, final_consumed)
    seeds = [node for node, data in g.nodes(data=True) if data["volatile"]]
    rolled: Set[Interval] = set(seeds)
    for seed in seeds:
        rolled.update(nx.descendants(g, seed))
    line: Dict[int, CutPoint] = {}
    for r in sorted(cuts):
        rolled_intervals = [i for (rr, i) in rolled if rr == r]
        first_bad = min(rolled_intervals) if rolled_intervals else len(cuts[r])
        line[r] = cuts[r][first_bad - 1]
    return line
