"""Recovery lines, rollback propagation and domino-effect analysis.

Model: each process has cut points ``0..k`` (0 = initial state, ``i >= 1``
its *i*-th checkpoint), each carrying per-channel *send* and *consume*
counts. A global line ``L = (l_0 … l_{N-1})`` picks one cut per process.

* ``L`` is **consistent** (no orphans) iff for every channel ``p -> q``:
  ``consumed_q(l_q) <= sent_p(l_p)`` — no process "remembers" receiving a
  message the rolled-back sender has not yet sent.
* ``L`` is **transitless** iff additionally ``sent_p(l_p) ==
  consumed_q(l_q)`` — no message is in flight across the line. Without
  message logging, independent checkpointing must recover to a transitless
  line or lose messages; with sender-based logging, any consistent line is
  recoverable (in-transit messages replay from the logs).

Because counts are monotone in the cut index, the set of consistent lines
is closed under componentwise max, so a unique maximal consistent line
exists; :func:`consistent_line` finds it by standard rollback propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .storage_mgr import CheckpointRecord, CheckpointStore

__all__ = [
    "CutPoint",
    "build_cuts",
    "consistent_line",
    "is_consistent",
    "in_transit_ranges",
    "covered_index_line",
    "rollback_distances",
    "domino_extent",
]


@dataclass(frozen=True)
class CutPoint:
    """One candidate restore point of one process."""

    rank: int
    index: int  #: 0 = initial state; >= 1 = checkpoint index
    sent: Tuple[Tuple[int, int], ...]  #: ((dst, count), ...) at the cut
    consumed: Tuple[Tuple[int, int], ...]  #: ((src, count), ...) at the cut
    record: Optional[CheckpointRecord] = None

    def sent_to(self, dst: int) -> int:
        for d, c in self.sent:
            if d == dst:
                return c
        return 0

    def consumed_from(self, src: int) -> int:
        for s, c in self.consumed:
            if s == src:
                return c
        return 0


def build_cuts(
    store: CheckpointStore,
    written_only: bool = True,
    eligible: Optional[Callable[[CheckpointRecord], bool]] = None,
) -> Dict[int, List[CutPoint]]:
    """Per-rank cut lists (index 0 = initial state) from the store.

    ``written_only`` excludes checkpoints whose write to stable storage has
    not finished — they do not survive a crash. Quarantined checkpoints
    (corrupt or unreadable) are always excluded; *eligible* narrows
    further when given.
    """
    cuts: Dict[int, List[CutPoint]] = {}
    for rank in range(store.n_ranks):
        points = [CutPoint(rank=rank, index=0, sent=(), consumed=())]
        for rec in store.chain(rank):
            if written_only and rec.written_at is None:
                continue
            if rec.quarantined:
                continue
            if eligible is not None and not eligible(rec):
                continue
            meta = rec.comm_meta
            points.append(
                CutPoint(
                    rank=rank,
                    index=rec.index,
                    sent=tuple(sorted(meta["sent"].items())),
                    consumed=tuple(sorted(meta["consumed"].items())),
                    record=rec,
                )
            )
        cuts[rank] = points
    return cuts


def is_consistent(
    line: Dict[int, CutPoint], transitless: bool = False
) -> bool:
    """Check the no-orphan (and optionally transitless) conditions."""
    ranks = sorted(line)
    for p in ranks:
        for q in ranks:
            if p == q:
                continue
            sent = line[p].sent_to(q)
            consumed = line[q].consumed_from(p)
            if consumed > sent:
                return False
            if transitless and sent != consumed:
                return False
    return True


def consistent_line(
    cuts: Dict[int, List[CutPoint]],
    transitless: bool = False,
) -> Dict[int, CutPoint]:
    """The maximal consistent line under rollback propagation.

    Starts from everyone's latest cut; while an orphan exists, rolls the
    *receiver* back one cut; if ``transitless``, an in-transit message rolls
    the *sender* back. Terminates because indices only decrease and the
    all-initial line is trivially consistent (and transitless).
    """
    ranks = sorted(cuts)
    pos = {r: len(cuts[r]) - 1 for r in ranks}
    changed = True
    while changed:
        changed = False
        for p in ranks:
            for q in ranks:
                if p == q:
                    continue
                sent = cuts[p][pos[p]].sent_to(q)
                consumed = cuts[q][pos[q]].consumed_from(p)
                if consumed > sent:
                    pos[q] -= 1
                    changed = True
                elif transitless and sent > consumed:
                    pos[p] -= 1
                    changed = True
    return {r: cuts[r][pos[r]] for r in ranks}


def in_transit_ranges(
    line: Dict[int, CutPoint]
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Per-channel ``(first_seq, last_seq)`` of messages crossing the line.

    These are the messages that must be replayed from sender logs (or are
    lost, without logging). Channels with nothing in flight are omitted.
    """
    ranges: Dict[Tuple[int, int], Tuple[int, int]] = {}
    ranks = sorted(line)
    for p in ranks:
        for q in ranks:
            if p == q:
                continue
            sent = line[p].sent_to(q)
            consumed = line[q].consumed_from(p)
            if sent > consumed:
                ranges[(p, q)] = (consumed + 1, sent)
    return ranges


def covered_index_line(
    store: CheckpointStore,
    promotions: Optional[Dict[int, Dict[int, int]]] = None,
    eligible: Optional[Callable[[CheckpointRecord], bool]] = None,
) -> Dict[int, Optional[CheckpointRecord]]:
    """The line at the newest index *every* rank covers (index-based CIC).

    A usable record covers its own index; with *promotions* (``{rank:
    {base_index: top_index}}``, from FDAS-style index promotion) record
    ``base_index`` additionally covers every index up to ``top_index``.
    Index 0 (the initial state, promotable too) is always covered, so a
    line always exists. Returns ``{rank: record | None}`` with ``None``
    for a rank restoring its initial state.

    Promotion ranges cannot overlap a later record's coverage: a cut
    taken after a promotion gets an index above the promoted top, so at
    most one record covers any given index.
    """
    promotions = promotions or {}
    covered: Dict[int, Dict[int, int]] = {}
    for rank in range(store.n_ranks):
        tops = promotions.get(rank, {})
        cov = {0: tops.get(0, 0)}
        for rec in store.chain(rank):
            if rec.written_at is None or rec.quarantined:
                continue
            if eligible is not None and not eligible(rec):
                continue
            cov[rec.index] = max(rec.index, tops.get(rec.index, rec.index))
        covered[rank] = cov
    common: Optional[set] = None
    for cov in covered.values():
        mine = set()
        for base, top in cov.items():
            mine.update(range(base, top + 1))
        common = mine if common is None else common & mine
    target = max(common) if common else 0
    line: Dict[int, Optional[CheckpointRecord]] = {}
    for rank in range(store.n_ranks):
        base = max(
            (b for b, t in covered[rank].items() if b <= target <= t),
            default=0,
        )
        line[rank] = store.get(rank, base) if base > 0 else None
    return line


def rollback_distances(
    line: Dict[int, CutPoint], latest: Dict[int, int]
) -> Dict[int, int]:
    """Checkpoints lost per rank: latest index minus the line's index."""
    return {r: latest[r] - line[r].index for r in sorted(line)}


def domino_extent(line: Dict[int, CutPoint], latest: Dict[int, int]) -> float:
    """Fraction of ranks forced all the way back to the initial state
    (among ranks that had at least one checkpoint). 1.0 = full domino."""
    eligible = [r for r in line if latest[r] > 0]
    if not eligible:
        return 0.0
    hit = sum(1 for r in eligible if line[r].index == 0)
    return hit / len(eligible)
