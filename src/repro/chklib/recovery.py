"""Recovery lines, rollback propagation and domino-effect analysis.

Model: each process has cut points ``0..k`` (0 = initial state, ``i >= 1``
its *i*-th checkpoint), each carrying per-channel *send* and *consume*
counts. A global line ``L = (l_0 … l_{N-1})`` picks one cut per process.

* ``L`` is **consistent** (no orphans) iff for every channel ``p -> q``:
  ``consumed_q(l_q) <= sent_p(l_p)`` — no process "remembers" receiving a
  message the rolled-back sender has not yet sent.
* ``L`` is **transitless** iff additionally ``sent_p(l_p) ==
  consumed_q(l_q)`` — no message is in flight across the line. Without
  message logging, independent checkpointing must recover to a transitless
  line or lose messages; with sender-based logging, any consistent line is
  recoverable (in-transit messages replay from the logs).

Because counts are monotone in the cut index, the set of consistent lines
is closed under componentwise max, so a unique maximal consistent line
exists; :func:`consistent_line` finds it by standard rollback propagation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .storage_mgr import CheckpointRecord, CheckpointStore

__all__ = [
    "CutPoint",
    "build_cuts",
    "consistent_line",
    "is_consistent",
    "in_transit_ranges",
    "rollback_distances",
    "domino_extent",
]


@dataclass(frozen=True)
class CutPoint:
    """One candidate restore point of one process."""

    rank: int
    index: int  #: 0 = initial state; >= 1 = checkpoint index
    sent: Tuple[Tuple[int, int], ...]  #: ((dst, count), ...) at the cut
    consumed: Tuple[Tuple[int, int], ...]  #: ((src, count), ...) at the cut
    record: Optional[CheckpointRecord] = None

    def sent_to(self, dst: int) -> int:
        for d, c in self.sent:
            if d == dst:
                return c
        return 0

    def consumed_from(self, src: int) -> int:
        for s, c in self.consumed:
            if s == src:
                return c
        return 0


def build_cuts(
    store: CheckpointStore,
    written_only: bool = True,
    eligible: Optional[Callable[[CheckpointRecord], bool]] = None,
) -> Dict[int, List[CutPoint]]:
    """Per-rank cut lists (index 0 = initial state) from the store.

    ``written_only`` excludes checkpoints whose write to stable storage has
    not finished — they do not survive a crash. Quarantined checkpoints
    (corrupt or unreadable) are always excluded; *eligible* narrows
    further when given.
    """
    cuts: Dict[int, List[CutPoint]] = {}
    for rank in range(store.n_ranks):
        points = [CutPoint(rank=rank, index=0, sent=(), consumed=())]
        for rec in store.chain(rank):
            if written_only and rec.written_at is None:
                continue
            if rec.quarantined:
                continue
            if eligible is not None and not eligible(rec):
                continue
            meta = rec.comm_meta
            points.append(
                CutPoint(
                    rank=rank,
                    index=rec.index,
                    sent=tuple(sorted(meta["sent"].items())),
                    consumed=tuple(sorted(meta["consumed"].items())),
                    record=rec,
                )
            )
        cuts[rank] = points
    return cuts


def is_consistent(
    line: Dict[int, CutPoint], transitless: bool = False
) -> bool:
    """Check the no-orphan (and optionally transitless) conditions."""
    ranks = sorted(line)
    for p in ranks:
        for q in ranks:
            if p == q:
                continue
            sent = line[p].sent_to(q)
            consumed = line[q].consumed_from(p)
            if consumed > sent:
                return False
            if transitless and sent != consumed:
                return False
    return True


def consistent_line(
    cuts: Dict[int, List[CutPoint]],
    transitless: bool = False,
) -> Dict[int, CutPoint]:
    """The maximal consistent line under rollback propagation.

    Starts from everyone's latest cut; while an orphan exists, rolls the
    *receiver* back one cut; if ``transitless``, an in-transit message rolls
    the *sender* back. Terminates because indices only decrease and the
    all-initial line is trivially consistent (and transitless).
    """
    ranks = sorted(cuts)
    pos = {r: len(cuts[r]) - 1 for r in ranks}
    changed = True
    while changed:
        changed = False
        for p in ranks:
            for q in ranks:
                if p == q:
                    continue
                sent = cuts[p][pos[p]].sent_to(q)
                consumed = cuts[q][pos[q]].consumed_from(p)
                if consumed > sent:
                    pos[q] -= 1
                    changed = True
                elif transitless and sent > consumed:
                    pos[p] -= 1
                    changed = True
    return {r: cuts[r][pos[r]] for r in ranks}


def in_transit_ranges(
    line: Dict[int, CutPoint]
) -> Dict[Tuple[int, int], Tuple[int, int]]:
    """Per-channel ``(first_seq, last_seq)`` of messages crossing the line.

    These are the messages that must be replayed from sender logs (or are
    lost, without logging). Channels with nothing in flight are omitted.
    """
    ranges: Dict[Tuple[int, int], Tuple[int, int]] = {}
    ranks = sorted(line)
    for p in ranks:
        for q in ranks:
            if p == q:
                continue
            sent = line[p].sent_to(q)
            consumed = line[q].consumed_from(p)
            if sent > consumed:
                ranges[(p, q)] = (consumed + 1, sent)
    return ranges


def rollback_distances(
    line: Dict[int, CutPoint], latest: Dict[int, int]
) -> Dict[int, int]:
    """Checkpoints lost per rank: latest index minus the line's index."""
    return {r: latest[r] - line[r].index for r in sorted(line)}


def domino_extent(line: Dict[int, CutPoint], latest: Dict[int, int]) -> float:
    """Fraction of ranks forced all the way back to the initial state
    (among ranks that had at least one checkpoint). 1.0 = full domino."""
    eligible = [r for r in line if latest[r] > 0]
    if not eligible:
        return 0.0
    hit = sum(1 for r in eligible if line[r].index == 0)
    return hit / len(eligible)
