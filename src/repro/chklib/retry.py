"""Bounded retry-with-backoff around stable-storage operations.

Storage operations can fail transiently when a
:class:`~repro.fault.injection.StorageFaultInjector` is active. These
helpers wrap :meth:`StableStorage.write` / :meth:`StableStorage.read` in
the run's :class:`~repro.fault.model.RetryPolicy`: each failed attempt
pays its (partial) transfer time, then the caller backs off and tries
again, up to ``max_retries`` times. When the budget is exhausted the
final :class:`~repro.core.errors.StorageFault` propagates and the caller
decides the degradation path (coordinated aborts the round, independent
drops the local checkpoint, recovery quarantines the record).

A crash :class:`~repro.core.errors.Interrupt` is *not* retried — it
propagates immediately so the owning process dies with the machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from ..core.errors import StorageFault
from ..fault.model import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.tracing import Tracer
    from ..machine.node import Node
    from ..machine.storage import StableStorage

__all__ = ["stable_write", "stable_read"]


def stable_write(
    storage: "StableStorage",
    node: "Node",
    nbytes: float,
    tag: str = "",
    retry: Optional[RetryPolicy] = None,
    tracer: Optional["Tracer"] = None,
    background: bool = False,
) -> Generator[Any, Any, None]:
    """Write with retry-with-backoff; raises the last :class:`StorageFault`
    once the retry budget is exhausted."""
    retry = retry or RetryPolicy()
    attempt = 0
    while True:
        try:
            yield from storage.write(node, nbytes, tag=tag, background=background)
            return
        except StorageFault:
            if attempt >= retry.max_retries:
                raise
            if tracer is not None:
                tracer.add("storage.write_retries")
            delay = retry.delay(attempt)
            attempt += 1
            if delay > 0:
                yield storage.engine.delay(delay)  # pooled backoff nap


def stable_read(
    storage: "StableStorage",
    node: "Node",
    nbytes: float,
    tag: str = "",
    retry: Optional[RetryPolicy] = None,
    tracer: Optional["Tracer"] = None,
) -> Generator[Any, Any, None]:
    """Read with retry-with-backoff; raises the last :class:`StorageFault`
    once the retry budget is exhausted."""
    retry = retry or RetryPolicy()
    attempt = 0
    while True:
        try:
            yield from storage.read(node, nbytes, tag=tag)
            return
        except StorageFault:
            if attempt >= retry.max_retries:
                raise
            if tracer is not None:
                tracer.add("storage.read_retries")
            delay = retry.delay(attempt)
            attempt += 1
            if delay > 0:
                yield storage.engine.delay(delay)  # pooled backoff nap
