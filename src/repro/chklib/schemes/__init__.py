"""Checkpointing schemes: the paper's coordinated and independent
families, the CIC / message-logging third family, ablation variants, the
no-checkpoint baseline — and the protocol registry that owns them."""

from .base import NoCheckpointing, Scheme, SchemeAgent
from .cic import CICAgent, CICScheme
from .coordinated import CoordinatedAgent, CoordinatedScheme
from .independent import IndependentAgent, IndependentScheme
from .msglog import MessageLoggingScheme
from .registry import REGISTRY, ProtocolFamily, ProtocolRegistry

__all__ = [
    "Scheme",
    "SchemeAgent",
    "NoCheckpointing",
    "CoordinatedScheme",
    "CoordinatedAgent",
    "IndependentScheme",
    "IndependentAgent",
    "CICScheme",
    "CICAgent",
    "MessageLoggingScheme",
    "ProtocolFamily",
    "ProtocolRegistry",
    "REGISTRY",
]
