"""Checkpointing schemes: the five columns of the paper's tables plus
ablation variants and the no-checkpoint baseline."""

from .base import NoCheckpointing, Scheme, SchemeAgent
from .coordinated import CoordinatedAgent, CoordinatedScheme
from .independent import IndependentAgent, IndependentScheme

__all__ = [
    "Scheme",
    "SchemeAgent",
    "NoCheckpointing",
    "CoordinatedScheme",
    "CoordinatedAgent",
    "IndependentScheme",
    "IndependentAgent",
]
