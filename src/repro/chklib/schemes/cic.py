"""Communication-induced checkpointing (index-based CIC).

The third protocol family: no coordinator and no protocol messages (like
independent checkpointing), but the checkpoint *index* each process
piggybacks on its application messages induces extra, *forced* checkpoints
at the receivers. The classic index-based rule (Briatico–Ciuffoletti–
Simoncini, "BCS") is: on receiving a message whose piggybacked index
exceeds the local one, raise the local index to the message's index by
taking a forced checkpoint. Every index then has a checkpoint on every
process, so the line at the newest common index is always available —
basic (timer) checkpoints stay uncoordinated, yet rollback is bounded by
one index: the domino effect is gone.

The ``fdas`` option adds the classic refinement (fixed-dependency-style,
as in the FDAS/FDI lineage): when the receiver has sent *nothing* since
its last checkpoint, that checkpoint already captures everything any
other process can depend on, so instead of cutting again the previous
checkpoint is *promoted* — re-labelled as also covering the higher index.

Mapping onto this simulator's recovery model: applications only restore
at checkpoint points (drivers re-enter ``app.run`` from the top of an
iteration), so a forced checkpoint cannot be taken in the middle of the
receive that triggered it. The index obligation is therefore discharged
at the next checkpoint point — the cut *jumps* to the received index —
and the window between the triggering receive and the forced cut is
covered by the same piecewise-deterministic machinery the logging
recovery path already relies on: checkpoint-time log annexes replay
in-transit messages, re-executed sends reuse their sequence numbers, and
receivers drop the duplicates. The ``cic_index_rule`` trace invariant
audits the obligation (no basic cut may land below a forced index) and
the ``cic-index`` abstract machine model-checks the rule itself.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, Optional, Sequence

from ...net.message import Message
from ..policy import CheckpointPolicy
from ..recovery import covered_index_line
from .base import SchemeAgent
from .independent import IndependentAgent, IndependentScheme

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import CheckpointRuntime

__all__ = ["CICScheme", "CICAgent"]


class CICAgent(IndependentAgent):
    """Rank-local CIC state on top of the independent agent."""

    #: Genuine protocol state: a halted run must restart with its index
    #: obligation and send-tracking intact to continue bitwise.
    RESUME_FIELDS = ("forced_index", "sent_since_cut")

    def __init__(self, scheme: "CICScheme", runtime, rank: int) -> None:
        super().__init__(scheme, runtime, rank)
        #: index a received message obliges us to reach at the next cut
        #: (0 = no obligation outstanding).
        self.forced_index = 0
        #: any application send since the last local cut? (FDAS promotion
        #: is only sound while this is False.)
        self.sent_since_cut = False


class CICScheme(IndependentScheme):
    """Index-based communication-induced checkpointing (BCS / FDAS)."""

    klass = "cic"

    RESUME_FIELDS = ("cic_rule", "_promoted", "_last_cut")
    TRACE_EVENTS = ("proto.cic.forced", "proto.cic.promote")

    def __init__(
        self,
        times: Sequence[float],
        cic_rule: str = "bcs",
        skew: float = 0.0,
        name: Optional[str] = None,
        capture: Optional[str] = None,
        policy: Optional[CheckpointPolicy] = None,
    ) -> None:
        if cic_rule not in ("bcs", "fdas"):
            raise ValueError(f"unknown CIC rule {cic_rule!r}")
        if name is None:
            name = "cic" if cic_rule == "bcs" else f"cic_{cic_rule}"
        # Logging stays on: the annex logs are what cover the window
        # between a triggering receive and its deferred forced cut.
        super().__init__(
            times,
            memory_ckpt=True,
            name=name,
            skew=skew,
            logging=True,
            capture=capture,
            policy=policy,
        )
        self.cic_rule = cic_rule
        #: per-rank FDAS promotions: ``{rank: {base_index: top_index}}`` —
        #: checkpoint *base_index* also stands for every index up to
        #: *top_index* (nothing was sent in between).
        self._promoted: Dict[int, Dict[int, int]] = {}
        #: index of each rank's last *taken* cut (promotion base).
        self._last_cut: Dict[int, int] = {}

    # -- named variants -------------------------------------------------------

    @classmethod
    def BCS(cls, times: Sequence[float], skew: float = 0.0, **kw) -> "CICScheme":
        return cls(times, cic_rule="bcs", skew=skew, **kw)

    @classmethod
    def FDAS(cls, times: Sequence[float], skew: float = 0.0, **kw) -> "CICScheme":
        return cls(times, cic_rule="fdas", skew=skew, **kw)

    # -- verify hooks (protocol registry) --------------------------------------

    @classmethod
    def model_machines(cls):
        from ...verify.model import CicIndexModel

        return (("cic-index", CicIndexModel),)

    @classmethod
    def trace_checkers(cls):
        from ...verify.invariants import CicIndexRule

        return (CicIndexRule,)

    # -- wiring ------------------------------------------------------------------

    def make_agent(self, runtime: "CheckpointRuntime", rank: int) -> CICAgent:
        return CICAgent(self, runtime, rank)

    # -- hooks ----------------------------------------------------------------------

    def on_app_send(self, agent: SchemeAgent, msg: Message) -> None:
        super().on_app_send(agent, msg)
        assert isinstance(agent, CICAgent)
        agent.sent_since_cut = True

    def on_app_deliver(self, agent: SchemeAgent, msg: Message) -> None:
        assert isinstance(agent, CICAgent)
        idx = msg.epoch
        if idx <= max(agent.epoch, agent.forced_index):
            return  # index rule already satisfied (or obligation covers it)
        rt = agent.runtime
        if self.cic_rule == "fdas" and not agent.sent_since_cut:
            # Nothing sent since the last cut: that cut already fixes every
            # dependency anyone can have on us — promote it instead of
            # forcing a new checkpoint.
            base = self._last_cut.get(agent.rank, 0)
            tops = self._promoted.setdefault(agent.rank, {})
            tops[base] = max(tops.get(base, base), idx)
            agent.epoch = idx
            rt.tracer.add("chk.promotions")
            rt.tracer.event(
                "proto.cic.promote",
                rank=agent.rank,
                index=idx,
                base=base,
                src=msg.src,
            )
            return
        agent.forced_index = idx
        rt.tracer.add("chk.forced_ckpts")
        rt.tracer.event(
            "proto.cic.forced",
            rank=agent.rank,
            index=idx,
            had=agent.epoch,
            src=msg.src,
            rule=self.cic_rule,
        )
        agent.set_pending(idx)

    def at_point(self, agent: SchemeAgent) -> Generator[Any, Any, None]:
        assert isinstance(agent, CICAgent)
        if (
            self.policy.point_driven
            and not agent.finished
            and self.policy.on_point(agent.runtime, agent.rank)
        ):
            agent.set_pending((agent.pending_cut or agent.epoch) + 1)
            agent.runtime.tracer.add("chk.initiations")
        target = agent.pending_cut
        if target is None or target <= agent.epoch:
            return
        if agent.writing:
            return  # previous background write still draining; defer
        # Unlike the basic independent cut (always epoch + 1), a forced
        # cut *jumps* to the obliged index so it dominates every interval
        # the triggering message was sent in.
        agent.pending_cut = None
        yield from self._cut(agent, target)

    def _cut(self, agent: IndependentAgent, n: int) -> Generator[Any, Any, None]:
        assert isinstance(agent, CICAgent)
        agent.sent_since_cut = False
        agent.forced_index = 0
        self._last_cut[agent.rank] = n
        yield from super()._cut(agent, n)

    # -- recovery ---------------------------------------------------------------------

    def recovery_line(self, runtime: "CheckpointRuntime") -> Dict[int, Any]:
        store = runtime.store
        line = covered_index_line(
            store,
            promotions=self._promoted,
            eligible=lambda rec: rec.committed
            and not rec.quarantined
            and store.chain_intact(rec.rank, rec.index),
        )
        return line

    def replay_messages(self, runtime: "CheckpointRuntime", line: Dict[int, Any]):
        # Same stable-log replay as the logging independent family: the
        # annexes flushed with each checkpoint cover every message the
        # line's counters say is in transit.
        return super().replay_messages(runtime, line)

    def reset_agent(self, agent: SchemeAgent) -> None:
        super().reset_agent(agent)
        assert isinstance(agent, CICAgent)
        agent.sent_since_cut = False
        agent.forced_index = 0
        self._last_cut[agent.rank] = agent.epoch
        proms = self._promoted.get(agent.rank)
        if proms:
            # Promotions made at-or-after the restored index describe an
            # execution that was just rolled away; re-execution may now
            # send in those intervals, so the claims must not survive.
            for base in [b for b in proms if b >= agent.epoch]:
                del proms[base]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CICScheme {self.name} rule={self.cic_rule} "
            f"times={self.times} skew={self.skew}>"
        )
