"""Scheme framework: per-rank agents and the scheme interface.

A :class:`Scheme` object describes one checkpointing policy (one column of
the paper's tables). It creates one :class:`SchemeAgent` per rank — the
agent plugs into the rank's :class:`~repro.net.api.Comm` as a
:class:`~repro.net.api.CommAgent` and implements the mechanics: epoch
piggybacking, duplicate suppression, channel-state recording, and the
blocking work performed at application checkpoint points.

The runtime (:mod:`repro.chklib.runtime`) is duck-typed here; the
attributes a scheme relies on are: ``engine``, ``cluster``, ``transport``,
``comms``, ``agents``, ``store`` (CheckpointStore), ``storage``
(StableStorage), ``tracer``, ``generation``, ``rngs``, ``spawn``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional

from ...core.errors import InvariantViolation, SimulationError, StorageFault
from ...net.api import CommAgent
from ...net.message import KIND_APP, Message
from ..retry import stable_write

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...net.api import Comm
    from ..runtime import CheckpointRuntime

__all__ = ["SchemeAgent", "Scheme", "NoCheckpointing"]


class SchemeAgent(CommAgent):
    """Per-rank checkpointing agent wired into the communication path."""

    #: Capture manifest (see :mod:`repro.chklib.resume`): the cumulative
    #: per-rank facts a durable line carries across a halt/restart.
    RESUME_FIELDS = ("epoch", "blocked_time", "cuts_taken")
    #: Rebuilt by ``__init__``/``bind``/``bind_state`` on every restart —
    #: in-flight protocol state is wiped by recovery in-process too.
    VOLATILE_FIELDS = (
        "scheme",
        "runtime",
        "rank",
        "node",
        "comm",
        "state_ref",
        "pending_cut",
        "finished",
    )

    def __init__(
        self, scheme: "Scheme", runtime: "CheckpointRuntime", rank: int
    ) -> None:
        self.scheme = scheme
        self.runtime = runtime
        self.rank = rank
        self.node = runtime.cluster.node(rank)
        self.comm: Optional["Comm"] = None
        #: live reference to the application's state dict (set per driver).
        self.state_ref: Optional[dict] = None
        #: number of cuts this process has taken (piggybacked on messages).
        self.epoch = 0
        #: checkpoint number to take at the next checkpoint point.
        self.pending_cut: Optional[int] = None
        #: True once the application driver has completed on this rank; a
        #: finished process has no future checkpoint points, so pending
        #: cuts are taken immediately (a system-level checkpointer saves
        #: idle processes too).
        self.finished = False
        # cumulative metrics
        self.blocked_time = 0.0
        self.cuts_taken = 0

    # -- wiring ------------------------------------------------------------

    def bind(self, comm: "Comm") -> None:
        self.comm = comm

    def bind_state(self, state: dict) -> None:
        self.state_ref = state
        self.finished = False

    def set_pending(self, n: int) -> None:
        """Schedule checkpoint *n* for the next checkpoint point — or right
        now, if this rank's application has already finished."""
        if n <= self.epoch:
            return
        self.pending_cut = max(self.pending_cut or 0, n)
        if self.finished:
            self.runtime.spawn(self.at_point(), name=f"late-cut:r{self.rank}")

    def mark_finished(self) -> None:
        """Called by the runtime when the driver completes normally."""
        self.finished = True
        if self.pending_cut is not None and self.pending_cut > self.epoch:
            self.runtime.spawn(self.at_point(), name=f"late-cut:r{self.rank}")

    # -- CommAgent hooks -----------------------------------------------------

    def on_send(self, msg: Message) -> None:
        msg.epoch = self.epoch
        msg.meta["gen"] = self.runtime.generation
        if msg.kind == KIND_APP:
            tracer = self.runtime.tracer
            if tracer.enabled:  # skip the kwargs build when not observing
                tracer.event(
                    "msg.send",
                    src=msg.src,
                    dst=msg.dst,
                    seq=msg.seq,
                    epoch=msg.epoch,
                    gen=self.runtime.generation,
                )
            self.scheme.on_app_send(self, msg)

    def on_deliver(self, msg: Message) -> bool:
        if msg.meta.get("gen", self.runtime.generation) != self.runtime.generation:
            # straggler from before a crash: the wire outlived the rollback.
            self.runtime.tracer.add("chk.stale_dropped")
            return False
        if msg.kind == KIND_APP:
            if self.comm is None:
                raise InvariantViolation(
                    "agent delivered to before bind()", rank=self.rank
                )
            if msg.seq <= self.comm.consumed_counts.get(msg.src, 0):
                # duplicate of an already-consumed message (orphan replay
                # after a rollback under piecewise-deterministic re-execution)
                self.runtime.tracer.add("chk.duplicates_dropped")
                return False
            tracer = self.runtime.tracer
            if tracer.enabled:  # skip the kwargs build when not observing
                tracer.event(
                    "msg.deliver",
                    src=msg.src,
                    dst=msg.dst,
                    seq=msg.seq,
                    epoch=msg.epoch,
                    gen=self.runtime.generation,
                )
            self.scheme.on_app_deliver(self, msg)
        return True

    def on_control(self, msg: Message) -> None:
        self.scheme.on_control(self, msg)

    def send_extra(self, msg: Message):
        return self.scheme.send_extra(self, msg)

    # -- checkpoint points ------------------------------------------------------

    def at_point(self) -> Generator[Any, Any, None]:
        """Called by the application at every checkpoint point."""
        yield from self.scheme.at_point(self)

    def charge_blocked(self, started_at: float) -> None:
        """Account application-blocked time for a completed cut."""
        dt = self.runtime.engine.now - started_at
        self.blocked_time += dt
        self.runtime.tracer.add("chk.blocked_time", dt)

    # -- lifecycle across recoveries ----------------------------------------------

    def reset_for_recovery(self, epoch: int) -> None:
        """Drop in-flight protocol state after a rollback."""
        self.epoch = epoch
        self.pending_cut = None
        self.scheme.reset_agent(self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} r{self.rank} epoch={self.epoch}>"


class Scheme:
    """Base checkpointing scheme (default: no-ops everywhere).

    Concrete schemes override the hooks they need. Flags describe the
    mechanics so experiments can introspect what they are measuring:

    * ``memory_ckpt`` — the cut blocks only for a main-memory copy and a
      checkpointer thread streams the buffer to stable storage.
    * ``staggered`` — background writes are serialised on a token ring.
    """

    name = "none"
    klass = "none"  #: "coordinated" | "independent" | "none"
    memory_ckpt = False
    staggered = False
    #: two-level stable storage: capture writes go to the node's private
    #: local disk (fast, contention-free); a background "trickle" copies
    #: them to the global server afterwards.
    two_level = False

    #: Capture manifests (see :mod:`repro.chklib.resume`). A scheme is
    #: pickled whole into the durable line; VOLATILE_FIELDS are nulled by
    #: the generic ``__getstate__`` below and rebuilt by ``install()``.
    RESUME_FIELDS: tuple = ()
    VOLATILE_FIELDS: tuple = ()

    #: Protocol-specific trace-event vocabulary (beyond the shared kinds
    #: every scheme emits). The protocol registry validates each family's
    #: vocabulary against :data:`repro.core.tracing.EVENT_KINDS` so a new
    #: event cannot ship unregistered — the analyzer's trace-conformance
    #: pass then proves it is both emitted and consumed.
    TRACE_EVENTS: tuple = ()

    @classmethod
    def model_machines(cls):
        """``((label, factory), ...)`` abstract machines model-checking
        this protocol; ``repro.verify model`` enumerates these through the
        protocol registry. Factories take ``n_ranks`` plus bug knobs."""
        return ()

    @classmethod
    def trace_checkers(cls):
        """Checker classes (see :mod:`repro.verify.invariants`) auditing
        this protocol's trace events; contributed to ``default_checkers``
        through the protocol registry. Each must gate itself on
        ``meta.klass`` so it is inert for other families."""
        return ()

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle with every VOLATILE_FIELDS entry (unioned over the MRO)
        nulled — engine-bound handles never enter a durable line."""
        from ..resume import volatile_fields

        state = dict(self.__dict__)
        for name in volatile_fields(type(self)):
            if name in state:
                state[name] = None
        return state

    def make_agent(self, runtime: "CheckpointRuntime", rank: int) -> SchemeAgent:
        return SchemeAgent(self, runtime, rank)

    def install(self, runtime: "CheckpointRuntime") -> None:
        """Start daemons/timers; called once after comms are built."""

    # -- hook surface (called by agents) ----------------------------------------

    def on_app_send(self, agent: SchemeAgent, msg: Message) -> None:
        pass

    # -- two-level stable storage helpers ---------------------------------------

    def ckpt_storage(self, agent: SchemeAgent):
        """Where the capture write goes (local disk under two-level)."""
        rt = agent.runtime
        if self.two_level:
            return rt.cluster.local_disk(agent.rank)
        return rt.storage

    def after_stable_write(self, agent: SchemeAgent, record, nbytes: float) -> None:
        """Called when the capture write completed; under two-level this
        starts the background copy to the global server, and under a
        burst-buffered storage plane the background drain onto the rank's
        shard server."""
        rt = agent.runtime
        if self.two_level:
            rt.spawn(
                self._trickle(agent, record, nbytes),
                name=f"trickle:{record.index}:r{agent.rank}",
            )
            return
        if rt.cluster.storage.has_burst_buffers:
            rt.spawn(
                self._drain(agent, record, nbytes),
                name=f"drain:{record.index}:r{agent.rank}",
            )
            return
        record.global_written_at = record.written_at

    def _trickle(self, agent: SchemeAgent, record, nbytes: float):
        rt = agent.runtime
        try:
            yield from stable_write(
                rt.cluster.storage.server_for(agent.rank),
                agent.node,
                nbytes,
                tag=f"trickle{record.index}:r{agent.rank}",
                retry=rt.retry_policy,
                tracer=rt.tracer,
                background=True,
            )
        except StorageFault:
            # the local-disk copy stays valid; only the global replica is
            # missing, which matters if this node's disk later dies.
            rt.tracer.add("chk.trickle_failures")
            return
        record.global_written_at = rt.engine.now
        rt.tracer.add("chk.trickled_bytes", nbytes)

    def _drain(self, agent: SchemeAgent, record, nbytes: float):
        """Empty *record*'s bytes from the rack burst buffer onto the
        rank's shard server. Generation-scoped (``rt.spawn``): a crash
        kills in-flight drains identically on the in-process and restart
        paths, so the resume equivalence proof covers the buffered plane."""
        rt = agent.runtime
        yield from rt.cluster.storage.drain(
            agent.node, nbytes, tag=f"drain{record.index}:r{agent.rank}"
        )
        record.global_written_at = rt.engine.now

    def on_app_deliver(self, agent: SchemeAgent, msg: Message) -> None:
        pass

    def on_control(self, agent: SchemeAgent, msg: Message) -> None:
        raise SimulationError(
            f"{self.name}: unexpected control message {msg!r}"
        )

    def at_point(self, agent: SchemeAgent) -> Generator[Any, Any, None]:
        return
        yield  # pragma: no cover - generator marker

    def send_extra(self, agent: SchemeAgent, msg: Message):
        """Extra blocking work charged to the sender (None = nothing)."""
        return None

    def reset_agent(self, agent: SchemeAgent) -> None:
        pass

    # -- recovery interface -----------------------------------------------------

    def recovery_line(self, runtime: "CheckpointRuntime") -> Dict[int, Any]:
        """``{rank: CheckpointRecord | None}`` to restore after a crash
        (None = initial state)."""
        raise SimulationError(f"scheme {self.name!r} cannot recover")

    def replay_messages(
        self, runtime: "CheckpointRuntime", line: Dict[int, Any]
    ) -> List[Message]:
        """In-transit messages to re-inject for *line* (default: the
        channel state recorded inside the restored checkpoints)."""
        msgs: List[Message] = []
        for record in line.values():
            if record is not None:
                msgs.extend(record.channel_msgs)
        return msgs

    def line_sound(self, runtime: "CheckpointRuntime", line, cut_line) -> bool:
        """Does the restored *line* satisfy this scheme's recoverability
        requirement? Default: the no-orphan condition on *cut_line* (a
        ``{rank: CutPoint}`` view of *line*). Schemes that tolerate
        orphans under piecewise-deterministic re-execution override this
        with their actual invariant."""
        from ..recovery import is_consistent

        return is_consistent(cut_line)

    def on_crash(self, runtime: "CheckpointRuntime") -> None:
        """Clear global protocol state when a failure is detected."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Scheme {self.name}>"


class NoCheckpointing(Scheme):
    """The NORMAL column: no checkpoints, no protocol, no recovery."""

    name = "normal"
    klass = "none"
