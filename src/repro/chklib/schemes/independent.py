"""Independent (uncoordinated) checkpointing (the paper's `Indep`, `Indep_M`).

Every process checkpoints on its own local timer — no protocol messages, no
synchronisation (the approach's advertised advantage). Each checkpoint
records the per-channel send/consume counters so a consistent recovery line
can be searched for after a failure; without message logging the line must
additionally be transitless, which is what exposes the domino effect.

Variants:

* ``Indep``   — the process is blocked for the full write to stable storage.
* ``Indep_M`` — main-memory checkpointing: blocked only for the buffer
  copy; a checkpointer thread streams it to storage in the background.

Options:

* ``logging`` — sender-based message logging: every application send is
  copied into a volatile log, flushed to stable storage together with the
  next checkpoint. Recovery can then replay in-transit messages across any
  consistent line (the paper cites this as the fix for lost messages /
  domino mitigation).
* ``pessimistic_logging`` — the log write happens synchronously inside the
  send path (charged to the sender) instead of at checkpoint time — the
  expensive classic variant, kept for ablations.
* ``gc`` — run recovery-line garbage collection after each checkpoint
  (Wang-style space reclamation).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence

from ...core.errors import SimulationError, StorageFault
from ...net.message import Message
from ..garbage import collect_garbage
from ..incremental import PAGE_SIZE, IncrementalState
from ..policy import CheckpointPolicy, FixedTimes
from ..recovery import build_cuts, consistent_line, in_transit_ranges
from ..retry import stable_write
from ..state import Snapshot
from ..storage_mgr import CheckpointRecord
from .base import Scheme, SchemeAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import CheckpointRuntime

__all__ = ["IndependentScheme", "IndependentAgent"]


class IndependentAgent(SchemeAgent):
    """Rank-local state: the volatile sender log."""

    #: All in-flight; wiped by recovery/restart (the volatile sender log
    #: is exactly the state an independent-checkpointing crash loses).
    VOLATILE_FIELDS = ("volatile_log", "writing", "inc")

    def __init__(self, scheme: "IndependentScheme", runtime, rank: int) -> None:
        super().__init__(scheme, runtime, rank)
        self.volatile_log: List[Message] = []
        #: background write in flight (at most one with sane intervals).
        self.writing = False
        #: page-level dirty tracking (incremental checkpointing only).
        self.inc: Optional[IncrementalState] = (
            IncrementalState(full_every=scheme.full_every)
            if scheme.incremental
            else None
        )


class IndependentScheme(Scheme):
    """Timer-driven uncoordinated checkpointing."""

    klass = "independent"

    #: Capture manifest: the whole scheme object is durable — per-rank
    #: fire/draw bookkeeping must survive a halt so resumed timers replay
    #: the same skewed schedule bitwise.
    RESUME_FIELDS = (
        "times",
        "policy",
        "_fired",
        "_drawn",
        "_pending_fire",
        "capture",
        "memory_ckpt",
        "incremental",
        "full_every",
        "two_level",
        "name",
        "skew",
        "logging",
        "pessimistic_logging",
        "gc",
    )

    #: Beyond the shared kinds, independent checkpointing only adds the
    #: per-rank commit of a background write.
    TRACE_EVENTS = ("proto.local_commit",)

    def __init__(
        self,
        times: Sequence[float],
        memory_ckpt: bool,
        name: str,
        skew: float = 0.0,
        logging: bool = False,
        pessimistic_logging: bool = False,
        gc: bool = False,
        capture: Optional[str] = None,
        incremental: bool = False,
        full_every: int = 4,
        two_level: bool = False,
        policy: Optional[CheckpointPolicy] = None,
    ) -> None:
        self.times = sorted(float(t) for t in times)
        #: when each rank's timer fires; the explicit ``times`` schedule is
        #: the legacy default, wrapped in a :class:`FixedTimes` policy.
        self.policy = policy if policy is not None else FixedTimes(self.times)
        #: per-rank resume bookkeeping: shots fired, shots whose skew was
        #: drawn, and the drawn-but-unfired fire time carried across a halt
        #: (the restored RNG stream is already past the draw, so a resumed
        #: timer must not draw it again).
        self._fired: Dict[int, int] = {}
        self._drawn: Dict[int, int] = {}
        self._pending_fire: Dict[int, float] = {}
        #: capture mode: "blocking" | "memcopy" | "cow" (see coordinated).
        self.capture = capture or ("memcopy" if memory_ckpt else "blocking")
        if self.capture not in ("blocking", "memcopy", "cow"):
            raise ValueError(f"unknown capture mode {self.capture!r}")
        self.memory_ckpt = self.capture != "blocking"
        self.incremental = bool(incremental)
        self.full_every = int(full_every)
        self.two_level = bool(two_level)
        self.name = name + ("_2l" if two_level else "")
        #: amplitude (seconds) of the deterministic per-rank timer skew.
        #: Real independent timers drift apart but start aligned; partial
        #: overlap of the background writes is part of the measured effect.
        self.skew = float(skew)
        self.logging = bool(logging) or bool(pessimistic_logging)
        self.pessimistic_logging = bool(pessimistic_logging)
        self.gc = bool(gc)

    # -- named variants -------------------------------------------------------

    @classmethod
    def Indep(cls, times: Sequence[float], skew: float = 0.0, **kw) -> "IndependentScheme":
        return cls(times, memory_ckpt=False, name="indep", skew=skew, **kw)

    @classmethod
    def IndepM(cls, times: Sequence[float], skew: float = 0.0, **kw) -> "IndependentScheme":
        return cls(times, memory_ckpt=True, name="indep_m", skew=skew, **kw)

    @classmethod
    def IndepC(cls, times: Sequence[float], skew: float = 0.0, **kw) -> "IndependentScheme":
        """Extension: copy-on-write capture."""
        return cls(
            times, memory_ckpt=True, name="indep_c", skew=skew,
            capture="cow", **kw
        )

    # -- wiring ------------------------------------------------------------------

    def make_agent(self, runtime: "CheckpointRuntime", rank: int) -> IndependentAgent:
        return IndependentAgent(self, runtime, rank)

    def install(self, runtime: "CheckpointRuntime") -> None:
        if self.policy.point_driven:
            return  # cuts are triggered from checkpoint points instead
        for rank in range(runtime.n_ranks):
            runtime.engine.process(
                self._timer(runtime, rank), name=f"indep-timer:r{rank}"
            )

    def _timer(self, runtime: "CheckpointRuntime", rank: int):
        """Local checkpoint timer: fires at each policy-decided time plus a
        deterministic per-(rank, shot) skew. A resumed timer replays
        pre-halt shots without waiting — and without redrawing skews the
        restored RNG stream has already consumed."""
        engine = runtime.engine
        rng = runtime.rngs.get(f"indep.skew.r{rank}")
        agent = runtime.agents[rank]
        shot = 0
        while True:
            t = self.policy.next_time(runtime, rank, shot)
            if t is None:
                return
            if shot < self._fired.get(rank, 0):
                shot += 1  # fired before the halt; no wait, no draw
                continue
            if shot < self._drawn.get(rank, 0):
                # skew drawn but the shot had not fired when the run halted
                fire_at = self._pending_fire[rank]
            else:
                fire_at = t + (float(rng.uniform(-1.0, 1.0)) * self.skew)
                self._drawn[rank] = shot + 1
                self._pending_fire[rank] = fire_at
            if fire_at > engine.now:
                yield engine.delay(fire_at - engine.now)
            if runtime.finished:
                return
            shot += 1
            self._fired[rank] = shot
            agent.set_pending((agent.pending_cut or agent.epoch) + 1)
            runtime.tracer.add("chk.initiations")

    # -- hooks ----------------------------------------------------------------------

    def on_app_send(self, agent: SchemeAgent, msg: Message) -> None:
        if not self.logging:
            return
        assert isinstance(agent, IndependentAgent)
        msg.finalize_size()  # the log must account wire bytes
        agent.volatile_log.append(
            dataclasses.replace(msg, meta=dict(msg.meta))
        )
        agent.runtime.tracer.add("chk.messages_logged")

    def at_point(self, agent: SchemeAgent) -> Generator[Any, Any, None]:
        assert isinstance(agent, IndependentAgent)
        # point-driven policies: each rank decides at its own points. A
        # finished rank has no application phases — its at_point re-entries
        # are late-cut spawns, not points, and must not count (a phantom
        # point could otherwise trigger cuts forever).
        if (
            self.policy.point_driven
            and not agent.finished
            and self.policy.on_point(agent.runtime, agent.rank)
        ):
            agent.set_pending((agent.pending_cut or agent.epoch) + 1)
            agent.runtime.tracer.add("chk.initiations")
        if agent.pending_cut is None or agent.pending_cut <= agent.epoch:
            return
        if agent.writing:
            return  # previous background write still draining; defer
        n = agent.epoch + 1
        agent.pending_cut = None
        yield from self._cut(agent, n)

    def _cut(self, agent: IndependentAgent, n: int) -> Generator[Any, Any, None]:
        rt = agent.runtime
        engine = rt.engine
        t0 = engine.now
        if agent.state_ref is None:
            raise SimulationError(f"rank {agent.rank}: cut with no bound state")
        snap = Snapshot.capture(agent.state_ref)
        record = CheckpointRecord(
            rank=agent.rank,
            index=n,
            snapshot=snap,
            comm_meta=agent.comm.channel_meta(),
            taken_at=t0,
            pad_bytes=getattr(rt.app, "image_bytes", 0),
        )
        if self.logging:
            record.log_annex = agent.volatile_log
            agent.volatile_log = []
        if agent.inc is not None:
            is_full, state_bytes, hashes = agent.inc.plan(snap.blob)
            agent.inc.advance(is_full, hashes)
            if is_full:
                record.stored_state_bytes = record.state_bytes
                rt.tracer.add("chk.full_ckpts")
            else:
                record.stored_state_bytes = state_bytes
                record.base_index = agent.epoch
                rt.tracer.add("chk.incremental_ckpts")
                rt.tracer.add(
                    "chk.incremental_bytes_saved",
                    record.state_bytes - state_bytes,
                )
        agent.epoch = n
        agent.cuts_taken += 1
        rt.tracer.add("chk.cuts")
        rt.tracer.event("proto.cut", rank=agent.rank, round=n, scheme=self.name)
        span = rt.tracer.open_span("ckpt.cut", rank=agent.rank, n=n, scheme=self.name)
        write_bytes = record.write_bytes + (
            0 if self.pessimistic_logging else record.log_bytes
        )
        if agent.finished:
            # a finished process has nothing to block: stream in background.
            agent.writing = True
            rt.spawn(
                self._bg_writer(agent, record, write_bytes),
                name=f"indep-writer:{n}:r{agent.rank}",
            )
            rt.tracer.close_span(span)
            return
        if self.capture == "cow":
            pages = max(1, record.state_bytes // PAGE_SIZE)
            yield engine.delay(pages * agent.node.params.cow_mark_cost)
            agent.writing = True
            rt.spawn(
                self._bg_writer(agent, record, write_bytes, cow=True),
                name=f"indep-writer:{n}:r{agent.rank}",
            )
        elif self.memory_ckpt:
            yield from agent.node.mem_copy(write_bytes)
            agent.writing = True
            rt.spawn(
                self._bg_writer(agent, record, write_bytes),
                name=f"indep-writer:{n}:r{agent.rank}",
            )
        else:
            rt.cluster.set_rank_blocked(agent.rank, True)
            wrote = True
            rt.tracer.event(
                "proto.write_begin", rank=agent.rank, round=n, scheme=self.name
            )
            try:
                try:
                    yield from stable_write(
                        self.ckpt_storage(agent),
                        agent.node,
                        write_bytes,
                        tag=f"ickpt{n}:r{agent.rank}",
                        retry=rt.retry_policy,
                        tracer=rt.tracer,
                    )
                except StorageFault:
                    wrote = False
            finally:
                rt.cluster.set_rank_blocked(agent.rank, False)
            rt.tracer.event("proto.write_end", rank=agent.rank, round=n, ok=wrote)
            if wrote:
                self._write_finished(agent, record, write_bytes)
            else:
                self._write_failed(agent, record)
        agent.charge_blocked(t0)
        rt.tracer.close_span(span)

    def _bg_writer(
        self,
        agent: IndependentAgent,
        record: CheckpointRecord,
        nbytes: int,
        cow: bool = False,
    ):
        rt = agent.runtime
        if cow:
            agent.node.cow_window_opened()
        wrote = True
        rt.tracer.event(
            "proto.write_begin",
            rank=agent.rank,
            round=record.index,
            scheme=self.name,
        )
        try:
            try:
                yield from stable_write(
                    self.ckpt_storage(agent),
                    agent.node,
                    nbytes,
                    tag=f"ickpt{record.index}:r{agent.rank}",
                    retry=rt.retry_policy,
                    tracer=rt.tracer,
                    background=True,
                )
            except StorageFault:
                wrote = False
        finally:
            agent.writing = False
            if cow:
                agent.node.cow_window_closed()
        rt.tracer.event(
            "proto.write_end", rank=agent.rank, round=record.index, ok=wrote
        )
        if wrote:
            self._write_finished(agent, record, nbytes)
        else:
            self._write_failed(agent, record)

    def _write_failed(
        self, agent: IndependentAgent, record: CheckpointRecord
    ) -> None:
        """The checkpoint write exhausted its retries. Independent schemes
        have no round to abort: drop the local checkpoint and carry on (the
        previous one still covers this rank). Log messages that failed to
        persist go back to the front of the volatile log so the next
        checkpoint flushes them — replay must never miss a logged send."""
        rt = agent.runtime
        rt.tracer.add("chk.ckpt_writes_failed")
        if self.logging and record.log_annex:
            agent.volatile_log[:0] = record.log_annex
            record.log_annex = []
        if agent.inc is not None:
            # the chain would base on a checkpoint that never landed;
            # force the next checkpoint to be a full one.
            agent.inc.reset()

    def _write_finished(
        self, agent: IndependentAgent, record: CheckpointRecord, nbytes: float
    ) -> None:
        rt = agent.runtime
        record.written_at = rt.engine.now
        record.committed = True  # a written independent checkpoint is stable
        rt.store.add(record)
        inj = rt.storage.fault_injector
        if inj is not None and inj.corrupts_checkpoint(agent.rank, record.index):
            # silent media corruption, detected at recovery by checksum
            rt.store.corrupt(agent.rank, record.index)
            rt.tracer.add("chk.ckpts_corrupted")
        self.after_stable_write(agent, record, nbytes)
        rt.tracer.add("chk.commits")
        rt.tracer.event("proto.local_commit", rank=agent.rank, index=record.index)
        if self.gc:
            stats = collect_garbage(
                rt.store,
                transitless=not self.logging,
                logging_recovery=self.logging,
                tracer=rt.tracer,
            )
            rt.tracer.add("chk.gc_freed_bytes", stats.freed_bytes)
            rt.tracer.add("chk.gc_freed_ckpts", stats.freed_checkpoints)

    # -- pessimistic logging (send path pays the log write) ------------------------

    def send_extra(self, agent: SchemeAgent, msg: Message):
        if not self.pessimistic_logging or msg.kind != "app":
            return None
        assert isinstance(agent, IndependentAgent)
        return self._logged_send_cost(agent, msg)

    def _logged_send_cost(self, agent: IndependentAgent, msg: Message):
        """Synchronous log flush inside the send path (pessimistic mode)."""
        rt = agent.runtime
        try:
            yield from stable_write(
                rt.storage,
                agent.node,
                msg.size,
                tag=f"msglog:r{agent.rank}",
                retry=rt.retry_policy,
                tracer=rt.tracer,
            )
        except StorageFault:
            # degrade to optimistic for this message: it is already in the
            # volatile log and flushes with the next checkpoint instead.
            rt.tracer.add("chk.msglog_failed")

    # -- recovery ---------------------------------------------------------------------

    def recovery_line(self, runtime: "CheckpointRuntime") -> Dict[int, Any]:
        store = runtime.store
        cuts = build_cuts(
            store,
            written_only=True,
            eligible=lambda rec: store.chain_intact(rec.rank, rec.index),
        )
        if self.logging:
            # Sender-based logging makes recovery *orphan-tolerant* under
            # piecewise determinism: every rank restores its own latest
            # checkpoint. In-transit messages replay from the stable logs;
            # orphaned receives are regenerated by the senders' replay and
            # dropped as duplicates by the per-channel sequence numbers.
            # No rollback propagation, hence no domino effect — the fix the
            # paper attributes to message logging.
            line = {r: cuts[r][-1] for r in cuts}
        else:
            # Without logs nothing in flight survives, so the line must be
            # both consistent and transitless — the domino-prone case.
            line = consistent_line(cuts, transitless=True)
        return {
            r: (cut.record if cut.index > 0 else None) for r, cut in line.items()
        }

    def replay_messages(
        self, runtime: "CheckpointRuntime", line: Dict[int, Any]
    ) -> List[Message]:
        if not self.logging:
            return []  # the line is transitless: nothing in flight
        store = runtime.store
        cuts = build_cuts(
            store,
            written_only=True,
            eligible=lambda rec: store.chain_intact(rec.rank, rec.index),
        )
        cut_line = {
            r: next(
                c
                for c in cuts[r]
                if c.index == (line[r].index if line[r] is not None else 0)
            )
            for r in cuts
        }
        msgs: List[Message] = []
        for (src, dst), (lo, hi) in in_transit_ranges(cut_line).items():
            for seq in range(lo, hi + 1):
                logged = runtime.store.find_logged(src, dst, seq)
                if logged is None:
                    raise SimulationError(
                        f"in-transit message {src}->{dst} seq={seq} not found "
                        f"in the stable message logs"
                    )
                msgs.append(logged)
        return msgs

    def line_sound(self, runtime: "CheckpointRuntime", line, cut_line) -> bool:
        from ..recovery import is_consistent

        if self.logging:
            # Orphan-tolerant: each rank restores its own newest usable
            # checkpoint; soundness additionally needs every in-transit
            # message in the stable logs, which replay_messages has
            # already verified (it raises on a missing one).
            return True
        # without logs nothing in flight survives: the line must be
        # consistent *and* transitless
        return is_consistent(cut_line, transitless=True)

    def reset_agent(self, agent: SchemeAgent) -> None:
        assert isinstance(agent, IndependentAgent)
        agent.volatile_log.clear()
        agent.writing = False
        if agent.inc is not None:
            agent.inc.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<IndependentScheme {self.name} times={self.times} skew={self.skew}>"
