"""The protocol registry: single source of truth for scheme families.

Everything the rest of the codebase needs to know about a checkpointing
protocol family lives here, declared once per family:

* the concrete :class:`~repro.chklib.schemes.base.Scheme` class (whose
  ``RESUME_FIELDS`` manifests the resume layer unions over the MRO);
* its *base names* and how to build a scheme from a declarative
  :class:`~repro.experiments.grid.SchemeSpec`;
* the *option schema* — which ``SchemeSpec`` fields the family honours
  (anything else is rejected at spec-build time instead of silently
  ignored);
* its *verify hooks*: the abstract model-checker machines
  (``Scheme.model_machines``), the trace-invariant checkers
  (``Scheme.trace_checkers``), and the trace-event vocabulary
  (``Scheme.TRACE_EVENTS``), validated here against
  :data:`repro.core.tracing.EVENT_KINDS` so no protocol event can ship
  unregistered — the static analyzer's trace-conformance pass then
  proves every registered kind is both emitted and consumed.

The user-facing *alias table* (``coord_nbms``, ``indep_m_log``, ...)
maps each alias to a base name plus fixed option overrides; the literal
dict that used to live in ``experiments/grid.py`` is re-exported from
here. Adding a fourth family is one module: subclass ``Scheme``, declare
the verify hooks on the class, and register the family and its aliases
below — the grid, the runner, ``repro.verify model``, the trace
checkers and the resume layer all pick it up from the registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple, Type

from .base import Scheme
from .cic import CICScheme
from .coordinated import CoordinatedScheme
from .independent import IndependentScheme
from .msglog import MessageLoggingScheme

__all__ = ["ProtocolFamily", "ProtocolRegistry", "REGISTRY"]


@dataclass(frozen=True)
class ProtocolFamily:
    """One protocol family's registry entry."""

    name: str  #: family key ("coordinated", "independent", "cic", "msglog")
    scheme_cls: Type[Scheme]
    bases: Tuple[str, ...]  #: SchemeSpec base names this family owns
    options: Tuple[str, ...]  #: SchemeSpec fields the family's build honours
    build: Callable[[Any], Scheme]  #: SchemeSpec -> Scheme
    #: timer-driven checkpointing: experiments add the standard per-rank
    #: timer skew when planning cells for this family.
    skewed: bool = False


class ProtocolRegistry:
    """Scheme classes, aliases, option schemas and verify hooks."""

    def __init__(self) -> None:
        self._families: Dict[str, ProtocolFamily] = {}
        self._aliases: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self._base_family: Dict[str, str] = {}

    # -- registration ----------------------------------------------------------

    def register(self, family: ProtocolFamily) -> None:
        if family.name in self._families:
            raise ValueError(f"duplicate protocol family {family.name!r}")
        for base in family.bases:
            if base in self._base_family:
                raise ValueError(f"scheme base {base!r} already registered")
            self._base_family[base] = family.name
        self._families[family.name] = family

    def register_alias(
        self, alias: str, base: str, fixed: Dict[str, Any]
    ) -> None:
        if alias in self._aliases:
            raise ValueError(f"duplicate scheme alias {alias!r}")
        family = self.family_for_base(base)
        unknown = sorted(set(fixed) - set(family.options))
        if unknown:
            raise ValueError(
                f"alias {alias!r}: options {unknown} not in the "
                f"{family.name} option schema {sorted(family.options)}"
            )
        self._aliases[alias] = (base, dict(fixed))

    # -- lookup ----------------------------------------------------------------

    def families(self) -> List[ProtocolFamily]:
        return list(self._families.values())

    def aliases(self) -> List[str]:
        return list(self._aliases)

    def alias_table(self) -> Dict[str, Tuple[str, Dict[str, Any]]]:
        """A plain-dict snapshot, compatible with the legacy
        ``SCHEME_ALIASES`` literal this registry replaced."""
        return {a: (b, dict(f)) for a, (b, f) in self._aliases.items()}

    def resolve(self, alias: str) -> Tuple[str, Dict[str, Any]]:
        """``alias -> (base, fixed options)``; unknown aliases name every
        registered one."""
        try:
            base, fixed = self._aliases[alias]
        except KeyError:
            available = ", ".join(sorted(self._aliases))
            raise ValueError(
                f"unknown scheme {alias!r} (available: {available})"
            ) from None
        return base, dict(fixed)

    def family_for_base(self, base: str) -> ProtocolFamily:
        try:
            return self._families[self._base_family[base]]
        except KeyError:
            raise ValueError(f"unknown scheme base {base!r}") from None

    def family_of(self, alias: str) -> ProtocolFamily:
        base, _ = self.resolve(alias)
        return self.family_for_base(base)

    def skewed(self, alias: str) -> bool:
        """Does this alias name a timer-driven (skew-taking) scheme?"""
        return self.family_of(alias).skewed

    def check_options(self, base: str, options: Dict[str, Any]) -> None:
        """Reject options outside the family's schema (silently ignoring
        them would make specs lie about what they measure). An option at
        its spec default is a no-op, not a request, so uniform call sites
        (``skew=0.0`` on a timerless scheme) stay legal."""
        family = self.family_for_base(base)
        unknown = sorted(
            name
            for name, value in options.items()
            if name not in family.options
            and value != _OPTION_DEFAULTS.get(name, object())
        )
        if unknown:
            raise ValueError(
                f"scheme base {base!r} ({family.name}) takes no option(s) "
                f"{unknown}; its schema is {sorted(family.options)}"
            )

    def build(self, spec: Any) -> Scheme:
        """Instantiate a scheme from a ``SchemeSpec``."""
        return self.family_for_base(spec.name).build(spec)

    # -- verify hooks ----------------------------------------------------------

    def model_machines(self) -> List[Tuple[str, Callable[..., Any]]]:
        """Every family's abstract machines, registration order, deduped
        by label — what ``repro.verify model`` enumerates."""
        machines: List[Tuple[str, Callable[..., Any]]] = []
        seen = set()
        for family in self._families.values():
            for label, factory in family.scheme_cls.model_machines():
                if label not in seen:
                    seen.add(label)
                    machines.append((label, factory))
        return machines

    def trace_checkers(self) -> List[type]:
        """Every family's trace-checker classes, deduped, registration
        order — contributed to ``verify.invariants.default_checkers``."""
        checkers: List[type] = []
        for family in self._families.values():
            for cls in family.scheme_cls.trace_checkers():
                if cls not in checkers:
                    checkers.append(cls)
        return checkers

    def trace_events(self) -> frozenset:
        """Union of every family's protocol-specific event vocabulary."""
        kinds = set()
        for family in self._families.values():
            kinds.update(family.scheme_cls.TRACE_EVENTS)
        return frozenset(kinds)

    def validate(self) -> None:
        """Fail fast if a family declares an event kind the tracer would
        reject — keeps ``EVENT_KINDS`` and the analyzer's conformance
        pass authoritative over the schemes' vocabularies."""
        from ...core.tracing import EVENT_KINDS

        for family in self._families.values():
            rogue = sorted(set(family.scheme_cls.TRACE_EVENTS) - EVENT_KINDS)
            if rogue:
                raise ValueError(
                    f"protocol family {family.name!r} declares trace "
                    f"events missing from EVENT_KINDS: {rogue}"
                )

    # -- describe (runner --list-schemes) --------------------------------------

    def describe(self) -> List[Tuple[str, str, Dict[str, Any]]]:
        """``(alias, family, fixed overrides)`` rows, registration order."""
        rows = []
        for alias, (base, fixed) in self._aliases.items():
            rows.append((alias, self._base_family[base], dict(fixed)))
        return rows


#: ``SchemeSpec`` field defaults, mirrored here so :meth:`check_options`
#: can tell "explicitly requested" from "left at the default" without a
#: circular import of the experiments layer.
_OPTION_DEFAULTS: Dict[str, Any] = {
    "skew": 0.0,
    "logging": False,
    "gc": False,
    "incremental": False,
    "two_level": False,
    "marker_scope": "all",
    "policy": None,
    "cic_rule": "bcs",
}


# -- family builders (SchemeSpec -> Scheme) ------------------------------------

_COORD_FACTORIES = {
    "coord_nb": CoordinatedScheme.NB,
    "coord_nbm": CoordinatedScheme.NBM,
    "coord_nbms": CoordinatedScheme.NBMS,
    "coord_nbs": CoordinatedScheme.NBS,
    "coord_nbc": CoordinatedScheme.NBC,
    "coord_nbcs": CoordinatedScheme.NBCS,
}

_INDEP_FACTORIES = {
    "indep": IndependentScheme.Indep,
    "indep_m": IndependentScheme.IndepM,
    "indep_c": IndependentScheme.IndepC,
}


def _build_coordinated(spec: Any) -> Scheme:
    from ..policy import build_policy

    kw: Dict[str, Any] = {}
    if spec.incremental:
        kw["incremental"] = True
    if spec.two_level:
        kw["two_level"] = True
    if spec.marker_scope != "all":
        kw["marker_scope"] = spec.marker_scope
    if spec.policy is not None:
        kw["policy"] = build_policy(spec.policy)
    return _COORD_FACTORIES[spec.name](list(spec.times), **kw)


def _build_independent(spec: Any) -> Scheme:
    from ..policy import build_policy

    kw: Dict[str, Any] = {"skew": spec.skew}
    if spec.logging:
        kw["logging"] = True
    if spec.gc:
        kw["gc"] = True
    if spec.policy is not None:
        kw["policy"] = build_policy(spec.policy)
    return _INDEP_FACTORIES[spec.name](list(spec.times), **kw)


def _build_cic(spec: Any) -> Scheme:
    from ..policy import build_policy

    kw: Dict[str, Any] = {"skew": spec.skew}
    if spec.cic_rule != "bcs":
        kw["cic_rule"] = spec.cic_rule
    if spec.policy is not None:
        kw["policy"] = build_policy(spec.policy)
    return CICScheme(list(spec.times), **kw)


def _build_msglog(spec: Any) -> Scheme:
    from ..policy import build_policy

    kw: Dict[str, Any] = {"skew": spec.skew}
    if spec.gc:
        kw["gc"] = True
    if spec.policy is not None:
        kw["policy"] = build_policy(spec.policy)
    return MessageLoggingScheme.Mlog(list(spec.times), **kw)


#: The process-wide registry, populated at import. Scheme resolution,
#: the verify stack and the runner all read from this one object.
REGISTRY = ProtocolRegistry()

REGISTRY.register(
    ProtocolFamily(
        name="coordinated",
        scheme_cls=CoordinatedScheme,
        bases=tuple(_COORD_FACTORIES),
        options=("incremental", "two_level", "marker_scope", "policy"),
        build=_build_coordinated,
        skewed=False,
    )
)
REGISTRY.register(
    ProtocolFamily(
        name="independent",
        scheme_cls=IndependentScheme,
        bases=tuple(_INDEP_FACTORIES),
        options=("skew", "logging", "gc", "policy"),
        build=_build_independent,
        skewed=True,
    )
)
REGISTRY.register(
    ProtocolFamily(
        name="cic",
        scheme_cls=CICScheme,
        bases=("cic",),
        options=("skew", "cic_rule", "policy"),
        build=_build_cic,
        skewed=True,
    )
)
REGISTRY.register(
    ProtocolFamily(
        name="msglog",
        scheme_cls=MessageLoggingScheme,
        bases=("mlog",),
        options=("skew", "gc", "policy"),
        build=_build_msglog,
        skewed=True,
    )
)

#: alias -> (base, fixed option overrides). ``skew`` is the one option
#: resolved at plan time (a fraction of the checkpoint interval), so
#: aliases only pin the discrete flags.
for _alias, _base, _fixed in (
    ("coord_nb", "coord_nb", {}),
    ("coord_nbm", "coord_nbm", {}),
    ("coord_nbms", "coord_nbms", {}),
    ("coord_nbs", "coord_nbs", {}),
    ("coord_nbc", "coord_nbc", {}),
    ("coord_nbcs", "coord_nbcs", {}),
    ("indep", "indep", {}),
    ("indep_m", "indep_m", {}),
    ("indep_c", "indep_c", {}),
    ("indep_log", "indep", {"logging": True}),
    ("indep_m_log", "indep_m", {"logging": True}),
    ("indep_m_nolog", "indep_m", {}),
    ("coord_nb_inc", "coord_nb", {"incremental": True}),
    ("coord_nbms_inc", "coord_nbms", {"incremental": True}),
    ("coord_nbcs_inc", "coord_nbcs", {"incremental": True}),
    ("coord_nb_2l", "coord_nb", {"two_level": True}),
    ("coord_nbms_2l", "coord_nbms", {"two_level": True}),
    ("cic", "cic", {}),
    ("cic_fdas", "cic", {"cic_rule": "fdas"}),
    ("indep_m_mlog", "mlog", {}),
):
    REGISTRY.register_alias(_alias, _base, _fixed)
del _alias, _base, _fixed

REGISTRY.validate()
