"""Coordinated checkpointing (the paper's `_NB`, `_NBM`, `_NBMS`).

Protocol (two-phase, coordinator-driven, non-blocking — the Silva & Silva
RDS'92 family, realised with epoch piggybacking plus explicit per-channel
markers, i.e. Chandy–Lamport channel-state recording):

1. the coordinator (rank 0) sends ``REQUEST(n)`` to every rank;
2. a process *cuts* at its next checkpoint point after learning of
   checkpoint *n* (via the request or via a piggybacked epoch on any
   application message): it captures its state, bumps its epoch to *n*,
   snapshots pre-cut messages still queued in its mailbox into the
   checkpoint's channel state, and sends ``MARKER(n)`` on every outgoing
   channel;
3. after its cut, every *delivered* application message with epoch < *n*
   is recorded into the checkpoint's channel state, per channel, until that
   channel's marker arrives (FIFO links make the marker a barrier);
4. a process acks to the coordinator once its state write has finished
   *and* all markers are in; the coordinator then broadcasts ``COMMIT(n)``,
   upon which everyone atomically discards checkpoint *n-1* — coordinated
   checkpointing never holds more than two checkpoints per process.

Variants (what the application blocks on at the cut):

* ``Coord_NB``   — blocked for the full write to stable storage.
* ``Coord_NBM``  — blocked for a main-memory copy; a checkpointer thread
  streams the buffer to storage in the background.
* ``Coord_NBMS`` — as NBM, plus a token ring staggers the background
  writes so only one node uses the storage path at a time.
* ``Coord_NBS``  — ablation: staggering *without* memory checkpointing
  (the app blocks until the token arrives and the write completes) —
  demonstrates the paper's finding that staggering only pays together
  with main-memory checkpointing.

Orphan messages (an application message consumed by a not-yet-cut receiver
but sent post-cut) are tolerated: recovery relies on piecewise-deterministic
re-execution, and the re-sent copies are dropped by per-channel sequence
numbers. See DESIGN.md §5.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, Generator, List, Optional, Sequence, Set

from ...core.errors import InvariantViolation, SimulationError, StorageFault
from ...core.events import Event
from ...net.message import KIND_CONTROL, KIND_MARKER, Message
from ..incremental import PAGE_SIZE, IncrementalState
from ..policy import CheckpointPolicy, FixedTimes
from ..retry import stable_write
from ..state import Snapshot
from ..storage_mgr import CheckpointRecord
from .base import Scheme, SchemeAgent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime import CheckpointRuntime

__all__ = ["CoordinatedScheme", "CoordinatedAgent"]

CTL_REQUEST = "request"
CTL_ACK = "ack"
CTL_COMMIT = "commit"
CTL_TOKEN = "token"
#: a rank exhausted its write retries: the 2PC round cannot commit and is
#: cancelled everywhere (rank -> coordinator, then broadcast).
CTL_ABORT = "abort"


class _Round:
    """Per-agent state of one in-progress checkpoint."""

    __slots__ = (
        "n",
        "record",
        "markers_pending",
        "token_event",
        "write_done",
        "acked",
        "aborted",
    )

    def __init__(self, n: int, record: CheckpointRecord, others: Set[int], engine) -> None:
        self.n = n
        self.record = record
        self.markers_pending = set(others)
        self.token_event: Event = Event(engine)
        self.write_done = False
        self.acked = False
        self.aborted = False


class CoordinatedAgent(SchemeAgent):
    """Rank-local mechanics of the coordinated protocol."""

    #: In-flight round state — wiped by every recovery/restart, so none of
    #: it belongs in a durable line (see SchemeAgent.RESUME_FIELDS for
    #: what does travel).
    VOLATILE_FIELDS = (
        "round",
        "early_markers",
        "early_tokens",
        "aborted_rounds",
        "inc",
    )

    def __init__(self, scheme: "CoordinatedScheme", runtime, rank: int) -> None:
        super().__init__(scheme, runtime, rank)
        self.round: Optional[_Round] = None
        #: markers that arrived before this process cut for their round.
        self.early_markers: Dict[int, Set[int]] = {}
        #: staggering tokens that arrived before the cut.
        self.early_tokens: Set[int] = set()
        #: rounds cancelled by CTL_ABORT — never cut for these, even if the
        #: (slower) request arrives after the abort.
        self.aborted_rounds: Set[int] = set()
        #: page-level dirty tracking (incremental checkpointing only).
        self.inc: Optional[IncrementalState] = (
            IncrementalState(full_every=scheme.full_every)
            if scheme.incremental
            else None
        )

    def reset_for_recovery(self, epoch: int) -> None:
        self.round = None
        self.early_markers.clear()
        self.early_tokens.clear()
        self.aborted_rounds.clear()
        super().reset_for_recovery(epoch)


class CoordinatedScheme(Scheme):
    """Coordinator + agents for one coordinated variant."""

    klass = "coordinated"

    #: Capture manifests (see :mod:`repro.chklib.resume`). Everything but
    #: the engine-bound staggering slot travels in the pickled scheme:
    #: ``_acks``/``_aborted`` must survive a halt so ``on_crash`` and the
    #: coordinator's bookkeeping resume bitwise-identically.
    RESUME_FIELDS = (
        "times",
        "policy",
        "capture",
        "memory_ckpt",
        "staggered",
        "incremental",
        "full_every",
        "two_level",
        "name",
        "coordinator_rank",
        "marker_scope",
        "_next_n",
        "_initiated",
        "_acks",
        "_aborted",
    )
    VOLATILE_FIELDS = ("_write_slot", "_ring_next", "_ring_leader")

    #: Protocol vocabulary: the two-phase round plus the staggering token
    #: (see the registry's conformance wiring in ``schemes.registry``).
    TRACE_EVENTS = (
        "proto.request",
        "proto.ack",
        "proto.commit",
        "proto.commit_apply",
        "proto.commit_on_recovery",
        "proto.abort_report",
        "proto.abort",
        "proto.abort_apply",
        "proto.token_pass",
    )

    @classmethod
    def model_machines(cls):
        from ...verify.model import TokenRingModel, TwoPhaseCommitModel

        return (("2pc", TwoPhaseCommitModel), ("token-ring", TokenRingModel))

    @classmethod
    def trace_checkers(cls):
        from ...verify.invariants import CoordinatedTwoPhase, StaggeredWriteMutex

        return (CoordinatedTwoPhase, StaggeredWriteMutex)

    def __init__(
        self,
        times: Sequence[float],
        memory_ckpt: bool,
        staggered: bool,
        name: str,
        coordinator_rank: int = 0,
        capture: Optional[str] = None,
        incremental: bool = False,
        full_every: int = 4,
        two_level: bool = False,
        policy: Optional[CheckpointPolicy] = None,
        marker_scope: str = "all",
    ) -> None:
        self.times = sorted(float(t) for t in times)
        #: when to initiate rounds; the explicit ``times`` schedule is the
        #: legacy default, wrapped in a :class:`FixedTimes` policy.
        self.policy = policy if policy is not None else FixedTimes(self.times)
        #: how the cut captures state: "blocking" (write in the app's
        #: time), "memcopy" (buffer + checkpointer thread) or "cow"
        #: (write-protect pages, stream in background, faults pay copies).
        self.capture = capture or ("memcopy" if memory_ckpt else "blocking")
        if self.capture not in ("blocking", "memcopy", "cow"):
            raise ValueError(f"unknown capture mode {self.capture!r}")
        self.memory_ckpt = self.capture != "blocking"
        self.staggered = bool(staggered)
        #: incremental checkpointing: write only dirty pages, with a full
        #: checkpoint every ``full_every`` rounds.
        self.incremental = bool(incremental)
        self.full_every = int(full_every)
        self.two_level = bool(two_level)
        self.name = name + ("_2l" if two_level else "")
        self.coordinator_rank = coordinator_rank
        #: which channels carry markers: "all" (every rank pair — the
        #: classic Chandy–Lamport closure, O(N²) markers per round) or
        #: "peers" (only the application's declared communication graph
        #: via ``app.comm_peers``, O(N·deg) — the tree/graph-limited
        #: marker distribution real large-scale systems use; falls back
        #: to "all" when the application declares no graph).
        if marker_scope not in ("all", "peers"):
            raise ValueError(f"unknown marker scope {marker_scope!r}")
        self.marker_scope = marker_scope
        self._next_n = 1
        #: initiations already fired — a resumed initiator skips this many
        #: policy shots instead of re-requesting pre-halt rounds.
        self._initiated = 0
        self._acks: Dict[int, Set[int]] = {}
        #: rounds the coordinator has cancelled (stale acks are ignored).
        self._aborted: Set[int] = set()
        #: staggering for the blocking-write variant (NBS): a FIFO write
        #: slot granted in cut order. A ring token would deadlock here —
        #: with cuts deferred to iteration boundaries, the token's next hop
        #: can be a rank stalled at a recv on an already-blocked neighbour.
        #: One slot per storage server: ranks sharded onto different
        #: servers do not contend and write concurrently.
        self._write_slot = None
        #: per-server staggering rings (rank -> successor / ring leader),
        #: derived from the machine topology by ``install()``. One ring
        #: per storage server: staggering serialises the *path*, and with
        #: S shards there are S independent paths. The single-server ring
        #: reduces exactly to the legacy global token ring.
        self._ring_next: Optional[Dict[int, int]] = None
        self._ring_leader: Optional[Dict[int, int]] = None

    # -- named variants ------------------------------------------------------

    @classmethod
    def NB(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """Non-blocking protocol, blocking storage write."""
        return cls(times, memory_ckpt=False, staggered=False, name="coord_nb", **kw)

    @classmethod
    def NBM(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """+ main-memory checkpointing."""
        return cls(times, memory_ckpt=True, staggered=False, name="coord_nbm", **kw)

    @classmethod
    def NBMS(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """+ main-memory checkpointing + staggered writes."""
        return cls(times, memory_ckpt=True, staggered=True, name="coord_nbms", **kw)

    @classmethod
    def NBS(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """Ablation: staggered writes without memory checkpointing."""
        return cls(times, memory_ckpt=False, staggered=True, name="coord_nbs", **kw)

    @classmethod
    def NBC(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """Extension: copy-on-write capture, concurrent background writes."""
        return cls(
            times, memory_ckpt=True, staggered=False, name="coord_nbc",
            capture="cow", **kw
        )

    @classmethod
    def NBCS(cls, times: Sequence[float], **kw) -> "CoordinatedScheme":
        """Extension: copy-on-write capture + staggered writes."""
        return cls(
            times, memory_ckpt=True, staggered=True, name="coord_nbcs",
            capture="cow", **kw
        )

    # -- wiring ---------------------------------------------------------------

    def make_agent(self, runtime: "CheckpointRuntime", rank: int) -> CoordinatedAgent:
        return CoordinatedAgent(self, runtime, rank)

    def install(self, runtime: "CheckpointRuntime") -> None:
        if self.staggered and not self.memory_ckpt:
            from ...core.resources import Resource

            n_servers = runtime.cluster.storage.n_servers
            self._write_slot = {
                s: Resource(
                    runtime.engine,
                    capacity=1,
                    name=(
                        "stagger-slot" if n_servers == 1 else f"stagger-slot:{s}"
                    ),
                )
                for s in range(n_servers)
            }
        if self.staggered and self.memory_ckpt:
            self._build_rings(runtime)
        if not self.policy.point_driven:
            runtime.engine.process(self._initiator(runtime), name="ckpt-initiator")

    def _build_rings(self, runtime: "CheckpointRuntime") -> None:
        """One token ring per storage server, over the ranks sharded onto
        it. The ring containing the coordinator is led by the coordinator
        (it implicitly holds the token, as in the legacy global ring); any
        other ring is led by its smallest rank. With one server this is
        exactly the legacy ring: 0 → 1 → … → N-1, stop."""
        topo = runtime.cluster.topology
        n_servers = runtime.cluster.storage.n_servers
        self._ring_next = {}
        self._ring_leader = {}
        for group in topo.server_groups(n_servers):
            ranks = list(group)
            if not ranks:
                continue
            leader = (
                self.coordinator_rank
                if self.coordinator_rank in group
                else ranks[0]
            )
            for i, r in enumerate(ranks):
                self._ring_next[r] = ranks[(i + 1) % len(ranks)]
                self._ring_leader[r] = leader

    def _ring_leader_of(self, runtime: "CheckpointRuntime", rank: int) -> int:
        if self._ring_leader is None:
            self._build_rings(runtime)
        return self._ring_leader[rank]

    def _marker_targets(self, rt: "CheckpointRuntime", rank: int) -> List[int]:
        """The channels carrying this rank's markers (and, symmetrically,
        the markers this rank waits for). ``marker_scope="peers"`` narrows
        the closure to the application's declared communication graph."""
        if self.marker_scope == "peers":
            peers_fn = getattr(rt.app, "comm_peers", None)
            if peers_fn is not None:
                peers = peers_fn(rank, rt.n_ranks)
                if peers is not None:
                    return sorted({int(p) for p in peers} - {rank})
        return [r for r in range(rt.n_ranks) if r != rank]

    # pickling: the generic Scheme.__getstate__ nulls VOLATILE_FIELDS —
    # the staggering write slot holds an engine reference; install()
    # recreates it in the restarted runtime.

    def _initiator(self, runtime: "CheckpointRuntime"):
        """Coordinator-side: kick off a global checkpoint at each time the
        policy decides (skips shots a resumed run already fired)."""
        engine = runtime.engine
        shot = 0
        while True:
            t = self.policy.next_time(runtime, self.coordinator_rank, shot)
            if t is None:
                return
            if shot < self._initiated:
                shot += 1  # fired before the halt; the memoised decision
                continue  # replays with no side effects
            if t > engine.now:
                yield engine.delay(t - engine.now)
            if runtime.finished:
                return
            shot += 1
            self._initiated += 1
            self._initiate(runtime)

    def _initiate(self, runtime: "CheckpointRuntime") -> None:
        """Start one global checkpoint round (request broadcast)."""
        comm = runtime.comms[self.coordinator_rank]
        n = self._next_n
        self._next_n += 1
        runtime.tracer.add("chk.initiations")
        runtime.tracer.event(
            "proto.request", round=n, coordinator=self.coordinator_rank
        )
        # local "request" to the coordinator's own agent ...
        runtime.agents[self.coordinator_rank].set_pending(n)
        # ... and control messages to everyone else (sent in rank order,
        # claiming the coordinator's link sequentially).
        for dst in range(runtime.n_ranks):
            if dst != self.coordinator_rank:
                runtime.spawn(
                    comm.send_control(dst, KIND_CONTROL, type=CTL_REQUEST, n=n),
                    name=f"request:{n}->{dst}",
                )

    # -- agent hooks -----------------------------------------------------------

    def on_app_deliver(self, agent: CoordinatedAgent, msg: Message) -> None:
        # learn of a newer checkpoint via the piggybacked epoch
        if msg.epoch > agent.epoch:
            agent.set_pending(msg.epoch)
        # channel-state recording: pre-cut message delivered after our cut
        rnd = agent.round
        if (
            rnd is not None
            and msg.epoch < rnd.n
            and msg.src in rnd.markers_pending
        ):
            rnd.record.channel_msgs.append(_shell_copy(msg))
            agent.runtime.tracer.add("chk.channel_msgs_recorded")

    def on_control(self, agent: CoordinatedAgent, msg: Message) -> None:
        if msg.kind == KIND_MARKER:
            self._on_marker(agent, msg)
            return
        ctype = msg.meta.get("type")
        n = msg.meta.get("n")
        if ctype == CTL_REQUEST:
            agent.set_pending(n)
        elif ctype == CTL_ACK:
            self._on_ack(agent, msg.src, n)
        elif ctype == CTL_COMMIT:
            self._apply_commit(agent, n)
        elif ctype == CTL_TOKEN:
            self._on_token(agent, n)
        elif ctype == CTL_ABORT:
            if agent.rank == self.coordinator_rank:
                self._on_abort(agent, n)
            else:
                self._apply_abort(agent, n)
        else:
            raise SimulationError(f"{self.name}: bad control message {msg!r}")

    def _on_marker(self, agent: CoordinatedAgent, msg: Message) -> None:
        n = msg.meta["n"]
        rnd = agent.round
        if rnd is not None and rnd.n == n:
            rnd.markers_pending.discard(msg.src)
            if not rnd.markers_pending:
                self._maybe_ack(agent, rnd)
            return
        if n > agent.epoch:
            # marker overtook the request: remember it and schedule the cut
            agent.early_markers.setdefault(n, set()).add(msg.src)
            agent.set_pending(n)
        # markers for already-completed rounds are stale noise; ignore.

    def _on_token(self, agent: CoordinatedAgent, n: int) -> None:
        rnd = agent.round
        if rnd is not None and rnd.n == n:
            if not rnd.token_event.triggered:
                rnd.token_event.succeed()
        elif n > agent.epoch or (rnd is None and n == agent.epoch):
            agent.early_tokens.add(n)
        # (token returning to the coordinator after its round closed: drop)

    # -- the cut -----------------------------------------------------------------

    def at_point(self, agent: CoordinatedAgent) -> Generator[Any, Any, None]:
        # point-driven policies initiate rounds from the coordinator's own
        # checkpoint points (the request broadcast happens here; the
        # coordinator's set_pending makes it cut at this same point). A
        # finished coordinator's at_point re-entries are late-cut spawns,
        # not application phases, and must not count as points.
        if (
            self.policy.point_driven
            and agent.rank == self.coordinator_rank
            and not agent.finished
            and self.policy.on_point(agent.runtime, agent.rank)
        ):
            self._initiate(agent.runtime)
        if agent.pending_cut is None or agent.pending_cut <= agent.epoch:
            return
        if agent.round is not None:
            # previous round still completing in the background; defer to
            # the next checkpoint point (sane intervals never hit this).
            return
        n = agent.pending_cut
        agent.pending_cut = None
        if n in agent.aborted_rounds:
            return  # the round was cancelled before this rank could cut
        yield from self._cut(agent, n)

    def _cut(self, agent: CoordinatedAgent, n: int) -> Generator[Any, Any, None]:
        rt = agent.runtime
        engine = rt.engine
        t0 = engine.now
        if agent.state_ref is None:
            raise SimulationError(f"rank {agent.rank}: cut with no bound state")
        snap = Snapshot.capture(agent.state_ref)
        record = CheckpointRecord(
            rank=agent.rank,
            index=n,
            snapshot=snap,
            comm_meta=agent.comm.channel_meta(),
            taken_at=t0,
            pad_bytes=getattr(rt.app, "image_bytes", 0),
        )
        if agent.inc is not None:
            # incremental: ship only dirty pages (measured, not modelled)
            is_full, state_bytes, hashes = agent.inc.plan(snap.blob)
            agent.inc.advance(is_full, hashes)
            if is_full:
                record.stored_state_bytes = record.state_bytes
                rt.tracer.add("chk.full_ckpts")
            else:
                record.stored_state_bytes = state_bytes
                record.base_index = agent.epoch
                rt.tracer.add("chk.incremental_ckpts")
                rt.tracer.add(
                    "chk.incremental_bytes_saved",
                    record.state_bytes - state_bytes,
                )
        others = self._marker_targets(rt, agent.rank)
        rnd = _Round(n, record, set(others), engine)
        rnd.markers_pending -= agent.early_markers.pop(n, set())
        agent.round = rnd
        agent.epoch = n
        agent.cuts_taken += 1
        rt.tracer.add("chk.cuts")
        rt.tracer.event("proto.cut", rank=agent.rank, round=n, scheme=self.name)
        # pre-cut messages still queued in the mailbox are in-transit state
        for m in agent.comm.mailbox.pending:
            if m.epoch < n:
                record.channel_msgs.append(_shell_copy(m))
        # markers claim the outgoing link now (FIFO after pre-cut sends,
        # before any post-cut application sends) and fly in the background.
        for dst in others:
            rt.spawn(
                agent.comm.send_control(dst, KIND_MARKER, n=n),
                name=f"marker:{n}:{agent.rank}->{dst}",
            )
        if n in agent.early_tokens:
            agent.early_tokens.discard(n)
            rnd.token_event.succeed()
        span = rt.tracer.open_span("ckpt.cut", rank=agent.rank, n=n, scheme=self.name)
        if agent.finished:
            # a finished process has nothing to block: capture is already
            # done, the write streams in the background under any variant.
            rt.spawn(
                self._bg_writer(agent, rnd, cow=False),
                name=f"ckpt-writer:{n}:r{agent.rank}",
            )
            rt.tracer.close_span(span)
            self._maybe_ack(agent, rnd)
            return
        if self.capture == "cow":
            # block only to write-protect the pages; the background writer
            # streams while application stores fault-and-copy.
            pages = max(1, record.state_bytes // PAGE_SIZE)
            yield engine.delay(pages * agent.node.params.cow_mark_cost)
            rt.spawn(
                self._bg_writer(agent, rnd, cow=True),
                name=f"ckpt-writer:{n}:r{agent.rank}",
            )
        elif self.memory_ckpt:
            # block only for the buffer copy; the checkpointer thread does
            # the rest concurrently with the application.
            yield from agent.node.mem_copy(record.write_bytes)
            rt.spawn(self._bg_writer(agent, rnd), name=f"ckpt-writer:{n}:r{agent.rank}")
        elif self.staggered:
            # blocking + staggered (NBS ablation): serialise writes on a
            # FIFO slot, granted in cut order.
            if self._write_slot is None:
                raise InvariantViolation(
                    "NBS cut without a write slot (install() not run?)",
                    scheme=self.name,
                    rank=agent.rank,
                )
            rt.cluster.set_rank_blocked(agent.rank, True)
            wrote = True
            slot_res = self._write_slot[
                rt.cluster.storage.server_index(agent.rank)
            ]
            try:
                with slot_res.request() as slot:
                    yield slot
                    rt.tracer.event(
                        "proto.write_begin",
                        rank=agent.rank,
                        round=n,
                        scheme=self.name,
                    )
                    try:
                        yield from stable_write(
                            self.ckpt_storage(agent),
                            agent.node,
                            record.write_bytes,
                            tag=f"ckpt{n}:r{agent.rank}",
                            retry=rt.retry_policy,
                            tracer=rt.tracer,
                        )
                    except StorageFault:
                        wrote = False
                    rt.tracer.event(
                        "proto.write_end", rank=agent.rank, round=n, ok=wrote
                    )
            finally:
                rt.cluster.set_rank_blocked(agent.rank, False)
            if wrote:
                self._write_finished(agent, rnd)
            else:
                self._write_failed(agent, rnd)
        else:
            rt.cluster.set_rank_blocked(agent.rank, True)
            wrote = True
            rt.tracer.event(
                "proto.write_begin", rank=agent.rank, round=n, scheme=self.name
            )
            try:
                try:
                    yield from stable_write(
                        self.ckpt_storage(agent),
                        agent.node,
                        record.write_bytes,
                        tag=f"ckpt{n}:r{agent.rank}",
                        retry=rt.retry_policy,
                        tracer=rt.tracer,
                    )
                except StorageFault:
                    wrote = False
            finally:
                rt.cluster.set_rank_blocked(agent.rank, False)
            rt.tracer.event("proto.write_end", rank=agent.rank, round=n, ok=wrote)
            if wrote:
                self._write_finished(agent, rnd)
            else:
                self._write_failed(agent, rnd)
        agent.charge_blocked(t0)
        rt.tracer.close_span(span)
        self._maybe_ack(agent, rnd)

    def _bg_writer(self, agent: CoordinatedAgent, rnd: _Round, cow: bool = False):
        rt = agent.runtime
        if cow:
            agent.node.cow_window_opened()
        wrote = True
        try:
            # the token ring only runs in the memory variants (NBMS/NBCS);
            # NBS serialises via the write slot in the blocking path.
            # Ring leaders (the coordinator's ring, plus one rank per
            # additional storage server) hold their ring's token
            # implicitly and write first.
            if (
                self.staggered
                and self.memory_ckpt
                and agent.rank != self._ring_leader_of(rt, agent.rank)
            ):
                yield rnd.token_event
            if rnd.aborted:
                return  # an abort woke us up; nothing to write
            rt.tracer.event(
                "proto.write_begin",
                rank=agent.rank,
                round=rnd.n,
                scheme=self.name,
            )
            try:
                yield from stable_write(
                    self.ckpt_storage(agent),
                    agent.node,
                    rnd.record.write_bytes,
                    tag=f"ckpt{rnd.n}:r{agent.rank}",
                    retry=rt.retry_policy,
                    tracer=rt.tracer,
                    background=True,
                )
            except StorageFault:
                wrote = False
            rt.tracer.event(
                "proto.write_end", rank=agent.rank, round=rnd.n, ok=wrote
            )
        finally:
            if cow:
                agent.node.cow_window_closed()
        if wrote:
            self._write_finished(agent, rnd)
            self._maybe_ack(agent, rnd)
        else:
            self._write_failed(agent, rnd)

    def _write_finished(self, agent: CoordinatedAgent, rnd: _Round) -> None:
        rt = agent.runtime
        if rnd.aborted:
            return  # the round died while the write was in flight
        rnd.record.written_at = rt.engine.now
        rt.store.add(rnd.record)
        rnd.write_done = True
        inj = rt.storage.fault_injector
        if inj is not None and inj.corrupts_checkpoint(agent.rank, rnd.n):
            # silent media corruption: nobody notices until recovery
            # validates the record's checksum.
            rt.store.corrupt(agent.rank, rnd.n)
            rt.tracer.add("chk.ckpts_corrupted")
        self.after_stable_write(agent, rnd.record, rnd.record.write_bytes)
        if self.staggered and self.memory_ckpt:  # NBS uses the FIFO slot
            if self._ring_next is None:
                self._build_rings(rt)
            nxt = self._ring_next[agent.rank]
            if nxt != self._ring_leader[agent.rank]:
                rt.tracer.event(
                    "proto.token_pass", round=rnd.n, src=agent.rank, dst=nxt
                )
                rt.spawn(
                    agent.comm.send_control(nxt, KIND_CONTROL, type=CTL_TOKEN, n=rnd.n),
                    name=f"token:{rnd.n}:{agent.rank}->{nxt}",
                )

    # -- round abort (a rank's write exhausted its retries) -----------------------

    def _write_failed(self, agent: CoordinatedAgent, rnd: _Round) -> None:
        """This rank cannot persist checkpoint *rnd.n*: the round can never
        gather all acks, so cancel it cleanly for everyone instead of
        wedging the protocol."""
        rt = agent.runtime
        rt.tracer.add("chk.ckpt_writes_failed")
        rt.tracer.event("proto.abort_report", rank=agent.rank, round=rnd.n)
        self._apply_abort(agent, rnd.n)
        if agent.rank == self.coordinator_rank:
            self._on_abort(agent, rnd.n)
        else:
            rt.spawn(
                agent.comm.send_control(
                    self.coordinator_rank, KIND_CONTROL, type=CTL_ABORT, n=rnd.n
                ),
                name=f"abort:{rnd.n}:r{agent.rank}",
            )

    def _on_abort(self, agent_at_coord: CoordinatedAgent, n: int) -> None:
        """Coordinator side: cancel round *n* once and broadcast the abort."""
        rt = agent_at_coord.runtime
        if n in self._aborted:
            return
        self._aborted.add(n)
        self._acks.pop(n, None)
        rt.tracer.add("chk.rounds_aborted")
        rt.tracer.event("proto.abort", round=n)
        comm = rt.comms[self.coordinator_rank]
        for dst in range(rt.n_ranks):
            if dst != self.coordinator_rank:
                rt.spawn(
                    comm.send_control(dst, KIND_CONTROL, type=CTL_ABORT, n=n),
                    name=f"abort:{n}->{dst}",
                )
        self._apply_abort(agent_at_coord, n)

    def _apply_abort(self, agent: CoordinatedAgent, n: int) -> None:
        """Rank-local cancellation of round *n* (idempotent)."""
        rt = agent.runtime
        if n not in agent.aborted_rounds:
            rt.tracer.event("proto.abort_apply", rank=agent.rank, round=n)
        agent.aborted_rounds.add(n)
        rnd = agent.round
        if rnd is not None and rnd.n == n:
            rnd.aborted = True
            if not rnd.token_event.triggered:
                # wake a staggered writer stuck waiting for a token that
                # will never come; it bails out on rnd.aborted
                rnd.token_event.succeed()
            agent.round = None
        agent.early_markers.pop(n, None)
        agent.early_tokens.discard(n)
        if agent.pending_cut is not None and agent.pending_cut <= n:
            agent.pending_cut = None
        try:
            if not rt.store.get(agent.rank, n).committed:
                rt.store.discard(agent.rank, n)
        except KeyError:
            pass
        if agent.inc is not None:
            # the incremental chain now has a hole at n; force the next
            # checkpoint to be a full one.
            agent.inc.reset()

    def _maybe_ack(self, agent: CoordinatedAgent, rnd: _Round) -> None:
        if rnd.aborted or rnd.acked or not rnd.write_done or rnd.markers_pending:
            return
        rnd.acked = True
        agent.round = None  # channel recording is complete
        rt = agent.runtime
        rt.tracer.event("proto.ack", rank=agent.rank, round=rnd.n)
        if agent.rank == self.coordinator_rank:
            self._on_ack(agent, agent.rank, rnd.n)
        else:
            rt.spawn(
                agent.comm.send_control(
                    self.coordinator_rank, KIND_CONTROL, type=CTL_ACK, n=rnd.n
                ),
                name=f"ack:{rnd.n}:r{agent.rank}",
            )

    # -- coordinator-side commit --------------------------------------------------

    def _on_ack(self, agent_at_coord: CoordinatedAgent, src: int, n: int) -> None:
        rt = agent_at_coord.runtime
        if n in self._aborted:
            return  # stale ack racing the abort broadcast
        acks = self._acks.setdefault(n, set())
        acks.add(src)
        if len(acks) < rt.n_ranks:
            return
        del self._acks[n]
        rt.tracer.event("proto.commit", round=n, acks=tuple(sorted(acks)))
        comm = rt.comms[self.coordinator_rank]
        for dst in range(rt.n_ranks):
            if dst != self.coordinator_rank:
                rt.spawn(
                    comm.send_control(dst, KIND_CONTROL, type=CTL_COMMIT, n=n),
                    name=f"commit:{n}->{dst}",
                )
        self._apply_commit(rt.agents[self.coordinator_rank], n)

    def _apply_commit(self, agent: CoordinatedAgent, n: int) -> None:
        rt = agent.runtime
        rt.tracer.event("proto.commit_apply", rank=agent.rank, round=n)
        rt.store.commit(agent.rank, n)
        # an incremental checkpoint needs its chain back to the last full
        # one; only records older than the chain base are disposable.
        keep_from = rt.store.chain_base(agent.rank, n)
        rt.store.discard_older_than(agent.rank, keep_from)
        rt.tracer.add("chk.commits")

    # -- recovery -------------------------------------------------------------------

    def recovery_line(self, runtime: "CheckpointRuntime") -> Dict[int, Any]:
        """The newest usable global checkpoint.

        A round *n* is usable when every rank holds a written, restorable
        (unquarantined, chain-intact) record *n* and at least one rank
        committed it: a processed COMMIT(n) proves the coordinator had all
        acks, hence everyone's write and markers finished — so tentative
        members are committed on the spot (2PC commit-on-recovery).
        Quarantined or missing records simply exclude their round, and the
        search falls back to the newest older committed line."""
        store = runtime.store
        common: Optional[Set[int]] = None
        committed_idx: Set[int] = set()
        for rank in range(runtime.n_ranks):
            ok = set()
            for rec in store.chain(rank):
                if rec.written_at is None or rec.quarantined:
                    continue
                if not store.chain_intact(rank, rec.index):
                    continue
                ok.add(rec.index)
                if rec.committed:
                    committed_idx.add(rec.index)
            common = ok if common is None else common & ok
        usable = {i for i in (common or set()) if i in committed_idx}
        if not usable:
            return {r: None for r in range(runtime.n_ranks)}
        n = max(usable)
        line: Dict[int, Any] = {}
        for r in range(runtime.n_ranks):
            rec = store.get(r, n)
            if not rec.committed:
                store.commit(r, n)
                runtime.tracer.add("chk.commit_on_recovery")
                runtime.tracer.event("proto.commit_on_recovery", rank=r, round=n)
            line[r] = rec
        return line

    def line_sound(self, runtime: "CheckpointRuntime", line, cut_line) -> bool:
        # a committed global round restores every rank to the *same* index
        # (orphan messages across it are tolerated: piecewise-deterministic
        # re-execution regenerates them and sequence numbers drop the dups)
        return len({cut.index for cut in cut_line.values()}) == 1

    def on_crash(self, runtime: "CheckpointRuntime") -> None:
        self._acks.clear()
        self._aborted.clear()

    def reset_agent(self, agent: SchemeAgent) -> None:
        assert isinstance(agent, CoordinatedAgent)
        agent.round = None
        agent.early_markers.clear()
        agent.early_tokens.clear()
        agent.aborted_rounds.clear()
        if agent.inc is not None:
            agent.inc.reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CoordinatedScheme {self.name} times={self.times}>"


def _shell_copy(msg: Message) -> Message:
    """Copy the message shell (payload shared; payloads are immutable by
    the application contract) so later meta mutation cannot alias."""
    return dataclasses.replace(msg, meta=dict(msg.meta))
