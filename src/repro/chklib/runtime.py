"""The checkpointing runtime: wires application, scheme, machine and faults.

:class:`CheckpointRuntime` is the reproduction's equivalent of launching a
CHK-LIB application on the Xplorer: it builds the simulated machine, one
communicator per rank (with the scheme's agent attached), starts one SPMD
driver process per rank, runs the checkpoint schedule, optionally injects
crashes and executes rollback + re-execution, and returns a
:class:`RunReport` with everything the experiments need.

Recovery semantics (both classes of schemes, as in the paper): a failure
takes down the whole application; every process rolls back to the scheme's
recovery line, channel state / logged in-transit messages are re-injected,
send sequence counters rewind so re-executed sends reuse their original
sequence numbers, and duplicate deliveries are suppressed — under the
piecewise-deterministic execution contract the re-run reproduces the
original results exactly.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple, Union

import dataclasses as _dc

from ..core.engine import Engine
from ..core.errors import (
    Interrupt,
    ResumeError,
    SimulationError,
    StorageFault,
)
from ..core.events import Event
from ..core.process import Process
from ..core.rng import RngStreams
from ..core.tracing import make_tracer
from ..fault.injection import make_injector
from ..fault.model import FaultModel, FaultPlan, RetryPolicy
from ..machine.cluster import Cluster
from ..machine.params import MachineParams
from ..net.api import Comm
from ..net.transport import Transport
from ..fault.model import CrashEvent
from .recovery import CutPoint
from .resume import DurableLine, resume_components, resume_fields
from .schemes.base import NoCheckpointing, Scheme
from .storage_mgr import CheckpointRecord, CheckpointStore

__all__ = [
    "CheckpointRuntime",
    "Ctx",
    "RunReport",
    "RecoveryEvent",
    "FaultPlan",
    "FaultModel",
    "RetryPolicy",
    "DurableLine",
]

#: version stamp of the durable-line payload layout. v2: the payload is
#: manifest-driven (keys come from the classes' RESUME_FIELDS /
#: RESUME_COMPONENTS declarations; ``machine`` became ``machine_params``).
LINE_PAYLOAD_VERSION = 2


def _plain(value: Any) -> Any:
    """Normalise *value* into plain JSON-serialisable Python types.

    NumPy scalars become their Python equivalents, tuples become lists
    and mapping keys become strings — so a serialised report is stable
    JSON regardless of which numeric types the application produced.
    """
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if type(value).__module__.startswith("numpy"):
        if getattr(value, "ndim", 0) > 0:  # arrays: element lists
            return _plain(value.tolist())
        return _plain(value.item() if hasattr(value, "item") else value)
    return value


def _int_keyed(mapping: Dict[str, Any]) -> Dict[int, Any]:
    return {int(k): v for k, v in mapping.items()}


@dataclass
class RecoveryEvent:
    """What one crash + rollback cost."""

    crash_time: float
    line_indices: Dict[int, int]
    rollback_checkpoints: Dict[int, int]  #: checkpoints lost per rank
    lost_time: Dict[int, float]  #: sim-seconds of work discarded per rank
    replayed_messages: int
    duration: float  #: crash -> all drivers restarted
    domino_extent: float  #: fraction of ranks pushed to the initial state
    #: ranks that actually failed (all ranks for a machine crash).
    failed_ranks: Tuple[int, ...] = ()
    #: ranks whose local disks died with them (per-node failures).
    disks_lost: Tuple[int, ...] = ()
    #: checkpoints quarantined while recovering (corrupt or unreadable).
    quarantined: int = 0
    #: restore-read retries spent before the line could be materialised.
    restore_retries: int = 0
    #: the restored line satisfied the *scheme's* recoverability
    #: requirement (same committed round for coordinated, transitless for
    #: unlogged independent, replayable logs for logged independent) —
    #: always True for sound schemes; recorded so tests can assert it.
    line_consistent: bool = True

    # -- serialization (the experiment grid's on-disk result cache) ---------

    def to_dict(self) -> Dict[str, Any]:
        return _plain(_dc.asdict(self))

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RecoveryEvent":
        return cls(
            crash_time=float(d["crash_time"]),
            line_indices=_int_keyed(d["line_indices"]),
            rollback_checkpoints=_int_keyed(d["rollback_checkpoints"]),
            lost_time=_int_keyed(d["lost_time"]),
            replayed_messages=int(d["replayed_messages"]),
            duration=float(d["duration"]),
            domino_extent=float(d["domino_extent"]),
            failed_ranks=tuple(d.get("failed_ranks", ())),
            disks_lost=tuple(d.get("disks_lost", ())),
            quarantined=int(d.get("quarantined", 0)),
            restore_retries=int(d.get("restore_retries", 0)),
            line_consistent=bool(d.get("line_consistent", True)),
        )


@dataclass
class RunReport:
    """Everything measured in one run."""

    app: str
    scheme: str
    n_nodes: int
    seed: int
    sim_time: float
    result: Any
    checkpoints_taken: int
    checkpoints_committed: int
    blocked_time: float  #: total app-blocked time across ranks
    storage_bytes_written: float
    storage_peak_bytes: int
    storage_peak_checkpoints: int
    storage_final_bytes: int
    control_messages: int
    control_bytes: int
    app_messages: int
    app_bytes: int
    counters: Dict[str, float] = field(default_factory=dict)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    # -- resilience accounting (fault-injection subsystem) --------------------
    storage_write_faults: int = 0  #: injected transient write failures
    storage_read_faults: int = 0  #: injected transient read failures
    storage_write_retries: int = 0  #: write attempts repeated after a fault
    storage_read_retries: int = 0  #: read attempts repeated after a fault
    rounds_aborted: int = 0  #: coordinated 2PC rounds aborted cleanly
    ckpt_writes_failed: int = 0  #: checkpoint writes dropped after retries
    checkpoints_quarantined: int = 0  #: records excluded as corrupt/unreadable

    @property
    def overhead_vs(self) -> Any:  # pragma: no cover - convenience stub
        raise AttributeError("use repro.analysis.metrics.overhead()")

    # -- serialization (the experiment grid's on-disk result cache) ---------

    def to_dict(self) -> Dict[str, Any]:
        """A plain-JSON dict round-trippable through :meth:`from_dict`."""
        d = _plain(_dc.asdict(self))
        d["recoveries"] = [ev.to_dict() for ev in self.recoveries]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunReport":
        """Rebuild a report (type-normalised: every number is plain
        Python, so a cached report compares and renders identically to a
        fresh one)."""
        return cls(
            app=str(d["app"]),
            scheme=str(d["scheme"]),
            n_nodes=int(d["n_nodes"]),
            seed=int(d["seed"]),
            sim_time=float(d["sim_time"]),
            result=d["result"],
            checkpoints_taken=int(d["checkpoints_taken"]),
            checkpoints_committed=int(d["checkpoints_committed"]),
            blocked_time=float(d["blocked_time"]),
            storage_bytes_written=float(d["storage_bytes_written"]),
            storage_peak_bytes=int(d["storage_peak_bytes"]),
            storage_peak_checkpoints=int(d["storage_peak_checkpoints"]),
            storage_final_bytes=int(d["storage_final_bytes"]),
            control_messages=int(d["control_messages"]),
            control_bytes=int(d["control_bytes"]),
            app_messages=int(d["app_messages"]),
            app_bytes=int(d["app_bytes"]),
            counters={str(k): v for k, v in d.get("counters", {}).items()},
            recoveries=[
                RecoveryEvent.from_dict(ev) for ev in d.get("recoveries", [])
            ],
            storage_write_faults=int(d.get("storage_write_faults", 0)),
            storage_read_faults=int(d.get("storage_read_faults", 0)),
            storage_write_retries=int(d.get("storage_write_retries", 0)),
            storage_read_retries=int(d.get("storage_read_retries", 0)),
            rounds_aborted=int(d.get("rounds_aborted", 0)),
            ckpt_writes_failed=int(d.get("ckpt_writes_failed", 0)),
            checkpoints_quarantined=int(d.get("checkpoints_quarantined", 0)),
        )


class Ctx:
    """Per-rank execution context handed to the application."""

    __slots__ = ("runtime", "rank", "size", "comm", "node", "engine", "_agent")

    def __init__(self, runtime: "CheckpointRuntime", rank: int) -> None:
        self.runtime = runtime
        self.rank = rank
        self.size = runtime.n_ranks
        self.comm = runtime.comms[rank]
        self.node = runtime.cluster.node(rank)
        self.engine = runtime.engine
        self._agent = runtime.agents[rank]

    @property
    def now(self) -> float:
        return self.engine.now

    def compute(self, flops: float) -> Generator[Event, Any, None]:
        """Burn CPU time for *flops* of work (``yield from``)."""
        return self.node.compute(flops)

    def checkpoint_point(self) -> Generator[Event, Any, None]:
        """Declare a safe point: a pending checkpoint is taken here."""
        return self._agent.at_point()


class CheckpointRuntime:
    """One application run on one machine under one checkpointing scheme."""

    #: Capture manifest: attributes serialised verbatim into a durable
    #: line. The first four are constructor inputs — :meth:`restart_from`
    #: feeds them back into ``__init__``, so :meth:`_apply_resume` skips
    #: them (:attr:`_CTOR_FIELDS`).
    RESUME_FIELDS = (
        "app",
        "scheme",
        "machine_params",
        "fault_model",
        "store",
        "generation",
        "recoveries",
    )
    _CTOR_FIELDS = ("app", "scheme", "machine_params", "fault_model")
    #: Sub-objects captured through their own ``export_state()`` or their
    #: class's RESUME_FIELDS manifest (see :meth:`_export_component`).
    RESUME_COMPONENTS = (
        "tracer",
        "rngs",
        "injector",
        "transport",
        "storage",
        "agents",
    )
    #: Rebuilt from scratch by ``__init__`` on every (re)start; never
    #: captured. The static analyzer's capture-completeness pass checks
    #: that every attribute assigned on this class appears in one of the
    #: three manifests.
    VOLATILE_FIELDS = (
        "engine",
        "cluster",
        "n_ranks",
        "seed",
        "fault_plan",
        "comms",
        "durable_line",
        "halted",
        "_gen_procs",
        "_finished",
        "_done",
        "_result",
        "_ran",
        "_resumed_at",
    )

    def __init__(
        self,
        app: Any,
        scheme: Optional[Scheme] = None,
        machine: Optional[MachineParams] = None,
        seed: int = 0,
        fault_plan: Optional[FaultPlan] = None,
        fault_model: Optional[FaultModel] = None,
        trace: bool = True,
        _resume: Optional[Dict[str, Any]] = None,
    ) -> None:
        if fault_plan is not None and fault_model is not None:
            raise ValueError("pass either fault_plan or fault_model, not both")
        self.app = app
        # a resumed run's clock starts where the halted run's stopped
        self.engine = Engine(
            start_time=float(_resume["meta"]["halted_at"]) if _resume else 0.0
        )
        # trace=False selects the NullTracer: true no-op recording methods,
        # so untraced sweeps pay nothing per protocol message.
        self.tracer = make_tracer(self.engine, enabled=trace)
        self.machine_params = machine or MachineParams.xplorer8()
        self.cluster = Cluster(self.engine, self.machine_params, tracer=self.tracer)
        self.n_ranks = self.cluster.n_nodes
        self.transport = Transport(self.cluster, tracer=self.tracer)
        self.storage = self.cluster.storage
        self.store = CheckpointStore(self.n_ranks)
        self.scheme = scheme or NoCheckpointing()
        self.seed = int(seed)
        self.rngs = RngStreams(seed)
        #: the unified fault model (legacy FaultPlan is normalised into it).
        if fault_model is None and fault_plan is not None:
            fault_model = FaultModel.from_plan(fault_plan)
        self.fault_model = fault_model
        self.fault_plan = fault_plan  # kept for legacy introspection
        #: deterministic storage-fault oracle (None = storage never fails).
        self.injector = (
            make_injector(fault_model.storage, self.rngs)
            if fault_model is not None
            else None
        )
        if self.injector is not None:
            # faults target the shared storage plane (every shard server);
            # private local disks and rack burst buffers stay reliable
            # (they fail by dying with their node/rack instead).
            self.storage.set_fault_injector(self.injector)
        #: bumped on every recovery; stale wire messages are dropped by it.
        self.generation = 0
        self.recoveries: List[RecoveryEvent] = []
        self.agents = [
            self.scheme.make_agent(self, r) for r in range(self.n_ranks)
        ]
        self.comms = [
            Comm(self.transport, r, self.n_ranks, agent=self.agents[r])
            for r in range(self.n_ranks)
        ]
        for agent, comm in zip(self.agents, self.comms):
            agent.bind(comm)
        self._gen_procs: List[Process] = []
        self._finished: Dict[int, Any] = {}
        self._done: Event = self.engine.event()
        self._result: Any = None
        self._ran = False
        #: set by a ``halt_at`` run: the captured image of this run.
        self.durable_line: Optional[DurableLine] = None
        self.halted = False
        #: simulated time this runtime resumed from (None = a fresh run).
        self._resumed_at: Optional[float] = None
        if _resume is not None:
            self._apply_resume(_resume)

    # -- public API ---------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self._done.triggered

    @property
    def retry_policy(self) -> RetryPolicy:
        """The run's retry/backoff knobs for failed storage operations."""
        if self.fault_model is not None:
            return self.fault_model.retry
        return RetryPolicy()

    def run(self, halt_at: Optional[float] = None) -> RunReport:
        """Execute to completion (including any scheduled crashes).

        With *halt_at*, the run stops at that simulated time instead and
        captures a :class:`DurableLine` into :attr:`durable_line` — the
        on-disk image :meth:`restart_from` continues from. The capture is
        synchronous and happens at the same structural point a crash would
        (the interrupt driver), so a restarted run is bit-for-bit the run
        that crashed there and recovered in-process.
        """
        if self._ran:
            raise RuntimeError("a CheckpointRuntime instance runs only once")
        self._ran = True
        if halt_at is not None:
            halt_at = float(halt_at)
            if halt_at <= self.engine.now:
                raise ResumeError(
                    f"halt_at={halt_at} is not in this run's future "
                    f"(now={self.engine.now})"
                )
            if self.scheme.klass == "none":
                raise ResumeError(
                    "cannot capture a durable recovery line without a "
                    "checkpointing scheme (nothing to restart from)"
                )
        self.scheme.install(self)
        items = self._interrupt_schedule(halt_at)
        if self._resumed_at is not None:
            # restart IS a recovery: roll every rank back to the captured
            # recovery line, then keep serving the remaining interrupts.
            self.engine.process(self._resume_driver(items), name="resume-driver")
        else:
            if items:
                self.engine.process(
                    self._interrupt_driver(items), name="fault-injector"
                )
            self._start_generation({r: None for r in range(self.n_ranks)})
        self.engine.run(until=self._done)
        report = self._report()
        # post-run audit: replay the recorded event stream through the
        # trace invariant engine when --verify (or the tests) asked for it.
        # A halted run is exempt: its trace legitimately ends mid-protocol
        # (open rounds finish in the resumed run, which is audited whole).
        from ..verify.trace_check import check_runtime, runtime_verification_enabled

        if runtime_verification_enabled() and self.tracer.enabled and not self.halted:
            check_runtime(self).raise_if_violated()
        return report

    # -- durable recovery lines ------------------------------------------------

    @classmethod
    def restart_from(
        cls,
        line: Union[DurableLine, str, "os.PathLike[str]"],
        app: Any = None,
        machine: Optional[MachineParams] = None,
        trace: Optional[bool] = None,
    ) -> "CheckpointRuntime":
        """A fresh runtime continuing a halted run from its durable line.

        *line* is a :class:`DurableLine` or a path to one on disk. The
        pickled application/machine are used unless overridden (an
        override must describe the same run — mismatches raise
        :class:`ResumeError`). Call :meth:`run` on the result to continue;
        the continuation is bitwise-identical to an in-process recovery at
        the halt time.
        """
        if not isinstance(line, DurableLine):
            line = DurableLine.load(line)
        payload = line.payload()
        meta = payload["meta"]
        return cls(
            app if app is not None else payload["app"],
            scheme=payload["scheme"],
            machine=machine if machine is not None else payload["machine_params"],
            seed=int(meta["seed"]),
            fault_model=payload["fault_model"],
            trace=bool(meta["trace"]) if trace is None else trace,
            _resume=payload,
        )

    def export_line(self) -> DurableLine:
        """Serialise this run's recoverable state as a durable line.

        Captures only *stable* state: the checkpoint store, the scheme's
        persistent protocol fields, RNG stream positions, the trace and the
        accounting counters. Volatile per-rank protocol state (in-flight
        rounds, mailboxes, volatile logs) is deliberately absent — recovery
        wipes it in-process too, so the restart reconstructs exactly what a
        crash survivor would see.
        """
        meta = {
            "version": LINE_PAYLOAD_VERSION,
            "app": getattr(self.app, "name", type(self.app).__name__),
            "scheme": self.scheme.name,
            "klass": self.scheme.klass,
            "n_ranks": self.n_ranks,
            "seed": self.seed,
            "halted_at": self.engine.now,
            "trace": self.tracer.enabled,
            # side-effect-free summary for inspection/tooling (recovery
            # itself re-derives the line via scheme.recovery_line()).
            "committed_indices": {
                r: max(
                    (
                        rec.index
                        for rec in self.store.chain(r)
                        if rec.committed and not rec.quarantined
                    ),
                    default=0,
                )
                for r in range(self.n_ranks)
            },
        }
        payload: Dict[str, Any] = {"meta": meta}
        # the payload layout IS the manifests: plain fields verbatim,
        # components through _export_component. The static analyzer's
        # capture-completeness pass checks the manifests against the
        # attributes the classes actually assign, closing the loop.
        for name in resume_fields(type(self)):
            payload[name] = getattr(self, name)
        for name in resume_components(type(self)):
            payload[name] = self._export_component(name)
        return DurableLine.from_payload(payload)

    def _export_component(self, name: str) -> Any:
        """One RESUME_COMPONENTS entry's captured form: ``export_state()``
        when the object has one, otherwise a dict of the object's own
        RESUME_FIELDS (a list thereof for the per-rank agents)."""
        obj = getattr(self, name)
        if obj is None:
            return None
        if name == "agents":
            return [
                {f: getattr(a, f) for f in resume_fields(type(a))} for a in obj
            ]
        if hasattr(obj, "export_state"):
            return obj.export_state()
        return {f: getattr(obj, f) for f in resume_fields(type(obj))}

    def _restore_component(self, name: str, saved: Any) -> None:
        """Mirror of :meth:`_export_component` for :meth:`_apply_resume`."""
        obj = getattr(self, name)
        if obj is None or saved is None:
            return
        if name == "agents":
            for agent, fields in zip(obj, saved):
                for f, v in fields.items():
                    setattr(agent, f, v)
            return
        if hasattr(obj, "restore_state"):
            obj.restore_state(saved)
            return
        for f, v in saved.items():
            setattr(obj, f, v)

    def _apply_resume(self, payload: Dict[str, Any]) -> None:
        """Load a durable line's payload into this (freshly built) runtime."""
        meta = payload["meta"]
        if int(meta.get("version", -1)) != LINE_PAYLOAD_VERSION:
            raise ResumeError(
                f"durable line payload version {meta.get('version')!r} "
                f"not supported (expected {LINE_PAYLOAD_VERSION})"
            )
        app_name = getattr(self.app, "name", type(self.app).__name__)
        mismatches = []
        if int(meta["n_ranks"]) != self.n_ranks:
            mismatches.append(f"n_ranks {meta['n_ranks']} != {self.n_ranks}")
        if int(meta["seed"]) != self.seed:
            mismatches.append(f"seed {meta['seed']} != {self.seed}")
        if str(meta["app"]) != app_name:
            mismatches.append(f"app {meta['app']!r} != {app_name!r}")
        if str(meta["scheme"]) != self.scheme.name:
            mismatches.append(f"scheme {meta['scheme']!r} != {self.scheme.name!r}")
        if mismatches:
            raise ResumeError(
                "durable line does not match this run: " + "; ".join(mismatches)
            )
        for name in resume_fields(type(self)):
            if name in self._CTOR_FIELDS:
                continue  # restart_from already fed these into __init__
            setattr(self, name, payload[name])
        for name in resume_components(type(self)):
            self._restore_component(name, payload[name])
        self._resumed_at = float(meta["halted_at"])

    def spawn(self, generator, name: str = "") -> Process:
        """Start a generation-scoped helper process (killed on crash)."""
        proc = self.engine.process(generator, name=name)
        self._gen_procs.append(proc)
        return proc

    # -- drivers ---------------------------------------------------------------

    def _start_generation(self, states: Dict[int, Optional[dict]]) -> None:
        self._finished = {}
        for rank in range(self.n_ranks):
            state = states[rank]
            if state is None:
                state = self.app.make_state(rank, self.n_ranks, self.seed)
            proc = self.engine.process(
                self._driver(rank, state, self.generation),
                name=f"app:r{rank}:g{self.generation}",
            )
            self._gen_procs.append(proc)

    def _driver(self, rank: int, state: dict, generation: int):
        agent = self.agents[rank]
        agent.bind_state(state)
        ctx = Ctx(self, rank)
        try:
            result = yield from self.app.run(ctx, state)
        except Interrupt:
            return None  # crashed; a recovery restarts this rank
        if generation != self.generation:
            return None  # stale completion racing a recovery
        # a finished process still checkpoints (immediately) on request
        agent.mark_finished()
        self._finished[rank] = result
        if rank == 0:
            self._result = result
        if len(self._finished) == self.n_ranks and not self._done.triggered:
            self._done.succeed()
        return result

    # -- failure injection, halting & recovery ---------------------------------------

    def _interrupt_schedule(
        self, halt_at: Optional[float]
    ) -> List[Tuple[float, Optional[CrashEvent]]]:
        """The merged, time-ordered interrupt plan: scheduled crashes plus
        (optionally) the halt, which is modelled as one more interrupt.
        Crashes already injected before a resume point — and crashes the
        halt preempts — are excluded."""
        items: List[Tuple[float, Optional[CrashEvent]]] = []
        if self.fault_model is not None:
            for ev in self.fault_model.crash_events(self.n_ranks):
                if self._resumed_at is not None and ev.time <= self._resumed_at:
                    continue  # fired before the halt we resumed from
                if halt_at is not None and ev.time >= halt_at:
                    continue  # this run stops before the crash
                items.append((ev.time, ev))
        if halt_at is not None:
            items.append((halt_at, None))
        return sorted(items, key=lambda item: item[0])

    def _interrupt_driver(self, items):
        """One process serving the interrupt plan in order: a crash entry
        runs rollback + re-execution in place; the halt entry (None)
        captures the durable line and ends the run."""
        engine = self.engine
        for at, ev in items:
            if at > engine.now:
                yield engine.delay(at - engine.now)
            if self.finished:
                return
            if ev is None:
                self._capture_halt()
                return
            yield from self._recover(
                failed_ranks=ev.ranks, disks_lost=ev.disks_lost
            )

    def _resume_driver(self, items):
        """First slice of a restarted run: recover to the captured line
        (exactly what an in-process crash at the halt time would do), then
        take over the remaining interrupt plan."""
        yield from self._recover(failed_ranks=None)
        yield from self._interrupt_driver(items)

    def _capture_halt(self) -> None:
        """Synchronously freeze the run into a durable line. The capture
        happens *before* the halt event is traced, so the image holds
        exactly the state an in-process crash survivor would observe."""
        self.durable_line = self.export_line()
        self.halted = True
        self.tracer.event("resume.halt", at=self.engine.now)
        if not self._done.triggered:
            self._done.succeed()

    def _restore_reader(self, rank, rec, source, failures, stats):
        """Read one rank's restore bytes, retrying transient faults; on an
        exhausted retry budget the record lands in *failures* (the recovery
        loop quarantines it and falls back) instead of raising — a reader
        death inside ``all_of`` would take down recovery itself."""
        nbytes = self.store.restore_read_bytes(rank, rec.index)
        retry = self.retry_policy
        attempt = 0
        while True:
            try:
                yield from source.read(
                    self.cluster.node(rank), nbytes, tag=f"restore:r{rank}"
                )
                return
            except StorageFault:
                if attempt >= retry.max_retries:
                    failures[rank] = rec
                    return
                stats["restore_retries"] += 1
                self.tracer.add("storage.read_retries")
                delay = retry.delay(attempt)
                attempt += 1
                if delay > 0:
                    yield self.engine.delay(delay)

    def _check_line(self, line) -> None:
        """No rank may resume from a checkpoint that is not committed,
        written and unquarantined — a violated invariant is a scheme bug."""
        for rank, rec in line.items():
            if rec is None:
                continue
            if rec.quarantined or rec.written_at is None or not rec.committed:
                raise SimulationError(
                    f"recovery line selected unusable checkpoint {rec!r} "
                    f"for rank {rank}"
                )

    def _recover(self, failed_ranks=None, disks_lost=()):
        engine = self.engine
        t_crash = engine.now
        failed = tuple(
            sorted(failed_ranks)
            if failed_ranks is not None
            else range(self.n_ranks)
        )
        disks_lost = tuple(sorted(disks_lost))
        self.tracer.add("fault.crashes")
        if len(failed) < self.n_ranks:
            self.tracer.add("fault.node_crashes")
        cuts_before = {r: self.agents[r].epoch for r in range(self.n_ranks)}
        # 1. the crash: the application restarts as a gang (the paper's
        #    recovery semantics), so every process of the current
        #    generation dies even when only a subset of nodes failed.
        self.generation += 1
        self.tracer.event("recover.crash", gen=self.generation, failed=failed)
        for proc in self._gen_procs:
            proc.defused = True
            if proc.is_alive:
                proc.interrupt("machine failure")
        self._gen_procs = []
        for comm in self.comms:
            comm.reset_mailbox()
        self.scheme.on_crash(self)
        two_level = getattr(self.scheme, "two_level", False)
        # 2. a crashed *node* is replaced hardware: its private local disk
        #    is gone, so under two-level storage only checkpoints already
        #    trickled to the global server survive for that rank.
        if disks_lost and two_level:
            for rank in disks_lost:
                for rec in list(self.store.chain(rank)):
                    if rec.global_written_at is None:
                        self.store.discard(rank, rec.index)
                        self.tracer.add("fault.disk_lost_ckpts")
        # 3. validate integrity: silently corrupted images are caught by
        #    their checksum now, before line selection can pick them.
        quarantined = 0
        for rank in range(self.n_ranks):
            for rec in self.store.chain(rank):
                if (
                    not rec.quarantined
                    and rec.written_at is not None
                    and not rec.verify_integrity()
                ):
                    self.store.quarantine(rank, rec.index)
                    self.tracer.add("fault.ckpt_corrupt_detected")
                    self.tracer.event(
                        "recover.quarantine",
                        rank=rank,
                        index=rec.index,
                        cause="corrupt",
                    )
                    quarantined += 1
        # 4. self-healing restore: pick a line, read it back (retrying
        #    transient faults); if a record stays unreadable, quarantine it
        #    and fall back to the newest older line — degrade, never die.
        stats = {"restore_retries": 0}
        while True:
            line = self.scheme.recovery_line(self)
            self._check_line(line)
            failures: Dict[int, CheckpointRecord] = {}
            readers = []
            for rank, rec in line.items():
                if rec is None:
                    continue
                # incremental chains are read back whole (base + deltas);
                # two-level storage restores from the *surviving* local
                # disks in parallel instead of queueing at the global
                # server — a rank whose disk died reads from the server.
                source = (
                    self.cluster.local_disk(rank)
                    if two_level and rank not in disks_lost
                    else self.storage
                )
                readers.append(
                    engine.process(
                        self._restore_reader(rank, rec, source, failures, stats),
                        name=f"restore:r{rank}",
                    )
                )
            if readers:
                self.cluster.set_all_blocked(True)  # the machine is quiescent
                try:
                    yield engine.all_of(readers)
                finally:
                    self.cluster.set_all_blocked(False)
            if not failures:
                break
            for rank, rec in failures.items():
                self.store.quarantine(rank, rec.index)
                self.tracer.add("fault.restore_quarantined")
                self.tracer.event(
                    "recover.quarantine",
                    rank=rank,
                    index=rec.index,
                    cause="unreadable",
                )
                quarantined += 1
        line_idx = {
            r: (rec.index if rec is not None else 0) for r, rec in line.items()
        }
        # 5. drop everything newer than the final line. (Quarantined
        #    records above the line go too: sender logs needed for replay
        #    live in annexes at or below the senders' line indices.)
        for rank, idx in line_idx.items():
            for stale in [
                i for i in range(idx + 1, self.store.latest_index(rank) + 1)
            ]:
                try:
                    self.store.discard(rank, stale)
                except KeyError:
                    pass
        replay = self.scheme.replay_messages(self, line)
        cut_line = self._line_cuts(line)
        line_ok = self.scheme.line_sound(self, line, cut_line)
        self.tracer.event(
            "recover.line",
            gen=self.generation,
            indices=tuple(sorted(line_idx.items())),
            klass=self.scheme.klass,
            logging=bool(getattr(self.scheme, "logging", False)),
            consistent=line_ok,
            sent=tuple((r, cut.sent) for r, cut in sorted(cut_line.items())),
            consumed=tuple(
                (r, cut.consumed) for r, cut in sorted(cut_line.items())
            ),
        )
        self.tracer.event(
            "recover.replay", gen=self.generation, count=len(replay)
        )
        # 6. restore per-rank state, counters, epochs.
        states: Dict[int, Optional[dict]] = {}
        for rank, rec in line.items():
            if rec is not None:
                states[rank] = rec.snapshot.restore()
                self.comms[rank].restore_meta(rec.comm_meta)
                self.agents[rank].reset_for_recovery(epoch=rec.index)
            else:
                states[rank] = None  # rebuilt from make_state (deterministic)
                self.comms[rank].restore_meta(
                    {"sent": {}, "consumed": {}, "coll_counter": 0}
                )
                self.agents[rank].reset_for_recovery(epoch=0)
        # 7. re-inject in-transit channel state, in per-channel seq order.
        for msg in sorted(replay, key=lambda m: (m.dst, m.src, m.seq)):
            clone = _dc.replace(msg, meta=dict(msg.meta))
            clone.meta["gen"] = self.generation
            self.transport.deliver_local(clone)
        # 8. restart the application.
        self._start_generation(states)
        event = RecoveryEvent(
            crash_time=t_crash,
            line_indices=line_idx,
            # checkpoints discarded per rank: how far the line regressed
            # below the rank's checkpoint count at crash time
            rollback_checkpoints={
                r: max(0, cuts_before[r] - line_idx[r]) for r in line_idx
            },
            lost_time={
                r: (t_crash - line[r].taken_at) if line[r] is not None else t_crash
                for r in line
            },
            replayed_messages=len(replay),
            duration=engine.now - t_crash,
            domino_extent=(
                sum(1 for i in line_idx.values() if i == 0) / self.n_ranks
            ),
            failed_ranks=failed,
            disks_lost=disks_lost,
            quarantined=quarantined,
            restore_retries=stats["restore_retries"],
            line_consistent=line_ok,
        )
        self.recoveries.append(event)
        self.tracer.add("fault.recovery_time", event.duration)

    def _line_cuts(self, line) -> Dict[int, CutPoint]:
        """The restored line as :class:`CutPoint`s (for consistency audit)."""
        cut_line: Dict[int, CutPoint] = {}
        for r, rec in line.items():
            if rec is None:
                cut_line[r] = CutPoint(rank=r, index=0, sent=(), consumed=())
            else:
                cut_line[r] = CutPoint(
                    rank=r,
                    index=rec.index,
                    sent=tuple(sorted(rec.comm_meta["sent"].items())),
                    consumed=tuple(sorted(rec.comm_meta["consumed"].items())),
                    record=rec,
                )
        return cut_line

    # -- reporting -------------------------------------------------------------------

    def _report(self) -> RunReport:
        return RunReport(
            app=getattr(self.app, "name", type(self.app).__name__),
            scheme=self.scheme.name,
            n_nodes=self.n_ranks,
            seed=self.seed,
            sim_time=self.engine.now,
            result=self._result,
            checkpoints_taken=sum(a.cuts_taken for a in self.agents),
            checkpoints_committed=int(self.tracer.get("chk.commits")),
            blocked_time=sum(a.blocked_time for a in self.agents),
            storage_bytes_written=self.storage.bytes_written,
            storage_peak_bytes=self.store.peak_bytes,
            storage_peak_checkpoints=self.store.peak_checkpoints,
            storage_final_bytes=self.store.total_bytes(),
            control_messages=self.transport.control_messages,
            control_bytes=self.transport.control_bytes,
            app_messages=self.transport.messages_sent,
            app_bytes=self.transport.bytes_sent,
            counters=dict(self.tracer.counters),
            recoveries=list(self.recoveries),
            storage_write_faults=self.storage.write_faults,
            storage_read_faults=self.storage.read_faults,
            storage_write_retries=int(self.tracer.get("storage.write_retries")),
            storage_read_retries=int(self.tracer.get("storage.read_retries")),
            rounds_aborted=int(self.tracer.get("chk.rounds_aborted")),
            ckpt_writes_failed=int(self.tracer.get("chk.ckpt_writes_failed")),
            checkpoints_quarantined=self.store.quarantined_count,
        )
